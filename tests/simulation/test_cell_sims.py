"""Unit tests for the topology-zoo evaluators (folded cascode, OTA, LNA).

Absolute accuracy is not the point (see ``repro.simulation.technology``);
the monotone parameter→specification relationships each topology is defined
by are.
"""

from __future__ import annotations

import pytest

from repro.circuits.library.common_source_lna import build_common_source_lna
from repro.circuits.library.current_mirror_ota import build_current_mirror_ota
from repro.circuits.library.folded_cascode import build_folded_cascode
from repro.simulation import CmOtaSimulator, FoldedCascodeSimulator, LnaSimulator


@pytest.fixture
def folded_cascode_sim():
    return FoldedCascodeSimulator()


@pytest.fixture
def ota_sim():
    return CmOtaSimulator()


@pytest.fixture
def lna_sim():
    return LnaSimulator()


class TestFoldedCascodeSimulator:
    def test_center_design_is_valid(self, folded_cascode_sim):
        result = folded_cascode_sim.simulate(build_folded_cascode().fresh_netlist())
        assert result.valid
        assert set(result.specs) == {"gain", "bandwidth", "phase_margin", "power"}
        assert result.specs["gain"] > 1.0
        assert result.specs["power"] > 0.0

    def test_starved_folding_branch_is_invalid(self, folded_cascode_sim):
        """An over-sized tail against small PMOS sources kills the cascode."""
        netlist = build_folded_cascode().fresh_netlist()
        netlist.set_parameter("M11", "width", 100e-6)
        netlist.set_parameter("M11", "fingers", 32)
        for name in ("M3", "M4"):
            netlist.set_parameter(name, "width", 1e-6)
            netlist.set_parameter(name, "fingers", 2)
        result = folded_cascode_sim.simulate(netlist)
        assert not result.valid
        assert result.details["output_branch_current"] <= 0.0

    def test_bigger_tail_raises_power_and_bandwidth(self, folded_cascode_sim):
        benchmark = build_folded_cascode()
        small = benchmark.fresh_netlist()
        big = benchmark.fresh_netlist()
        big.set_parameter("M11", "width", 80e-6)
        # Keep the sources strong enough that the branch stays alive.
        for name in ("M3", "M4"):
            big.set_parameter(name, "width", 100e-6)
        result_small = folded_cascode_sim.simulate(small)
        result_big = folded_cascode_sim.simulate(big)
        assert result_big.specs["power"] > result_small.specs["power"]
        assert result_big.specs["bandwidth"] > result_small.specs["bandwidth"]

    def test_cascoding_beats_two_stage_output_resistance(self, folded_cascode_sim):
        op = folded_cascode_sim.operating_point(build_folded_cascode().fresh_netlist())
        # The defining property: the cascoded output resistance is far above
        # a single ro at the same current.
        assert op.output_resistance > 3.0 / (0.5 * op.output_branch_current)


class TestCmOtaSimulator:
    def test_center_design_is_valid(self, ota_sim):
        result = ota_sim.simulate(build_current_mirror_ota().fresh_netlist())
        assert result.valid
        assert set(result.specs) == {"gain", "bandwidth", "slew_rate", "power"}

    def test_unit_mirrors_at_uniform_sizing(self, ota_sim):
        op = ota_sim.operating_point(build_current_mirror_ota().fresh_netlist())
        assert op.mirror_ratio_up == pytest.approx(1.0)
        assert op.mirror_ratio_down == pytest.approx(1.0)

    def test_output_mirror_ratio_scales_drive(self, ota_sim):
        benchmark = build_current_mirror_ota()
        unit = benchmark.fresh_netlist()
        doubled = benchmark.fresh_netlist()
        # Double both output branches: M6 (source) and M9 (sink).
        doubled.set_parameter("M6", "width", 80e-6)
        doubled.set_parameter("M9", "width", 80e-6)
        op_unit = ota_sim.operating_point(unit)
        op_doubled = ota_sim.operating_point(doubled)
        assert op_doubled.mirror_ratio_up == pytest.approx(2.0)
        assert op_doubled.mirror_ratio_down == pytest.approx(2.0)
        assert op_doubled.slew_rate == pytest.approx(2.0 * op_unit.slew_rate)
        assert op_doubled.power_w > op_unit.power_w

    def test_slew_limited_by_weaker_mirror(self, ota_sim):
        benchmark = build_current_mirror_ota()
        lopsided = benchmark.fresh_netlist()
        lopsided.set_parameter("M6", "width", 80e-6)   # strong source path only
        op = ota_sim.operating_point(lopsided)
        balanced = ota_sim.operating_point(benchmark.fresh_netlist())
        assert op.slew_rate == pytest.approx(balanced.slew_rate)


class TestLnaSimulator:
    def test_center_design_is_valid(self, lna_sim):
        result = lna_sim.simulate(build_common_source_lna().fresh_netlist())
        assert result.valid
        assert set(result.specs) == {"gain", "noise_figure", "power"}
        assert 1.0 < result.specs["noise_figure"] < 20.0

    def test_width_has_a_noise_optimum(self, lna_sim):
        """NF rises for very small devices (gm term) and very large ones
        (capacitance term) — the behavioural model must keep that bathtub."""
        benchmark = build_common_source_lna()
        figures = []
        for width in (6e-6, 40e-6, 100e-6):
            netlist = benchmark.fresh_netlist()
            netlist.set_parameter("M1", "width", width)
            figures.append(lna_sim.simulate(netlist).specs["noise_figure"])
        assert figures[1] < figures[0]
        assert figures[1] < figures[2]

    def test_degeneration_trades_gain_for_input_match(self, lna_sim):
        benchmark = build_common_source_lna()
        light = benchmark.fresh_netlist()
        light.set_parameter("LS", "value", 0.1e-9)
        heavy = benchmark.fresh_netlist()
        heavy.set_parameter("LS", "value", 2.0e-9)
        op_light = lna_sim.operating_point(light)
        op_heavy = lna_sim.operating_point(heavy)
        assert op_heavy.gain < op_light.gain
        assert op_heavy.input_resistance > op_light.input_resistance

    def test_load_inductor_sets_gain(self, lna_sim):
        benchmark = build_common_source_lna()
        small = benchmark.fresh_netlist()
        small.set_parameter("LD", "value", 1e-9)
        large = benchmark.fresh_netlist()
        large.set_parameter("LD", "value", 10e-9)
        assert (
            lna_sim.simulate(large).specs["gain"] > lna_sim.simulate(small).specs["gain"]
        )

    def test_power_scales_with_width(self, lna_sim):
        benchmark = build_common_source_lna()
        small = benchmark.fresh_netlist()
        small.set_parameter("M1", "width", 10e-6)
        big = benchmark.fresh_netlist()
        big.set_parameter("M1", "width", 100e-6)
        assert lna_sim.simulate(big).specs["power"] > lna_sim.simulate(small).specs["power"]
