"""``python -m repro.run deploy`` end-to-end, as a user would invoke it."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro

REPO_SRC = Path(repro.__file__).resolve().parents[1]


@pytest.fixture
def checkpoint_and_specs(tmp_path):
    env = repro.make_env("opamp-p2s-v0", seed=0)
    policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
    checkpoint = repro.save_checkpoint(
        tmp_path / "ckpt.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
    )
    targets = env.benchmark.spec_space.sample_batch(np.random.default_rng(1), 4)
    specs = tmp_path / "requests.json"
    specs.write_text(json.dumps({
        "schema_version": 1,
        "requests": [{"target_specs": dict(t)} for t in targets],
    }))
    return checkpoint, specs


def run_cli(*args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.run", *map(str, args)],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


class TestDeployCli:
    def test_deploy_writes_results_json(self, checkpoint_and_specs, tmp_path):
        checkpoint, specs = checkpoint_and_specs
        output = tmp_path / "out.json"
        completed = run_cli(
            "deploy", checkpoint, specs, "--batch-size", "2",
            "--max-steps", "6", "--output", output,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "served 4 episodes" in completed.stdout
        document = json.loads(output.read_text())
        assert document["batch_size"] == 2
        assert len(document["results"]) == 4
        for result in document["results"]:
            assert result["env_id"] == "opamp-p2s-v0"
            assert 1 <= result["steps"] <= 6
            assert result["final_parameters"]

    def test_deploy_batch_sizes_agree(self, checkpoint_and_specs, tmp_path):
        checkpoint, specs = checkpoint_and_specs
        outputs = []
        for batch_size in (1, 3):
            output = tmp_path / f"out{batch_size}.json"
            completed = run_cli(
                "deploy", checkpoint, specs, "--batch-size", batch_size,
                "--max-steps", "6", "--output", output, "--quiet",
            )
            assert completed.returncode == 0, completed.stderr[-2000:]
            document = json.loads(output.read_text())
            outputs.append(
                [(r["steps"], r["success"], r["final_parameters"])
                 for r in document["results"]]
            )
        assert outputs[0] == outputs[1]

    def test_missing_checkpoint_is_exit_2(self, checkpoint_and_specs):
        _, specs = checkpoint_and_specs
        completed = run_cli("deploy", "no-such.npz", specs)
        assert completed.returncode == 2
        assert "error" in completed.stderr

    def test_bad_specs_is_exit_2(self, checkpoint_and_specs, tmp_path):
        checkpoint, _ = checkpoint_and_specs
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        completed = run_cli("deploy", checkpoint, bad)
        assert completed.returncode == 2
        assert "error" in completed.stderr

    def test_unknown_env_override_is_exit_2(self, checkpoint_and_specs):
        checkpoint, specs = checkpoint_and_specs
        completed = run_cli("deploy", checkpoint, specs, "--env", "definitely-not-an-env")
        assert completed.returncode == 2

    def test_in_process_main_deploy(self, checkpoint_and_specs, tmp_path, capsys):
        """main_deploy drives the same path in-process (also: coverage)."""
        from repro.serve.cli import main_deploy

        checkpoint, specs = checkpoint_and_specs
        output = tmp_path / "inproc.json"
        status = main_deploy([
            str(checkpoint), str(specs), "--batch-size", "2",
            "--max-steps", "5", "--output", str(output),
        ])
        captured = capsys.readouterr()
        assert status == 0
        assert "served 4 episodes" in captured.out
        assert json.loads(output.read_text())["results"]

    def test_in_process_bad_inputs(self, checkpoint_and_specs, tmp_path, capsys):
        from repro.serve.cli import main_deploy

        checkpoint, specs = checkpoint_and_specs
        assert main_deploy(["missing.npz", str(specs)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1, "requests": []}))
        assert main_deploy([str(checkpoint), str(bad)]) == 2
        assert main_deploy([str(checkpoint), str(specs), "--batch-size", "0"]) == 2
        assert main_deploy([str(checkpoint), str(specs), "--max-steps", "0"]) == 2
        assert main_deploy([str(checkpoint), str(specs), "--env", "nope-v0"]) == 2
        capsys.readouterr()

    def test_legacy_specs_document_still_deploys(self, checkpoint_and_specs, tmp_path):
        """The pre-gateway {"targets": [...]} shape parses through the shim."""
        checkpoint, _ = checkpoint_and_specs
        legacy = tmp_path / "specs.json"
        legacy.write_text(json.dumps({"targets": [
            {"gain": 350.0, "bandwidth": 1.8e7, "phase_margin": 55.0, "power": 4e-3},
        ]}))
        completed = run_cli(
            "deploy", checkpoint, legacy, "--max-steps", "5", "--quiet"
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "served 1 episodes" in completed.stdout

    def test_legacy_specs_document_warns_in_process(self, checkpoint_and_specs,
                                                    tmp_path, capsys):
        from repro.serve.cli import main_deploy

        checkpoint, _ = checkpoint_and_specs
        legacy = tmp_path / "specs.json"
        legacy.write_text(json.dumps({"targets": [
            {"gain": 350.0, "bandwidth": 1.8e7, "phase_margin": 55.0, "power": 4e-3},
        ]}))
        with pytest.warns(DeprecationWarning, match="legacy specs.json"):
            status = main_deploy([str(checkpoint), str(legacy), "--max-steps", "4",
                                  "--quiet"])
        assert status == 0
        capsys.readouterr()
