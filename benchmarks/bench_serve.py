"""``repro.serve`` — grad-free inference and micro-batched serving throughput.

Three claims of the serving subsystem, measured directly:

1. grad-free inference-mode deployment is ≥2× faster than the legacy
   grad-recording path, with identical episodes;
2. micro-batched serving throughput scales with the batch size, with
   episode-level results identical at every batch size;
3. a checkpoint round-trip (save → load) reproduces the deployment metrics
   (the Table 2 quantities: design accuracy and mean design steps) exactly.

The policies are untrained (deployment cost does not depend on the weights
being good), which keeps the suite fast while measuring exactly the serving
hot path.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.agents import deploy_policy, evaluate_deployment
from repro.serve import DeploymentService

#: Spec targets deployed per measurement.
NUM_TARGETS = 12

#: Episode budget kept short: throughput ratios are per-step properties.
MAX_STEPS = 20

#: The paper's best-performing policy variant.
POLICY_ID = "gat_fc"


def _policy_and_targets(seed: int = 0):
    env = repro.make_env("opamp-p2s-v0", seed=seed, max_steps=MAX_STEPS)
    policy = repro.make_policy(POLICY_ID, env, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    targets = env.benchmark.spec_space.sample_batch(rng, NUM_TARGETS)
    return env, policy, targets


def test_inference_mode_deployment_speedup(benchmark):
    """Grad-free deployment ≥2× the grad-recording path, identical episodes."""
    env, policy, targets = _policy_and_targets()
    # Warm both paths (operator caches, numpy imports).
    deploy_policy(env, policy, targets[0], inference=False)
    deploy_policy(env, policy, targets[0])

    def timed(inference: bool):
        # Best of two passes: a single noisy-neighbor stall on a shared CI
        # runner must not decide the measured ratio.
        best, results = float("inf"), None
        for _ in range(2):
            start = time.perf_counter()
            results = [
                deploy_policy(env, policy, t, inference=inference) for t in targets
            ]
            best = min(best, time.perf_counter() - start)
        return results, best

    def run():
        grad_results, grad_s = timed(inference=False)
        inference_results, inference_s = timed(inference=True)
        return grad_results, inference_results, grad_s, inference_s

    grad_results, inference_results, grad_s, inference_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = grad_s / inference_s

    # The two paths select identical actions, so the episodes are identical.
    for grad, inference in zip(grad_results, inference_results):
        assert grad.steps == inference.steps
        assert grad.success == inference.success
        assert grad.final_specs == inference.final_specs

    benchmark.extra_info.update(
        {
            "policy": POLICY_ID,
            "num_targets": NUM_TARGETS,
            "grad_s": round(grad_s, 4),
            "inference_s": round(inference_s, 4),
            "speedup": round(speedup, 2),
        }
    )
    # Measured ~3.2x on dedicated hardware (the grad path records a full
    # autograd graph plus a critic forward per step; the inference path is a
    # pure-numpy actor forward).  The gate sits at the 2x acceptance target.
    assert speedup >= 2.0, (
        f"grad-free inference-mode deployment regressed: measured {speedup:.2f}x "
        "vs the grad-recording path (expect >= 2x)"
    )


def test_batched_serving_throughput(benchmark):
    """Service throughput grows with the micro-batch width; results identical."""
    _, _, targets = _policy_and_targets()

    def serve_at(batch_size: int):
        env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
        policy = repro.make_policy(POLICY_ID, env, np.random.default_rng(0))
        service = DeploymentService(batch_size=batch_size)
        service.register_policy("opamp-p2s-v0", policy)
        start = time.perf_counter()
        responses = service.serve([dict(t) for t in targets])
        elapsed = time.perf_counter() - start
        return responses, len(targets) / elapsed, service.cache_stats().hit_rate

    def run():
        return {batch_size: serve_at(batch_size) for batch_size in (1, 4, 8)}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    # Identical episode-level results at every batch size.
    reference = [(r.steps, r.success, tuple(sorted(r.final_specs.items())))
                 for r in outcomes[1][0]]
    for batch_size, (responses, _, _) in outcomes.items():
        observed = [(r.steps, r.success, tuple(sorted(r.final_specs.items())))
                    for r in responses]
        assert observed == reference, f"batch_size={batch_size} changed results"

    throughputs = {batch_size: eps for batch_size, (_, eps, _) in outcomes.items()}
    benchmark.extra_info.update(
        {
            "policy": POLICY_ID,
            "num_targets": NUM_TARGETS,
            "episodes_per_s": {str(k): round(v, 1) for k, v in throughputs.items()},
            "scaling_8_vs_1": round(throughputs[8] / throughputs[1], 2),
            "cache_hit_rate": round(outcomes[8][2], 4),
        }
    )
    # Measured ~1.8x (batch 8 vs 1) on dedicated hardware; the episodes are
    # simulator-step-bound once inference is batched, so the gate is set
    # well below that to keep shared CI runners from flaking while still
    # catching an unbatched (~1.0x) regression.
    assert throughputs[8] >= 1.2 * throughputs[1], (
        f"micro-batched serving does not scale: {throughputs[8]:.1f} eps/s at "
        f"batch 8 vs {throughputs[1]:.1f} eps/s at batch 1"
    )
    assert throughputs[8] >= throughputs[4] * 0.9  # monotone up to noise


def test_checkpoint_roundtrip_reproduces_metrics(benchmark, tmp_path):
    """Save → load reproduces the Table 2 deployment metrics exactly."""
    env, policy, targets = _policy_and_targets(seed=3)

    def run():
        before = evaluate_deployment(env, policy, targets=targets, batch_size=8)
        path = tmp_path / "policy.npz"
        repro.save_checkpoint(path, policy, policy_id=POLICY_ID, env_id="opamp-p2s-v0")
        restored = repro.load_checkpoint(path).policy
        after = evaluate_deployment(env, restored, targets=targets, batch_size=8)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert after.accuracy == before.accuracy
    assert after.mean_steps == before.mean_steps
    assert [r.steps for r in after.results] == [r.steps for r in before.results]
    benchmark.extra_info.update(
        {
            "accuracy": before.accuracy,
            "mean_steps": before.mean_steps,
            "num_targets": NUM_TARGETS,
        }
    )
