#!/usr/bin/env python
"""Documentation checker: no stale links, no broken examples.

Two checks over the repository's markdown (``README.md`` and ``docs/`` by
default), both blocking in CI's ``docs`` job:

1. **Link check** — every relative markdown link must point at a file or
   directory that exists (``#fragment`` suffixes are stripped; external
   ``http(s)://`` and ``mailto:`` targets are not fetched).

2. **Code-fence smoke execution** — every ```` ```python ```` fence is
   executed in a subprocess with ``PYTHONPATH`` pointing at ``src/`` and a
   per-fence timeout.  Fences that are deliberately not executable — they
   train for minutes, need artifacts on disk, or are illustrative
   fragments — opt out with a marker comment on one of the three lines
   above the fence::

       <!-- docs-exec: skip (trains for minutes) -->
       ```python
       ...
       ```

   The reason in parentheses is mandatory.  Skipped fences are still
   *syntax-checked*: the code must compile either as a module or (for
   fragments like a bare ``return``) wrapped in a function body, so a doc
   example can go stale silently only in behaviour the marker's reason
   already disclaims, never in syntax.

Exit status: 0 when everything passes, 1 on any finding, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = ("README.md", "docs")
DEFAULT_TIMEOUT_S = 180.0

FENCE_RE = re.compile(r"^(`{3,}|~{3,})\s*([A-Za-z0-9_+-]*)\s*$")
SKIP_RE = re.compile(r"<!--\s*docs-exec:\s*skip\s*(?:\(([^)]*)\))?\s*-->")
LINK_RE = re.compile(r"!?\[[^\]\n]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


@dataclass
class Fence:
    """One fenced code block: where it is, what it says, whether it opted out."""

    path: Path
    line: int  # 1-indexed line of the opening fence
    language: str
    code: str
    skip_reason: Optional[str] = None  # None = execute; str = compile-only


@dataclass
class Link:
    path: Path
    line: int
    target: str


@dataclass
class Document:
    path: Path
    fences: List[Fence] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)


def parse_document(path: Path) -> Document:
    """Split a markdown file into fenced code blocks and out-of-fence links."""
    doc = Document(path=path)
    lines = path.read_text(encoding="utf-8").splitlines()
    recent: List[str] = []  # last few non-fence lines, for the skip marker
    index = 0
    while index < len(lines):
        opening = FENCE_RE.match(lines[index])
        if opening is None:
            for match in LINK_RE.finditer(lines[index]):
                doc.links.append(Link(path=path, line=index + 1, target=match.group(1)))
            recent.append(lines[index])
            index += 1
            continue
        marker, language = opening.group(1), opening.group(2).lower()
        skip_reason = None
        for line in recent[-3:]:
            skip = SKIP_RE.search(line)
            if skip is not None:
                skip_reason = (skip.group(1) or "").strip() or "<no reason>"
        start = index
        index += 1
        body: List[str] = []
        while index < len(lines) and not lines[index].rstrip() == marker[0] * len(marker):
            body.append(lines[index])
            index += 1
        if index >= len(lines):
            raise ValueError(f"{path}:{start + 1}: unterminated code fence")
        index += 1  # past the closing fence
        recent = []  # a marker applies to the next fence only
        doc.fences.append(
            Fence(
                path=path,
                line=start + 1,
                language=language,
                code="\n".join(body) + "\n",
                skip_reason=skip_reason,
            )
        )
    return doc


def iter_markdown_files(roots: Sequence[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_dir():
            yield from sorted(root.rglob("*.md"))
        elif root.is_file() and root.suffix == ".md":
            yield root
        else:
            raise FileNotFoundError(f"not a markdown file or directory: {root}")


def check_link(link: Link) -> Optional[str]:
    """Return a failure message for a dead relative link, else ``None``."""
    target = link.target
    if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
        return None
    target = target.split("#", 1)[0]
    if not target:
        return None
    resolved = (link.path.parent / target).resolve()
    if not resolved.exists():
        return f"{link.path}:{link.line}: dead link -> {link.target}"
    return None


def check_compiles(fence: Fence) -> Optional[str]:
    """Syntax-check a skipped fence, accepting function-body fragments."""
    try:
        compile(fence.code, str(fence.path), "exec")
        return None
    except SyntaxError:
        pass
    wrapped = "def _docs_fragment():\n" + textwrap.indent(fence.code, "    ")
    try:
        compile(wrapped, str(fence.path), "exec")
        return None
    except SyntaxError as error:
        return f"{fence.path}:{fence.line}: skipped fence does not even compile: {error.msg}"


def execute_fence(fence: Fence, timeout_s: float) -> Optional[str]:
    """Run one python fence in a subprocess; return a failure message or ``None``."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    with tempfile.TemporaryDirectory(prefix="docs-exec-") as scratch:
        script = Path(scratch) / f"fence_line{fence.line}.py"
        script.write_text(fence.code, encoding="utf-8")
        try:
            proc = subprocess.run(
                [sys.executable, str(script)],
                cwd=scratch,  # fences must not depend on (or pollute) the repo tree
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout_s,
            )
        except subprocess.TimeoutExpired:
            return (
                f"{fence.path}:{fence.line}: fence timed out after {timeout_s:.0f}s "
                "(mark it '<!-- docs-exec: skip (reason) -->' if it is meant to be slow)"
            )
    if proc.returncode != 0:
        tail = "\n".join((proc.stderr or proc.stdout).strip().splitlines()[-12:])
        return (
            f"{fence.path}:{fence.line}: fence exited with {proc.returncode}\n"
            + textwrap.indent(tail, "    | ")
        )
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=list(DEFAULT_ROOTS),
        help="markdown files or directories to check (default: README.md docs/)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT_S,
        help="per-fence execution timeout in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="links and syntax only; do not execute any fence",
    )
    args = parser.parse_args(argv)

    try:
        files = list(iter_markdown_files([REPO_ROOT / root for root in args.roots]))
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 2

    failures: List[str] = []
    checked_links = executed = compiled_only = 0
    for path in files:
        try:
            doc = parse_document(path)
        except ValueError as error:
            failures.append(str(error))
            continue
        for link in doc.links:
            checked_links += 1
            message = check_link(link)
            if message:
                failures.append(message)
        for fence in doc.fences:
            if fence.language != "python":
                continue
            if fence.skip_reason is not None or args.no_exec:
                compiled_only += 1
                message = check_compiles(fence)
            else:
                executed += 1
                try:
                    shown = fence.path.relative_to(REPO_ROOT)
                except ValueError:
                    shown = fence.path
                print(f"executing {shown}:{fence.line} ...", flush=True)
                message = execute_fence(fence, timeout_s=args.timeout)
            if message:
                failures.append(message)

    print(
        f"checked {len(files)} file(s): {checked_links} links, "
        f"{executed} fence(s) executed, {compiled_only} compile-only"
    )
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
