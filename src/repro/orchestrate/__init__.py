"""``repro.orchestrate`` — process-parallel experiment orchestration.

The sweep layer of the library: a declarative (optimizers × envs × seeds)
grid, sharded into independent serializable work units, executed across a
``multiprocessing`` pool, and persisted into a content-addressed artifact
store that makes every sweep resumable.

::

    from repro.orchestrate import SweepConfig, run_sweep

    sweep = SweepConfig(
        optimizers=["random", "genetic"],
        envs=["opamp-p2s-v0", "common_source_lna-p2s-v0"],
        seeds=[0, 1],
        budget=60,
        disk_cache="sim_cache",          # persistent, shared across workers/runs
    )
    result = run_sweep(sweep, store="sweep_artifacts", workers=4)
    print(result.summary_table())
    run_sweep(sweep, store="sweep_artifacts")   # instant: all units skipped

CLI front door: ``python -m repro.run sweep.json`` (also accepts a single
``RunConfig`` document).  Results are bit-identical for any worker count —
every unit's randomness derives from its own payload seed
(``np.random.SeedSequence.spawn`` over grid coordinates).
"""

from repro.orchestrate.pool import execute_units
from repro.orchestrate.runner import (
    ExecutionReport,
    SweepResult,
    execute_with_store,
    run_sweep,
)
from repro.orchestrate.store import ArtifactStore
from repro.orchestrate.sweep import DEFAULT_STORE_DIR, SweepConfig, sweep_from_document
from repro.orchestrate.units import DEFAULT_RUNNER, UnitRecord, WorkUnit
from repro.orchestrate.worker import (
    attach_disk_cache,
    execute_unit,
    resolve_runner,
    run_config_unit,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_RUNNER",
    "DEFAULT_STORE_DIR",
    "ExecutionReport",
    "SweepConfig",
    "SweepResult",
    "UnitRecord",
    "WorkUnit",
    "attach_disk_cache",
    "execute_unit",
    "execute_units",
    "execute_with_store",
    "resolve_runner",
    "run_config_unit",
    "run_sweep",
    "sweep_from_document",
]
