"""``python -m repro.run yield`` — the Monte-Carlo yield-report front end.

Thin argparse wrapper over :func:`repro.experiments.yield_report.run_yield_report`:

.. code-block:: text

    python -m repro.run yield                       # whole zoo, 128 samples each
    python -m repro.run yield --circuits rf_pa --samples 512 --workers 4
    python -m repro.run yield --store artifacts/yield --output yield.json

``--store`` makes the report resumable (shards already in the artifact
store are skipped; ``--no-resume`` re-executes them), ``--targets`` points
at a ``{circuit: {spec: target}}`` JSON document replacing the default
easiest-end-of-range targets, and ``--output`` writes the machine-readable report
atomically next to the printed table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.utils import atomic_write_text


def build_yield_parser() -> argparse.ArgumentParser:
    from repro.experiments.yield_report import ZOO_YIELD_CIRCUITS

    parser = argparse.ArgumentParser(
        prog="python -m repro.run yield",
        description="Monte-Carlo yield report of each circuit's center sizing "
        "over the behavioural process/temperature space.",
    )
    parser.add_argument("--circuits", default=",".join(ZOO_YIELD_CIRCUITS),
                        help="comma-separated circuit names (default: the whole zoo)")
    parser.add_argument("--samples", type=int, default=128,
                        help="Monte-Carlo process points per circuit (default: 128)")
    parser.add_argument("--shards", type=int, default=2,
                        help="work units per circuit (default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; shard seeds derive deterministically")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the shard pool (default: 1)")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (enables resume)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-execute shards even when their artifact exists")
    parser.add_argument("--targets", default=None,
                        help="JSON file of {circuit: {spec: target}} overriding "
                             "the default easiest-end-of-range targets")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path (atomic)")
    return parser


def main_yield(argv: Optional[Sequence[str]] = None) -> int:
    from repro.experiments.yield_report import run_yield_report

    parser = build_yield_parser()
    args = parser.parse_args(argv)
    if args.samples < 1 or args.shards < 1 or args.workers < 1:
        print("error: --samples, --shards and --workers must be >= 1", file=sys.stderr)
        return 2
    circuits = [name.strip() for name in args.circuits.split(",") if name.strip()]
    targets = None
    if args.targets is not None:
        try:
            with open(args.targets, "r", encoding="utf-8") as handle:
                targets = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: could not load targets from {args.targets!r}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        report = run_yield_report(
            circuits=circuits,
            samples=args.samples,
            shards=args.shards,
            seed=args.seed,
            targets=targets,
            workers=args.workers,
            store=args.store,
            resume=not args.no_resume,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.as_text())
    if args.output is not None:
        atomic_write_text(
            args.output, json.dumps(report.as_json(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.output}")
    return 0
