"""``repro.parallel`` — vectorized rollouts and simulation caching.

The scaling layer of the library: everything needed to evaluate *populations*
of candidate sizings in batches instead of one at a time.

* :class:`SimulationCache` — an LRU-memoizing wrapper around any
  :class:`~repro.simulation.base.CircuitSimulator`, keyed on quantized
  parameter vectors, so repeated candidate evaluations (population elites,
  shared reset sizings, revisited grid points) are simulated once.
* :class:`DiskSimulationCache` — the persistent tier: the same quantized
  keys backed by a directory of atomic JSON entries, shared across worker
  processes and across runs (the :mod:`repro.orchestrate` sweep runner's
  ``disk_cache`` option points every work unit at one directory).
* :class:`VectorCircuitEnv` — ``N`` circuit-design environments stepped as
  one batch behind stacked ``reset``/``step``, sharing one topology and one
  simulation cache, and producing
  :class:`~repro.env.spaces.BatchedObservation` batches for the policy's
  batched forward pass.

Front-door integration: ``repro.make_env("opamp-p2s-v0", num_envs=8)``
returns a :class:`VectorCircuitEnv` (``num_envs=1`` keeps returning the
sequential environment), and every optimizer accepts a ``vectorize`` knob
(``repro.OptimizerConfig(id="ppo", vectorize=8)``).
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_KEY_DIGITS,
    CacheStats,
    SimulationCache,
    quantize_significant,
)
from repro.parallel.disk_cache import (
    DiskEntry,
    DiskSimulationCache,
    iter_disk_entries,
    read_disk_entry,
    write_disk_entry,
)
from repro.parallel.vector_env import VectorCircuitEnv

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_KEY_DIGITS",
    "DiskEntry",
    "DiskSimulationCache",
    "SimulationCache",
    "VectorCircuitEnv",
    "iter_disk_entries",
    "quantize_significant",
    "read_disk_entry",
    "write_disk_entry",
]
