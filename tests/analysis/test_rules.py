"""Per-rule fixtures: snippets that must flag, near-misses that must not."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import RULES_BY_ID


def run_rule(rule_id, source, path):
    findings = analyze_source(
        textwrap.dedent(source), path, rules=[RULES_BY_ID[rule_id]]
    )
    return [(f.rule, f.line) for f in findings], findings


class TestGlobalRngRule:
    def test_numpy_global_seed_flags(self):
        hits, findings = run_rule(
            "REP-DET01",
            """
            import numpy as np

            np.random.seed(0)
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-DET01", 4)]
        assert "numpy global RNG" in findings[0].message

    def test_numpy_draws_flag_under_any_alias(self):
        hits, _ = run_rule(
            "REP-DET01",
            """
            import numpy

            x = numpy.random.rand(4)
            y = numpy.random.shuffle(x)
            """,
            "src/pkg/module.py",
        )
        assert [h[0] for h in hits] == ["REP-DET01", "REP-DET01"]

    def test_from_import_of_global_fn_flags(self):
        hits, _ = run_rule(
            "REP-DET01",
            """
            from numpy.random import seed

            seed(3)
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-DET01", 4)]

    def test_stdlib_global_random_flags(self):
        hits, _ = run_rule(
            "REP-DET01",
            """
            import random

            random.seed(7)
            value = random.random()
            """,
            "src/pkg/module.py",
        )
        assert len(hits) == 2

    def test_default_rng_and_seedsequence_do_not_flag(self):
        hits, _ = run_rule(
            "REP-DET01",
            """
            import numpy as np

            rng = np.random.default_rng(0)
            children = np.random.SeedSequence(7).spawn(4)
            local = __import__("random").Random(3)
            value = rng.random()
            """,
            "src/pkg/module.py",
        )
        assert hits == []

    def test_instance_methods_named_like_globals_do_not_flag(self):
        # rng.shuffle / rng.choice are Generator methods, not the globals.
        hits, _ = run_rule(
            "REP-DET01",
            """
            import numpy as np

            rng = np.random.default_rng(0)
            rng.shuffle([1, 2])
            rng.choice([1, 2])
            """,
            "src/pkg/module.py",
        )
        assert hits == []

    def test_seeding_shim_module_is_allowlisted(self):
        hits, _ = run_rule(
            "REP-DET01",
            """
            import numpy as np

            np.random.seed(0)
            """,
            "src/repro/api/seeding.py",
        )
        assert hits == []


class TestWallClockRule:
    def test_wall_clock_in_cache_code_flags(self):
        hits, _ = run_rule(
            "REP-DET02",
            """
            import time

            def cache_key(x):
                return (x, time.time())
            """,
            "src/pkg/parallel/cache.py",
        )
        assert hits == [("REP-DET02", 5)]

    def test_datetime_now_in_checkpoint_code_flags(self):
        hits, _ = run_rule(
            "REP-DET02",
            """
            from datetime import datetime

            def checkpoint_meta():
                return {"at": datetime.now().isoformat()}
            """,
            "src/pkg/agents/checkpoint.py",
        )
        assert hits == [("REP-DET02", 5)]

    def test_monotonic_timing_does_not_flag(self):
        hits, _ = run_rule(
            "REP-DET02",
            """
            import time

            def timed(fn):
                start = time.perf_counter()
                fn()
                return time.monotonic(), time.perf_counter() - start
            """,
            "src/pkg/simulation/sim.py",
        )
        assert hits == []

    def test_wall_clock_outside_critical_paths_does_not_flag(self):
        hits, _ = run_rule(
            "REP-DET02",
            """
            import time

            def request_log_stamp():
                return time.time()
            """,
            "src/pkg/serve/metrics.py",
        )
        assert hits == []


LOCKED_CLASS = """
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.episodes = 0
        self.by_env = {}

    def record(self, env_id, n):
        with self._lock:
            self.episodes += n
            self.by_env[env_id] = self.by_env.get(env_id, 0) + n
"""


class TestLockDisciplineRule:
    def test_unlocked_write_to_guarded_attribute_flags(self):
        hits, findings = run_rule(
            "REP-LOCK01",
            LOCKED_CLASS
            + """
    def sloppy_fold(self, n):
        self.episodes += n
""",
            "src/pkg/stats.py",
        )
        assert len(hits) == 1
        assert "episodes" in findings[0].message

    def test_unlocked_subscript_write_flags(self):
        hits, _ = run_rule(
            "REP-LOCK01",
            LOCKED_CLASS
            + """
    def sloppy_env_fold(self, env_id, n):
        self.by_env[env_id] = self.by_env.get(env_id, 0) + n
""",
            "src/pkg/stats.py",
        )
        assert len(hits) == 1

    def test_reintroduced_unlocked_fold_on_stats_class_flags(self):
        # Regression fixture: the shape of the pre-gateway ServeStats bug —
        # the tier-delta fold mutated the shared counters outside the lock
        # while every other mutator held it.
        hits, findings = run_rule(
            "REP-LOCK01",
            """
            import threading


            class ServeStats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.episodes = 0
                    self.surrogate_hits = 0
                    self.trust_rejections = 0
                    self.exact_fallbacks = 0

                def record(self, results):
                    with self._lock:
                        self.episodes += len(results)
                        self.surrogate_hits += 0
                        self.trust_rejections += 0
                        self.exact_fallbacks += 0

                def record_tiers(self, surrogate_hits, trust_rejections, exact_fallbacks):
                    # pre-PR-7 shape: the fold skips the lock entirely
                    self.surrogate_hits += surrogate_hits
                    self.trust_rejections += trust_rejections
                    self.exact_fallbacks += exact_fallbacks
            """,
            "src/pkg/serve/service.py",
        )
        assert len(hits) == 3
        assert {f.line for f in findings} == {22, 23, 24}

    def test_all_locked_writes_do_not_flag(self):
        hits, _ = run_rule("REP-LOCK01", LOCKED_CLASS, "src/pkg/stats.py")
        assert hits == []

    def test_locked_write_in_another_method_does_not_flag(self):
        hits, _ = run_rule(
            "REP-LOCK01",
            LOCKED_CLASS
            + """
    def reset(self):
        with self._lock:
            self.episodes = 0
""",
            "src/pkg/stats.py",
        )
        assert hits == []

    def test_class_without_lock_is_ignored(self):
        hits, _ = run_rule(
            "REP-LOCK01",
            """
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
            "src/pkg/plain.py",
        )
        assert hits == []

    def test_noqa_with_caller_rationale_suppresses(self):
        hits, _ = run_rule(
            "REP-LOCK01",
            LOCKED_CLASS
            + """
    def fold(self, n):
        # repro: noqa[REP-LOCK01] caller record_all() holds self._lock
        self.episodes += n
""",
            "src/pkg/stats.py",
        )
        assert hits == []


class TestAtomicWriteRule:
    def test_raw_write_flags(self):
        hits, _ = run_rule(
            "REP-IO01",
            """
            import json

            def save(path, data):
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(data, handle)
            """,
            "src/pkg/store.py",
        )
        assert hits == [("REP-IO01", 5)]

    def test_binary_write_and_write_text_flag(self):
        hits, _ = run_rule(
            "REP-IO01",
            """
            from pathlib import Path

            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
                Path(path).write_text("done")
            """,
            "src/pkg/store.py",
        )
        assert len(hits) == 2

    def test_scratch_plus_os_replace_in_same_function_is_exempt(self):
        hits, _ = run_rule(
            "REP-IO01",
            """
            import os

            def save(path, payload):
                scratch = str(path) + ".tmp"
                with open(scratch, "wb") as handle:
                    handle.write(payload)
                os.replace(scratch, path)
            """,
            "src/pkg/checkpoint.py",
        )
        assert hits == []

    def test_read_mode_does_not_flag(self):
        hits, _ = run_rule(
            "REP-IO01",
            """
            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()

            def load_default_mode(path):
                with open(path) as handle:
                    return handle.read()
            """,
            "src/pkg/store.py",
        )
        assert hits == []

    def test_helper_calls_do_not_flag(self):
        hits, _ = run_rule(
            "REP-IO01",
            """
            from repro.utils import atomic_write_json

            def save(path, data):
                atomic_write_json(path, data, indent=2)
            """,
            "src/pkg/store.py",
        )
        assert hits == []


class TestShimImportRule:
    def test_from_shim_import_flags(self):
        hits, _ = run_rule(
            "REP-API01",
            """
            from repro.serve.specs import parse_spec_requests
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-API01", 2)]

    def test_plain_import_of_shim_flags(self):
        hits, _ = run_rule(
            "REP-API01",
            """
            import repro.serve.specs
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-API01", 2)]

    def test_from_package_import_shim_name_flags(self):
        hits, _ = run_rule(
            "REP-API01",
            """
            from repro.serve import specs
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-API01", 2)]

    def test_relative_import_of_shim_flags(self):
        hits, _ = run_rule(
            "REP-API01",
            """
            from .specs import parse_spec_requests
            """,
            "src/repro/serve/cli.py",
        )
        assert hits == [("REP-API01", 2)]

    def test_protocol_import_does_not_flag(self):
        hits, _ = run_rule(
            "REP-API01",
            """
            from repro.serve.protocol import ServeRequest, parse_requests_document
            """,
            "src/pkg/module.py",
        )
        assert hits == []


class TestFloatEqualityRule:
    def test_float_literal_equality_flags(self):
        hits, findings = run_rule(
            "REP-FLT01",
            """
            def check(x):
                return x == 0.5
            """,
            "src/pkg/module.py",
        )
        assert hits == [("REP-FLT01", 3)]
        assert "0.5" in findings[0].message

    def test_inequality_and_reversed_operands_flag(self):
        hits, _ = run_rule(
            "REP-FLT01",
            """
            def check(x, y):
                return x != 1e-12 or 0.0 == y
            """,
            "src/pkg/module.py",
        )
        assert len(hits) == 2

    def test_integer_literal_comparison_does_not_flag(self):
        hits, _ = run_rule(
            "REP-FLT01",
            """
            def check(x):
                return x == 0 or x != 10
            """,
            "src/pkg/module.py",
        )
        assert hits == []

    def test_ordering_comparisons_do_not_flag(self):
        hits, _ = run_rule(
            "REP-FLT01",
            """
            def check(x):
                return x > 0.0 or x <= 1.5
            """,
            "src/pkg/module.py",
        )
        assert hits == []

    def test_tolerance_comparison_does_not_flag(self):
        hits, _ = run_rule(
            "REP-FLT01",
            """
            def check(x):
                return abs(x - 0.5) < 1e-9
            """,
            "src/pkg/module.py",
        )
        assert hits == []

    def test_annotated_sentinel_is_suppressed(self):
        hits, _ = run_rule(
            "REP-FLT01",
            """
            def check(x):
                return x == 0.0  # repro: noqa[REP-FLT01] exact zero sentinel
            """,
            "src/pkg/module.py",
        )
        assert hits == []
