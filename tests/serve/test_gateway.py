"""Gateway: coalescing, sharding, parity with sequential deployment, stats."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

import repro
from repro.agents.deployment import deploy_policy
from repro.serve import DeploymentService, Gateway, RequestQueue, ServeRequest
from repro.serve.gateway import _Pending, shard_of

MAX_STEPS = 8


@pytest.fixture(scope="module")
def policy():
    env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
    return repro.make_policy("gcn_fc", env, np.random.default_rng(0))


@pytest.fixture(scope="module")
def targets():
    env = repro.make_env("opamp-p2s-v0", seed=0)
    return [dict(t) for t in env.benchmark.spec_space.sample_batch(
        np.random.default_rng(5), 7
    )]


@pytest.fixture(scope="module")
def references(policy, targets):
    """Sequential deploy_policy results — the parity oracle."""
    env = repro.make_env("opamp-p2s-v0", seed=123, max_steps=MAX_STEPS)
    return [deploy_policy(env, policy, target) for target in targets]


@pytest.fixture
def service(policy):
    service = DeploymentService(batch_size=3)
    service.register_policy("opamp-p2s-v0", policy)
    return service


def make_requests(targets, **kwargs):
    return [
        ServeRequest(target_specs=dict(target), max_steps=MAX_STEPS,
                     request_id=f"r{i}", **kwargs)
        for i, target in enumerate(targets)
    ]


class TestRequestQueue:
    @staticmethod
    def pending(flush_in=0.0):
        now = time.monotonic()
        return _Pending(
            request=ServeRequest(target_specs={"gain": 1.0}),
            future=Future(), enqueued_at=now, flush_at=now + flush_in, timeout_at=None,
        )

    def test_shard_assignment_is_stable_and_in_range(self):
        for shards in (1, 2, 5):
            for env_id in ("opamp-p2s-v0", "common_source_lna-p2s-v0", "rf_pa-v0"):
                assert shard_of(env_id, shards) == shard_of(env_id, shards)
                assert 0 <= shard_of(env_id, shards) < shards

    def test_full_batch_flushes_immediately(self):
        queue = RequestQueue()
        key = ("opamp-p2s-v0", None)
        for _ in range(3):
            queue.put(key, self.pending(flush_in=60.0))
        got = queue.next_batch(0, batch_size=3)
        assert got is not None
        _, batch, trigger = got
        assert len(batch) == 3 and trigger == "full"

    def test_deadline_flushes_a_partial_batch(self):
        queue = RequestQueue()
        queue.put(("opamp-p2s-v0", None), self.pending(flush_in=0.02))
        start = time.monotonic()
        got = queue.next_batch(0, batch_size=8)
        assert got is not None
        _, batch, trigger = got
        assert len(batch) == 1 and trigger == "deadline"
        assert time.monotonic() - start >= 0.015

    def test_draining_close_flushes_remaining(self):
        queue = RequestQueue()
        queue.put(("opamp-p2s-v0", None), self.pending(flush_in=60.0))
        assert queue.close(drain=True) == []
        got = queue.next_batch(0, batch_size=8)
        assert got is not None and got[2] == "drain"
        assert queue.next_batch(0, batch_size=8) is None

    def test_abandoning_close_returns_pending(self):
        queue = RequestQueue()
        queue.put(("opamp-p2s-v0", None), self.pending(flush_in=60.0))
        abandoned = queue.close(drain=False)
        assert len(abandoned) == 1
        assert queue.next_batch(0, batch_size=8) is None
        with pytest.raises(RuntimeError, match="closed"):
            queue.put(("opamp-p2s-v0", None), self.pending())

    def test_groups_do_not_mix(self):
        queue = RequestQueue()
        queue.put(("opamp-p2s-v0", 5), self.pending(flush_in=0.0))
        queue.put(("opamp-p2s-v0", 9), self.pending(flush_in=0.0))
        keys = set()
        for _ in range(2):
            key, batch, _ = queue.next_batch(0, batch_size=8)
            assert len(batch) == 1
            keys.add(key)
        assert keys == {("opamp-p2s-v0", 5), ("opamp-p2s-v0", 9)}


class TestGatewayParity:
    @pytest.mark.parametrize(
        "num_workers,delay_ms,order",
        [
            (1, 0.0, "forward"),
            (2, 20.0, "shuffled"),
            (2, 200.0, "reversed"),
        ],
    )
    def test_identical_to_sequential_under_interleavings(
        self, service, targets, references, num_workers, delay_ms, order
    ):
        """Arbitrary arrival orders, worker counts, and deadline budgets
        must not change any response — bitwise — vs sequential deployment."""
        indices = list(range(len(targets)))
        if order == "shuffled":
            np.random.default_rng(3).shuffle(indices)
        elif order == "reversed":
            indices.reverse()
        requests = make_requests(targets)
        with Gateway(service, num_workers=num_workers, max_batch_delay_ms=delay_ms) as gw:
            futures = {i: gw.submit(requests[i]) for i in indices}
            responses = {i: futures[i].result(timeout=120) for i in indices}
        for i, reference in enumerate(references):
            response = responses[i]
            assert response.ok and response.request_id == f"r{i}"
            assert response.steps == reference.steps
            assert response.success == reference.success
            assert response.final_specs == reference.final_specs
            names = list(response.final_parameters)
            np.testing.assert_array_equal(
                [response.final_parameters[n] for n in names],
                [dict(zip(names, reference.trajectory.records[-1].parameters))[n]
                 for n in names],
            )

    def test_concurrent_submitters_still_match(self, service, targets, references):
        from repro.analysis import LockAudit

        responses = {}
        lock = threading.Lock()
        with Gateway(service, num_workers=2, max_batch_delay_ms=30.0) as gw:
            # Race detector: any unlocked write to the shared serve stats by
            # a worker or submitter fails the test even if counts line up.
            with LockAudit(gw.stats, record_reads=False) as gateway_audit, \
                    LockAudit(service.stats, record_reads=False) as service_audit:
                def submit(i):
                    future = gw.submit(
                        ServeRequest(target_specs=dict(targets[i]), max_steps=MAX_STEPS)
                    )
                    result = future.result(timeout=120)
                    with lock:
                        responses[i] = result

                threads = [threading.Thread(target=submit, args=(i,))
                           for i in range(len(targets))]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        gateway_audit.assert_clean()
        service_audit.assert_clean()
        for i, reference in enumerate(references):
            assert responses[i].steps == reference.steps
            assert responses[i].final_specs == reference.final_specs


class TestGatewayBehavior:
    def test_full_flush_and_stats(self, service, targets):
        with Gateway(service, num_workers=1, max_batch_delay_ms=10_000.0) as gw:
            futures = [gw.submit(r) for r in make_requests(targets[:3])]
            for future in futures:
                assert future.result(timeout=120).ok
            snapshot = gw.stats.snapshot()
        assert snapshot.full_flushes >= 1
        assert snapshot.max_coalesce == 3
        assert snapshot.episodes == 3
        assert snapshot.queue_depth == 0
        assert snapshot.latency_p50_ms is not None
        assert snapshot.latency_p99_ms >= snapshot.latency_p50_ms

    def test_deadline_flush_of_partial_batch(self, service, targets):
        with Gateway(service, num_workers=1, max_batch_delay_ms=15.0) as gw:
            response = gw.submit(make_requests(targets[:1])[0]).result(timeout=120)
            assert response.ok
            assert gw.stats.snapshot().deadline_flushes >= 1

    def test_per_request_deadline_overrides_default(self, service, targets):
        # Gateway default says "wait forever"; the request's own deadline_ms
        # of ~0 must flush it out anyway.
        with Gateway(service, num_workers=1, max_batch_delay_ms=60_000.0) as gw:
            request = ServeRequest(
                target_specs=dict(targets[0]), max_steps=MAX_STEPS, deadline_ms=1.0
            )
            assert gw.submit(request).result(timeout=120).ok

    def test_plain_mappings_are_accepted(self, service, targets):
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0) as gw:
            response = gw.submit({**targets[0]}).result(timeout=120)
        # A bare mapping has no max_steps: the env default applies.
        assert response.ok and response.steps >= 1

    def test_timing_fields_are_attributed(self, service, targets):
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0) as gw:
            response = gw.submit(make_requests(targets[:1])[0]).result(timeout=120)
        assert set(response.timing) == {"queue_ms", "serve_ms", "total_ms"}
        assert response.timing["total_ms"] >= response.timing["queue_ms"]

    def test_stats_dict_has_gateway_block_and_caches(self, service, targets):
        with Gateway(service, num_workers=2, max_batch_delay_ms=0.0) as gw:
            gw.serve(make_requests(targets[:2]), timeout=120)
            document = gw.stats_dict()
        assert document["gateway"]["workers"] == 2
        assert document["gateway"]["batch_size"] == 3
        assert "caches" in document  # the service's per-topology cache stats
        assert document["episodes"] == 2

    def test_response_cache_replays_identical_results(self, service, targets, references):
        requests = make_requests(targets[:3])
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0,
                     cache_responses=True) as gw:
            first = gw.serve(requests, timeout=120)
            replayed = gw.serve(make_requests(targets[:3]), timeout=120)
            snapshot = gw.stats.snapshot()
        for response, cached, reference in zip(first, replayed, references[:3]):
            assert cached.ok
            # Bitwise the same outcome as the first (executed) pass and the
            # sequential oracle — determinism is what makes caching sound.
            assert cached.steps == response.steps == reference.steps
            assert cached.final_specs == response.final_specs
            assert cached.final_parameters == response.final_parameters
            assert cached.met == response.met
            assert cached.tier == {"response_cache_hits": 1}
            assert cached.request_id == response.request_id  # re-stamped, not stale
        assert snapshot.episodes == 3  # the replay ran no new episodes
        assert snapshot.cache_hits == 3

    def test_response_cache_distinguishes_groups(self, service, targets):
        # Same specs, different max_steps -> different episode -> no hit.
        spec = dict(targets[0])
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0,
                     cache_responses=True) as gw:
            gw.serve([ServeRequest(target_specs=spec, max_steps=MAX_STEPS)], timeout=120)
            gw.serve([ServeRequest(target_specs=spec, max_steps=3)], timeout=120)
            snapshot = gw.stats.snapshot()
        assert snapshot.episodes == 2
        assert snapshot.cache_hits == 0

    def test_response_cache_off_by_default(self, service, targets):
        requests = make_requests(targets[:1])
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0) as gw:
            gw.serve(requests, timeout=120)
            gw.serve(make_requests(targets[:1]), timeout=120)
            snapshot = gw.stats.snapshot()
        assert snapshot.episodes == 2
        assert snapshot.cache_hits == 0
        assert gw.stats_dict()["gateway"]["cache_responses"] is False

    def test_close_is_idempotent_and_joins_workers(self, service):
        gw = Gateway(service, num_workers=2)
        gw.close()
        gw.close()
        assert all(not worker.is_alive() for worker in gw._workers)
        with pytest.raises(RuntimeError, match="closed"):
            gw.submit({"gain": 1.0})

    def test_constructor_validation(self, service):
        with pytest.raises(ValueError, match="num_workers"):
            Gateway(service, num_workers=0)
        with pytest.raises(ValueError, match="max_batch_delay_ms"):
            Gateway(service, max_batch_delay_ms=-1.0)
        with pytest.raises(ValueError, match="request_timeout_s"):
            Gateway(service, request_timeout_s=0.0)
        with pytest.raises(TypeError, match="ServeRequest"):
            with Gateway(service) as gw:
                gw.submit(42)


class TestProcessShardPool:
    def test_shard_parity_and_shared_corpus(self, policy, targets, references, tmp_path):
        from repro.serve import ProcessShardPool

        checkpoint = repro.save_checkpoint(
            tmp_path / "ckpt.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
        )
        corpus = tmp_path / "corpus"
        with ProcessShardPool(
            {"opamp-p2s-v0": checkpoint}, shards=2, batch_size=2, cache_dir=corpus
        ) as pool:
            with Gateway(pool, num_workers=2, max_batch_delay_ms=5.0) as gw:
                responses = gw.serve(make_requests(targets[:4]), timeout=300)
            snapshot = pool.stats.snapshot()
        for response, reference in zip(responses, references[:4]):
            assert response.ok
            assert response.steps == reference.steps
            assert response.final_specs == reference.final_specs
        assert snapshot.episodes == 4
        assert corpus.is_dir() and any(corpus.iterdir())  # shards shared the corpus

    def test_routing_and_fixed_registration(self, policy, tmp_path):
        from repro.agents.checkpoint import CheckpointError
        from repro.serve import ProcessShardPool

        checkpoint = repro.save_checkpoint(
            tmp_path / "ckpt.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
        )
        with ProcessShardPool({"opamp-p2s-v0": checkpoint}, shards=1) as pool:
            assert pool.resolve_env_id(None) == "opamp-p2s-v0"
            with pytest.raises(ValueError, match="opamp-p2s-v0"):
                pool.resolve_env_id("nope-v0")
            with pytest.raises(CheckpointError, match="fixed at construction"):
                pool.add_checkpoint(checkpoint, env_id="other-v0")
        with pytest.raises(ValueError, match="at least one"):
            ProcessShardPool({})
