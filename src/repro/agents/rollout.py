"""Rollout storage and generalized advantage estimation for PPO.

Algorithm 1 of the paper collects a set of trajectories with the current
policy, computes rewards-to-go and advantage estimates, and then performs the
clipped PPO update.  :class:`RolloutBuffer` stores the collected transitions
and implements the return / GAE(λ) computation; minibatch iteration is used
by the PPO epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.env.spaces import Observation


@dataclass
class Transition:
    """One environment step as stored for the PPO update."""

    observation: Observation
    action: np.ndarray
    log_prob: float
    value: float
    reward: float
    done: bool


class RolloutBuffer:
    """Container for on-policy transitions with GAE(λ) post-processing."""

    def __init__(self, gamma: float = 0.99, gae_lambda: float = 0.95) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 <= gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.transitions: List[Transition] = []
        self.advantages: Optional[np.ndarray] = None
        self.returns: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.transitions)

    def add(
        self,
        observation: Observation,
        action: np.ndarray,
        log_prob: float,
        value: float,
        reward: float,
        done: bool,
    ) -> None:
        self.transitions.append(
            Transition(
                observation=observation,
                action=np.asarray(action, dtype=np.int64).copy(),
                log_prob=float(log_prob),
                value=float(value),
                reward=float(reward),
                done=bool(done),
            )
        )
        # Any previously computed advantages are stale.
        self.advantages = None
        self.returns = None

    def clear(self) -> None:
        self.transitions.clear()
        self.advantages = None
        self.returns = None

    # ------------------------------------------------------------------
    # Advantage computation
    # ------------------------------------------------------------------
    def compute_returns_and_advantages(self, normalize: bool = True) -> None:
        """Compute GAE(λ) advantages and discounted returns in place.

        Episodes are assumed to be stored back-to-back with ``done=True`` on
        their final transition; bootstrapping across an episode boundary is
        therefore never performed, and the terminal value is taken as zero
        (episodes end either on success — where the bonus reward already
        encodes the outcome — or on the fixed step budget).
        """
        count = len(self.transitions)
        if count == 0:
            raise ValueError("cannot compute advantages for an empty buffer")
        rewards = np.array([t.reward for t in self.transitions])
        values = np.array([t.value for t in self.transitions])
        dones = np.array([t.done for t in self.transitions], dtype=bool)

        advantages = np.zeros(count)
        last_advantage = 0.0
        for step in reversed(range(count)):
            if dones[step]:
                next_value = 0.0
                last_advantage = 0.0
            else:
                next_value = values[step + 1]
            delta = rewards[step] + self.gamma * next_value - values[step]
            last_advantage = delta + self.gamma * self.gae_lambda * last_advantage
            advantages[step] = last_advantage
        returns = advantages + values
        if normalize and count > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std
        self.advantages = advantages
        self.returns = returns

    # ------------------------------------------------------------------
    # Minibatch iteration
    # ------------------------------------------------------------------
    def minibatch_indices(
        self, rng: np.random.Generator, batch_size: int
    ) -> Iterator[np.ndarray]:
        """Yield shuffled index minibatches covering the whole buffer."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        permutation = rng.permutation(len(self.transitions))
        for start in range(0, len(permutation), batch_size):
            yield permutation[start:start + batch_size]

    # ------------------------------------------------------------------
    # Episode statistics
    # ------------------------------------------------------------------
    def episode_rewards(self) -> List[float]:
        """Total reward of each completed episode in the buffer."""
        totals: List[float] = []
        current = 0.0
        for transition in self.transitions:
            current += transition.reward
            if transition.done:
                totals.append(current)
                current = 0.0
        return totals

    def episode_lengths(self) -> List[int]:
        """Length of each completed episode in the buffer."""
        lengths: List[int] = []
        current = 0
        for transition in self.transitions:
            current += 1
            if transition.done:
                lengths.append(current)
                current = 0
        return lengths
