"""Vectorized circuit-design environment: N episodes stepped as one batch.

The paper's experiments spend nearly all wall-clock in the environment inner
loop — one simulation plus one policy inference per step per seed.
:class:`VectorCircuitEnv` batches that loop: it owns ``N`` sub-environments
that share one circuit topology and one memoizing
:class:`~repro.parallel.cache.SimulationCache`, exposes ``reset``/``step``
over stacked action matrices, and assembles
:class:`~repro.env.spaces.BatchedObservation` batches that feed the policy's
batched forward pass (one autograd graph for the whole batch instead of one
per environment).

Parity contract
---------------
Sub-environment ``i`` of ``VectorCircuitEnv.from_env(env, num_envs=k,
seed=s)`` behaves bitwise-identically to a sequential
:class:`~repro.env.circuit_env.CircuitDesignEnv` built with ``seed=s + i``:
observations, rewards, termination flags and info dicts match exactly,
because each sub-environment *is* a ``CircuitDesignEnv`` running the very
same code — vectorization batches the surrounding bookkeeping and the policy
math, never the physics.  ``num_envs=1`` therefore *is* the sequential path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.env.circuit_env import CircuitDesignEnv, EpisodeTrajectory
from repro.env.spaces import BatchedObservation, Observation
from repro.parallel.cache import DEFAULT_CACHE_SIZE, SimulationCache

#: Targets accepted by ``reset``: nothing (each sub-env samples its own), one
#: group broadcast to every sub-env, or one group per sub-env.
TargetSpecs = Union[None, Mapping[str, float], Sequence[Mapping[str, float]]]


class VectorCircuitEnv:
    """Batch of :class:`CircuitDesignEnv` instances behind one step interface.

    Parameters
    ----------
    envs:
        Sub-environments.  All must share one circuit topology (same
        benchmark, same graph shape); they may share a simulator — typically
        one :class:`SimulationCache` — so repeated candidate evaluations
        across the batch are simulated once.
    autoreset:
        When True (the default), a sub-environment that finishes its episode
        during :meth:`step` is reset immediately; the returned observation
        row is the fresh post-reset observation and the terminal observation
        rides along in ``info["terminal_observation"]``.  When False,
        stepping a finished sub-environment raises, exactly like the
        sequential environment.
    cache:
        The shared :class:`SimulationCache`, if any, kept for stats
        introspection (``vector_env.cache.stats.hit_rate``).
    compile:
        When True, :meth:`step` first tries a
        :class:`~repro.compile.env_plan.CompiledEpisodePlan` — a traced,
        batched replay of this exact configuration that is probed bitwise
        against the interpreted path at build time.  Configurations the
        tracer cannot reproduce bitwise fall back to the interpreted loop
        (the build failure is cached, see :attr:`compiled_fallback_reason`);
        either way the observable behaviour is identical.
    """

    def __init__(
        self,
        envs: Sequence[CircuitDesignEnv],
        autoreset: bool = True,
        cache: Optional[SimulationCache] = None,
        compile: bool = False,
    ) -> None:
        if not envs:
            raise ValueError("VectorCircuitEnv needs at least one sub-environment")
        first = envs[0]
        for env in envs[1:]:
            if env.benchmark.name != first.benchmark.name:
                raise ValueError(
                    "all sub-environments must share one circuit topology, got "
                    f"'{first.benchmark.name}' and '{env.benchmark.name}'"
                )
            if env.num_graph_nodes != first.num_graph_nodes:
                raise ValueError("all sub-environments must share one graph shape")
        self.envs: List[CircuitDesignEnv] = list(envs)
        self.autoreset = bool(autoreset)
        self.cache = cache
        self.compile = bool(compile)
        self._plan_cache: Optional[Any] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_env(
        cls,
        env: CircuitDesignEnv,
        num_envs: int,
        seed: Optional[int] = None,
        cache_size: Optional[int] = DEFAULT_CACHE_SIZE,
        autoreset: bool = True,
        compile: bool = False,
    ) -> "VectorCircuitEnv":
        """Replicate a template environment into an ``num_envs``-wide batch.

        Sub-environment ``i`` receives seed ``seed + i`` (all unseeded when
        ``seed`` is None) and a fresh netlist; the benchmark and reward
        function are shared (both are stateless), and the template's
        simulator is wrapped in one shared :class:`SimulationCache` unless
        ``cache_size`` is None.  The template itself is left untouched.
        """
        if num_envs <= 0:
            raise ValueError("num_envs must be positive")
        simulator = env.simulator
        cache: Optional[SimulationCache] = None
        if cache_size is not None:
            if isinstance(simulator, SimulationCache):
                cache = simulator
            else:
                cache = SimulationCache(simulator, max_entries=cache_size)
                simulator = cache
        envs = [
            CircuitDesignEnv(
                benchmark=env.benchmark,
                simulator=simulator,
                reward_fn=env.reward_fn,
                max_steps=env.max_steps,
                initial_sizing=env.initial_sizing,
                goal_tolerance=env.goal_tolerance,
                seed=None if seed is None else seed + index,
            )
            for index in range(num_envs)
        ]
        return cls(envs, autoreset=autoreset, cache=cache, compile=compile)

    # ------------------------------------------------------------------
    # Introspection (mirrors the sequential environment)
    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.envs)

    def __len__(self) -> int:
        return len(self.envs)

    @property
    def benchmark(self):
        return self.envs[0].benchmark

    @property
    def action_space(self):
        return self.envs[0].action_space

    @property
    def max_steps(self) -> int:
        return self.envs[0].max_steps

    @property
    def num_parameters(self) -> int:
        return self.envs[0].num_parameters

    @property
    def spec_feature_dimension(self) -> int:
        return self.envs[0].spec_feature_dimension

    @property
    def node_feature_dimension(self) -> int:
        return self.envs[0].node_feature_dimension

    @property
    def num_graph_nodes(self) -> int:
        return self.envs[0].num_graph_nodes

    @property
    def is_fom_mode(self) -> bool:
        return self.envs[0].is_fom_mode

    @property
    def trajectories(self) -> List[Optional[EpisodeTrajectory]]:
        """Current (or last) trajectory of each sub-environment."""
        return [env.trajectory for env in self.envs]

    @property
    def parameter_values(self) -> np.ndarray:
        """Stacked ``(N, M)`` parameter vectors of the sub-environments."""
        return np.stack([env.parameter_values for env in self.envs])

    def sample_targets(self) -> List[Dict[str, float]]:
        """One Table-1 target group per sub-environment (per-env RNG streams)."""
        return [env.sample_target() for env in self.envs]

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def _per_env_targets(self, target_specs: TargetSpecs) -> List[Optional[Mapping[str, float]]]:
        if target_specs is None:
            return [None] * self.num_envs
        if isinstance(target_specs, Mapping):
            return [target_specs] * self.num_envs
        targets = list(target_specs)
        if len(targets) != self.num_envs:
            raise ValueError(
                f"expected {self.num_envs} target groups, got {len(targets)}"
            )
        return targets

    def _per_env_parameters(
        self, initial_parameters: Optional[np.ndarray]
    ) -> List[Optional[np.ndarray]]:
        if initial_parameters is None:
            return [None] * self.num_envs
        initial = np.asarray(initial_parameters, dtype=np.float64)
        if initial.ndim == 1:
            return [initial] * self.num_envs
        if initial.ndim == 2 and initial.shape[0] == self.num_envs:
            return [initial[index] for index in range(self.num_envs)]
        raise ValueError(
            f"initial_parameters must be (M,) or ({self.num_envs}, M), "
            f"got shape {initial.shape}"
        )

    def reset(
        self,
        target_specs: TargetSpecs = None,
        initial_parameters: Optional[np.ndarray] = None,
    ) -> BatchedObservation:
        """Reset every sub-environment; returns the stacked first observations.

        With the shared :class:`SimulationCache` and the default ``"center"``
        initial sizing, the batch pays for a single initial simulation — the
        remaining ``N - 1`` resets are cache hits.
        """
        targets = self._per_env_targets(target_specs)
        parameters = self._per_env_parameters(initial_parameters)
        observations = [
            env.reset(target_specs=target, initial_parameters=params)
            for env, target, params in zip(self.envs, targets, parameters)
        ]
        return BatchedObservation.stack(observations)

    def reset_at(self, index: int, target_specs: Optional[Mapping[str, float]] = None):
        """Reset one sub-environment (sequential-style, returns its Observation)."""
        return self.envs[index].reset(target_specs=target_specs)

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    def _plan_config(self) -> Tuple[object, ...]:
        """Identity snapshot of everything a compiled plan bakes at trace time.

        Mutable knobs the plan reads live (``goal_bonus``, ``max_steps``,
        ``autoreset``, ...) are deliberately absent; swapping any of the
        objects below invalidates the cached plan on the next step.
        """
        return (
            self.num_envs,
            id(self.benchmark),
            id(self.cache),
            tuple(id(env) for env in self.envs),
            tuple(id(env.benchmark) for env in self.envs),
            tuple(id(env.simulator) for env in self.envs),
            tuple(id(env.reward_fn) for env in self.envs),
        )

    @property
    def plan_cache(self):
        """The per-instance :class:`~repro.compile.plan_cache.PlanCache`."""
        if self._plan_cache is None:
            from repro.compile.plan_cache import PlanCache

            self._plan_cache = PlanCache()
        return self._plan_cache

    @property
    def compiled_plan(self):
        """The active compiled episode plan, building it on first access.

        Returns ``None`` when ``compile`` is off or this configuration is
        untraceable (see :attr:`compiled_fallback_reason`).
        """
        if not self.compile:
            return None
        from repro.compile.env_plan import CompiledEpisodePlan

        return self.plan_cache.get_or_build(
            "episode",
            lambda: CompiledEpisodePlan(self),
            config=self._plan_config(),
        )

    @property
    def compiled_fallback_reason(self) -> Optional[str]:
        """Why plan *building* failed (``None`` when compiled or never tried).

        Per-step runtime fallbacks are reported separately on the plan itself
        (``compiled_plan.last_fallback_reason``).
        """
        if self._plan_cache is None:
            return None
        return self._plan_cache.failure_reason("episode")

    def step(
        self, actions: np.ndarray
    ) -> Tuple[BatchedObservation, np.ndarray, np.ndarray, List[Dict[str, object]]]:
        """Apply one ``(N, M)`` action matrix across the batch.

        Returns ``(observations, rewards, dones, infos)`` with rewards and
        dones as ``(N,)`` arrays.  Each row is exactly what the corresponding
        sequential environment would have returned for the same action.

        With ``compile=True`` the step replays a
        :class:`~repro.compile.env_plan.CompiledEpisodePlan` when one can be
        built for this configuration; otherwise (and for any step the plan's
        own preconditions reject) the interpreted loop below runs unchanged.
        """
        if self.compile:
            plan = self.compiled_plan
            if plan is not None:
                return plan.step(actions)
        return self._step_interpreted(actions)

    def _step_interpreted(
        self, actions: np.ndarray
    ) -> Tuple[BatchedObservation, np.ndarray, np.ndarray, List[Dict[str, object]]]:
        """The reference per-environment loop (also the compiled fallback)."""
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.num_envs, self.num_parameters):
            raise ValueError(
                f"expected actions of shape ({self.num_envs}, {self.num_parameters}), "
                f"got {actions.shape}"
            )
        observations = []
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict[str, object]] = []
        for index, env in enumerate(self.envs):
            observation, reward, done, info = env.step(actions[index])
            if done and self.autoreset:
                info["terminal_observation"] = observation
                observation = env.reset()
            observations.append(observation)
            rewards[index] = reward
            dones[index] = done
            infos.append(info)
        return BatchedObservation.stack(observations), rewards, dones, infos

    def step_selected(
        self, indices: Sequence[int], actions: np.ndarray
    ) -> Tuple[List["Observation"], np.ndarray, np.ndarray, List[Dict[str, object]]]:
        """Step only the sub-environments named by ``indices``.

        ``actions`` rows align with ``indices`` (``actions[row]`` goes to
        sub-environment ``indices[row]``).  Autoreset is *not* applied —
        a finished sub-environment keeps its terminal state, exactly like the
        sequential environment — which is what lock-step batched deployment
        needs: episodes in one micro-batch finish at different steps, and the
        finished ones must simply drop out of the batch.

        Returns ``(observations, rewards, dones, infos)`` with one entry per
        requested index (observations as per-environment
        :class:`~repro.env.spaces.Observation` objects, ready to be
        re-stacked over whichever subset is still active).
        """
        indices = list(indices)
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (len(indices), self.num_parameters):
            raise ValueError(
                f"expected actions of shape ({len(indices)}, {self.num_parameters}), "
                f"got {actions.shape}"
            )
        observations: List[Observation] = []
        rewards = np.zeros(len(indices))
        dones = np.zeros(len(indices), dtype=bool)
        infos: List[Dict[str, object]] = []
        for row, index in enumerate(indices):
            observation, reward, done, info = self.envs[index].step(actions[row])
            observations.append(observation)
            rewards[row] = reward
            dones[row] = done
            infos.append(info)
        return observations, rewards, dones, infos

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VectorCircuitEnv(num_envs={self.num_envs}, "
            f"circuit={self.benchmark.name!r}, autoreset={self.autoreset})"
        )
