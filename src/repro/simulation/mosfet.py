"""Square-law MOSFET large- and small-signal model.

This is the device model behind both the analytical op-amp evaluator
(:mod:`repro.simulation.opamp_sim`) and the nonlinear MNA stamps
(:mod:`repro.simulation.mna`).  It implements the standard long-channel
square-law equations with channel-length modulation:

* cut-off      : ``V_gs <= V_th``            → ``I_D = 0``
* triode       : ``V_ds <  V_gs - V_th``     → ``I_D = k S ((Vgs-Vth)Vds - Vds²/2)(1+λVds)``
* saturation   : ``V_ds >= V_gs - V_th``     → ``I_D = k S (Vgs-Vth)²/2 (1+λVds)``

with ``S = W_total / L_ref`` the device strength.  PMOS devices are handled
by sign reflection.  The small-signal quantities ``gm`` and ``ro`` follow by
differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from repro.simulation.technology import CmosTechnology


class Region(Enum):
    """DC operating region of a MOSFET."""

    CUTOFF = "cutoff"
    TRIODE = "triode"
    SATURATION = "saturation"


@dataclass(frozen=True)
class OperatingPoint:
    """DC operating point and small-signal parameters of one device."""

    drain_current: float
    region: Region
    gm: float
    gds: float
    vgs: float
    vds: float
    overdrive: float

    @property
    def ro(self) -> float:
        """Small-signal output resistance (ohms); infinite in cut-off."""
        if self.gds <= 0.0:
            return float("inf")
        return 1.0 / self.gds


class MosfetModel:
    """Square-law model of a single NMOS or PMOS device.

    Parameters
    ----------
    technology:
        Process constants.
    polarity:
        ``"nmos"`` or ``"pmos"``.
    width, fingers:
        Device geometry; total width is ``width * fingers``.
    """

    def __init__(
        self,
        technology: CmosTechnology,
        polarity: str,
        width: float,
        fingers: float,
    ) -> None:
        polarity = polarity.lower()
        if polarity not in {"nmos", "pmos"}:
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got '{polarity}'")
        self.technology = technology
        self.polarity = polarity
        self.width = float(width)
        self.fingers = float(fingers)
        self.strength = technology.strength(width, fingers)
        if polarity == "nmos":
            self.kp = technology.kp_n
            self.vth = technology.vth_n
            self.channel_lambda = technology.lambda_n
        else:
            self.kp = technology.kp_p
            self.vth = technology.vth_p
            self.channel_lambda = technology.lambda_p

    # ------------------------------------------------------------------
    # Large-signal model
    # ------------------------------------------------------------------
    def _oriented(self, vgs: float, vds: float) -> Tuple[float, float]:
        """Map terminal voltages into the NMOS-oriented frame."""
        if self.polarity == "nmos":
            return vgs, vds
        return -vgs, -vds

    def drain_current(self, vgs: float, vds: float) -> float:
        """Signed drain current (A) flowing drain→source for NMOS orientation.

        For a PMOS device the returned value is negative when the device
        conducts (current flows source→drain), matching SPICE conventions.
        """
        v_gs, v_ds = self._oriented(vgs, vds)
        current = self._nmos_current(v_gs, v_ds)
        return current if self.polarity == "nmos" else -current

    def _nmos_current(self, vgs: float, vds: float) -> float:
        vov = vgs - self.vth
        if vov <= 0.0:
            return 0.0
        sign = 1.0
        if vds < 0.0:
            # Source and drain swap roles; keep the model symmetric.
            vds = -vds
            sign = -1.0
        if vds < vov:
            # ``vds * vds`` (not ``vds**2``): scalar pow can differ from the
            # multiply numpy lowers ``arr**2`` to by 1 ulp, and the compiled
            # vectorized twin (repro.compile.sim_kernels) must match bitwise.
            ids = self.kp * self.strength * (vov * vds - 0.5 * (vds * vds))
        else:
            ids = 0.5 * self.kp * self.strength * (vov * vov)
        return sign * ids * (1.0 + self.channel_lambda * vds)

    def region(self, vgs: float, vds: float) -> Region:
        v_gs, v_ds = self._oriented(vgs, vds)
        vov = v_gs - self.vth
        if vov <= 0.0:
            return Region.CUTOFF
        if abs(v_ds) < vov:
            return Region.TRIODE
        return Region.SATURATION

    # ------------------------------------------------------------------
    # Small-signal model
    # ------------------------------------------------------------------
    def operating_point(self, vgs: float, vds: float) -> OperatingPoint:
        """Evaluate the DC point and small-signal ``gm`` / ``gds``."""
        v_gs, v_ds = self._oriented(vgs, vds)
        region = self.region(vgs, vds)
        current = abs(self._nmos_current(v_gs, v_ds))
        vov = max(v_gs - self.vth, 0.0)
        if region is Region.CUTOFF:
            gm = 0.0
            gds = 0.0
        elif region is Region.TRIODE:
            gds = self.kp * self.strength * max(vov - abs(v_ds), 0.0)
            gm = self.kp * self.strength * abs(v_ds)
        else:
            gm = self.kp * self.strength * vov * (1.0 + self.channel_lambda * abs(v_ds))
            gds = 0.5 * self.kp * self.strength * (vov * vov) * self.channel_lambda
        return OperatingPoint(
            drain_current=current,
            region=region,
            gm=gm,
            gds=gds,
            vgs=vgs,
            vds=vds,
            overdrive=vov,
        )

    # ------------------------------------------------------------------
    # Design-oriented helpers used by the analytical op-amp evaluator
    # ------------------------------------------------------------------
    def saturation_current(self, overdrive: float) -> float:
        """``I_D`` in saturation for a given overdrive (λVds ignored)."""
        if overdrive <= 0.0:
            return 0.0
        return 0.5 * self.kp * self.strength * (overdrive * overdrive)

    def gm_at_current(self, drain_current: float) -> float:
        """``gm = sqrt(2 k S I_D)`` for a device in saturation."""
        if drain_current <= 0.0:
            return 0.0
        return float(np.sqrt(2.0 * self.kp * self.strength * drain_current))

    def ro_at_current(self, drain_current: float) -> float:
        """``ro = 1 / (λ I_D)`` for a device in saturation."""
        if drain_current <= 0.0:
            return float("inf")
        return 1.0 / (self.channel_lambda * drain_current)

    def overdrive_at_current(self, drain_current: float) -> float:
        """Overdrive voltage required to conduct ``drain_current`` in saturation."""
        if drain_current <= 0.0:
            return 0.0
        return float(np.sqrt(2.0 * drain_current / (self.kp * self.strength)))

    def gate_capacitance(self) -> float:
        """Approximate total gate capacitance ``Cox W_total L_ref`` (F)."""
        area = self.width * self.fingers * self.technology.l_ref
        return self.technology.cox_per_area * area
