"""Common simulator interface shared by every circuit evaluator.

The RL environment (Fig. 2 of the paper) only ever asks the simulator one
question: "given the current netlist, what are the intermediate
specifications?".  :class:`CircuitSimulator` fixes that contract so the
environment, the optimization baselines and the experiment harness can use
the analytical op-amp evaluator, the harmonic-balance-like PA evaluator and
the coarse PA evaluator interchangeably — including the coarse→fine swap at
the heart of the transfer-learning contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol

from repro.circuits.netlist import Netlist


@dataclass
class SimulationResult:
    """Outcome of one simulation call.

    Attributes
    ----------
    specs:
        Measured intermediate specifications keyed by specification name
        (matching the circuit's :class:`~repro.circuits.specs.SpecificationSpace`).
    details:
        Additional operating-point information (currents, pole locations,
        conduction angle, …) useful for debugging and for reports.
    valid:
        False when the operating point is degenerate (e.g. a device is cut
        off so the amplifier has no gain); environments translate this into a
        strongly negative reward rather than crashing.
    """

    specs: Dict[str, float]
    details: Dict[str, float] = field(default_factory=dict)
    valid: bool = True

    def spec(self, name: str) -> float:
        try:
            return self.specs[name]
        except KeyError as exc:
            raise KeyError(f"simulation result has no spec '{name}'") from exc


class CircuitSimulator(Protocol):
    """Anything that can evaluate a netlist into intermediate specifications."""

    #: Human-readable simulator name (shown in experiment reports).
    name: str

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Evaluate the netlist and return the measured specifications."""
        ...


#: Canonical short name of the simulator protocol.  Every evaluation tier —
#: the analytic/MNA evaluators, the memoizing :class:`SimulationCache` and
#: :class:`DiskSimulationCache` wrappers, and the learned
#: :class:`~repro.surrogate.TieredSimulator` — satisfies this one contract,
#: which is what lets the tiers nest in any order.
Simulator = CircuitSimulator
