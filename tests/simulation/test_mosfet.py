"""Tests for the square-law MOSFET model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.mosfet import MosfetModel, Region
from repro.simulation.technology import CMOS_45NM


@pytest.fixture
def nmos_model() -> MosfetModel:
    return MosfetModel(CMOS_45NM, "nmos", width=10e-6, fingers=4)


@pytest.fixture
def pmos_model() -> MosfetModel:
    return MosfetModel(CMOS_45NM, "pmos", width=10e-6, fingers=4)


class TestRegions:
    def test_cutoff(self, nmos_model):
        assert nmos_model.region(vgs=0.2, vds=0.6) is Region.CUTOFF
        assert nmos_model.drain_current(0.2, 0.6) == 0.0

    def test_triode_and_saturation(self, nmos_model):
        assert nmos_model.region(vgs=0.8, vds=0.1) is Region.TRIODE
        assert nmos_model.region(vgs=0.8, vds=0.6) is Region.SATURATION

    def test_pmos_regions_mirror_nmos(self, pmos_model):
        assert pmos_model.region(vgs=-0.8, vds=-0.6) is Region.SATURATION
        assert pmos_model.region(vgs=-0.8, vds=-0.1) is Region.TRIODE
        assert pmos_model.region(vgs=-0.2, vds=-0.6) is Region.CUTOFF


class TestCurrents:
    def test_saturation_value_matches_square_law(self, nmos_model):
        vov = 0.3
        expected = 0.5 * CMOS_45NM.kp_n * nmos_model.strength * vov**2
        current = nmos_model.drain_current(CMOS_45NM.vth_n + vov, 1.0)
        assert current == pytest.approx(expected * (1 + CMOS_45NM.lambda_n * 1.0))

    def test_pmos_current_sign(self, pmos_model):
        assert pmos_model.drain_current(-0.8, -0.6) < 0.0
        assert pmos_model.drain_current(-0.2, -0.6) == 0.0

    def test_current_continuous_at_saturation_boundary(self, nmos_model):
        vov = 0.25
        vgs = CMOS_45NM.vth_n + vov
        below = nmos_model.drain_current(vgs, vov - 1e-6)
        above = nmos_model.drain_current(vgs, vov + 1e-6)
        assert below == pytest.approx(above, rel=1e-3)

    def test_symmetric_for_negative_vds(self, nmos_model):
        forward = nmos_model.drain_current(0.8, 0.2)
        reverse = nmos_model.drain_current(0.8, -0.2)
        assert reverse == pytest.approx(-forward)


class TestSmallSignal:
    def test_operating_point_gm_gds(self, nmos_model):
        op = nmos_model.operating_point(vgs=0.8, vds=0.8)
        assert op.region is Region.SATURATION
        assert op.gm > 0.0
        assert op.gds > 0.0
        assert op.ro == pytest.approx(1.0 / op.gds)
        assert op.overdrive == pytest.approx(0.4)

    def test_cutoff_small_signal_is_zero(self, nmos_model):
        op = nmos_model.operating_point(vgs=0.1, vds=0.5)
        assert op.gm == 0.0
        assert op.gds == 0.0
        assert op.ro == float("inf")

    def test_gm_at_current_consistency(self, nmos_model):
        """gm computed from current matches gm from the operating point."""
        vov = 0.3
        current = nmos_model.saturation_current(vov)
        gm_from_current = nmos_model.gm_at_current(current)
        expected = CMOS_45NM.kp_n * nmos_model.strength * vov
        assert gm_from_current == pytest.approx(expected, rel=1e-9)

    def test_overdrive_at_current_roundtrip(self, nmos_model):
        vov = 0.22
        current = nmos_model.saturation_current(vov)
        assert nmos_model.overdrive_at_current(current) == pytest.approx(vov)

    def test_ro_at_current(self, nmos_model):
        assert nmos_model.ro_at_current(1e-4) == pytest.approx(1.0 / (CMOS_45NM.lambda_n * 1e-4))
        assert nmos_model.ro_at_current(0.0) == float("inf")

    def test_gate_capacitance_scales_with_area(self):
        small = MosfetModel(CMOS_45NM, "nmos", 10e-6, 2)
        large = MosfetModel(CMOS_45NM, "nmos", 20e-6, 4)
        assert large.gate_capacitance() == pytest.approx(4 * small.gate_capacitance())


class TestValidation:
    def test_polarity_check(self):
        with pytest.raises(ValueError):
            MosfetModel(CMOS_45NM, "jfet", 1e-6, 2)

    def test_strength_requires_positive_geometry(self):
        with pytest.raises(ValueError):
            CMOS_45NM.strength(0.0, 2)


@settings(max_examples=40, deadline=None)
@given(
    vgs=st.floats(min_value=0.0, max_value=1.2),
    vds=st.floats(min_value=0.01, max_value=1.2),
    width_um=st.floats(min_value=1.0, max_value=100.0),
)
def test_property_current_monotone_in_vgs_and_width(vgs, vds, width_um):
    """Drain current never decreases with gate drive or with device width."""
    model = MosfetModel(CMOS_45NM, "nmos", width_um * 1e-6, 4)
    wider = MosfetModel(CMOS_45NM, "nmos", (width_um + 10.0) * 1e-6, 4)
    base = model.drain_current(vgs, vds)
    assert model.drain_current(vgs + 0.1, vds) >= base
    assert wider.drain_current(vgs, vds) >= base
    assert base >= 0.0
