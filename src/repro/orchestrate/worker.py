"""Worker-side unit execution.

Everything in this module is a *top-level function over plain dicts*: the
pool pickles nothing but unit dictionaries, and the runner is re-resolved
from its dotted path inside the worker process, so units survive any
``multiprocessing`` start method (fork, forkserver, spawn).

The failure contract is central: :func:`execute_unit` converts *any*
exception a runner raises into a ``status="failed"`` record carrying the
full traceback.  A raising unit therefore never poisons the pool — sibling
units keep executing, the orchestrator persists the failure for inspection,
and a resumed sweep re-runs exactly the failed units.
"""

from __future__ import annotations

import importlib
import time
import traceback
from typing import Any, Callable, Dict, Mapping, Optional

from repro.orchestrate.units import DEFAULT_RUNNER, UnitRecord, WorkUnit


def resolve_runner(spec: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Import ``"package.module:function"`` and return the function."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"runner must look like 'package.module:function', got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        runner = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from exc
    if not callable(runner):
        raise TypeError(f"runner {spec!r} is not callable")
    return runner


def execute_unit(unit_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one serialized :class:`WorkUnit`; never raises.

    Returns a :class:`~repro.orchestrate.units.UnitRecord` dict whose status
    reflects what happened; runner exceptions become ``"failed"`` records
    with the traceback in ``error``.
    """
    start = time.perf_counter()
    record: Dict[str, Any] = {
        "unit_id": unit_dict.get("unit_id", "?"),
        "key": unit_dict.get("key", ""),
        "runner": unit_dict.get("runner", DEFAULT_RUNNER),
        "payload": unit_dict.get("payload") or {},
        "result": None,
        "error": None,
    }
    try:
        runner = resolve_runner(record["runner"])
        arguments = dict(record["payload"])
        arguments.update(unit_dict.get("execution") or {})
        result = runner(arguments)
        record["status"] = "completed"
        record["result"] = result if result is None or isinstance(result, dict) else {
            "value": result
        }
    except Exception:
        record["status"] = "failed"
        record["error"] = traceback.format_exc()
    record["wall_time_s"] = time.perf_counter() - start
    return record


def execute_unit_record(unit: WorkUnit) -> UnitRecord:
    """In-process convenience: execute one unit and parse the record."""
    return UnitRecord.from_dict(execute_unit(unit.to_dict()))


# ----------------------------------------------------------------------
# The default runner: one serialized RunConfig
# ----------------------------------------------------------------------
def attach_disk_cache(env, spec: Optional[Mapping[str, Any]]):
    """Interpose a :class:`repro.parallel.DiskSimulationCache` on ``env``.

    ``spec`` is ``{"dir": path, "max_disk_entries": int|None,
    "max_entries": int|None}``; None disables the persistent tier.  An
    in-memory cache the env already carries is unwrapped so both tiers never
    stack (the disk cache embeds its own LRU).  Returns the cache, or None.
    """
    from repro.parallel.cache import DEFAULT_CACHE_SIZE, SimulationCache
    from repro.parallel.disk_cache import DiskSimulationCache
    from repro.parallel.vector_env import VectorCircuitEnv

    if spec is None:
        return None
    spec = dict(spec)
    if "dir" not in spec:
        raise ValueError("disk_cache spec requires a 'dir' key")
    if isinstance(env, VectorCircuitEnv):
        simulator = env.envs[0].simulator
    else:
        simulator = env.simulator
    if isinstance(simulator, SimulationCache):
        simulator = simulator.simulator
    cache = DiskSimulationCache(
        simulator,
        directory=spec["dir"],
        max_entries=int(spec.get("max_entries") or DEFAULT_CACHE_SIZE),
        max_disk_entries=spec.get("max_disk_entries"),
    )
    if isinstance(env, VectorCircuitEnv):
        for sub_env in env.envs:
            sub_env.simulator = cache
        env.cache = cache
    else:
        env.simulator = cache
    return cache


def run_config_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one serialized :class:`repro.api.RunConfig`.

    ``arguments["run"]`` is the RunConfig dict (the unit's identity);
    ``arguments["disk_cache"]`` (injected via the unit's ``execution``
    mapping) optionally points the run's simulator at a shared persistent
    cache directory.  Returns a JSON digest: the unified result summary, the
    full optimization trace, timing, and cache statistics.
    """
    from repro.api.configs import RunConfig

    config = RunConfig.from_dict(arguments["run"])
    env = config.env.build()
    cache = attach_disk_cache(env, arguments.get("disk_cache"))
    optimizer = config.optimizer.build()
    start = time.perf_counter()
    result = optimizer.optimize(
        env,
        budget=config.budget,
        seed=config.seed,
        target_specs=config.target_specs,
    )
    optimize_time = time.perf_counter() - start

    output: Dict[str, Any] = {
        "result": result.summary(),
        "trace": {
            "objective_values": [float(v) for v in result.trace.objective_values],
            "best_values": [float(v) for v in result.trace.best_values],
        },
        "optimize_time_s": optimize_time,
    }
    stats = result.metadata.get("simulation_cache")
    if stats is None and cache is not None:
        stats = cache.stats
    if stats is not None:
        output["cache"] = stats.to_dict()
    return output
