"""Observation and action space descriptions for the circuit environment.

The action space follows the paper exactly: for each of the ``M`` tunable
device parameters the policy picks one of three moves — decrease by one step,
keep, or increase by one step — so an action is an integer vector of length
``M`` with entries in ``{0, 1, 2}``.

The observation bundles everything any of the compared policies may need:

* the circuit graph (adjacency + *dynamic* node features) for the GNN branch
  of the proposed policy,
* static-technology node features for the Baseline B reproduction,
* the specification context (normalized target specs, normalized measured
  specs, and their normalized gap) for the FCNN branch, and
* the normalized device-parameter vector for the AutoCkt-style Baseline A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

#: Number of choices per parameter (decrease / keep / increase).
NUM_ACTION_CHOICES = 3

#: Action index meanings, matching :data:`repro.circuits.parameters.ACTION_DELTAS`.
ACTION_DECREASE, ACTION_KEEP, ACTION_INCREASE = 0, 1, 2


@dataclass(frozen=True)
class ActionSpace:
    """Discrete ``M x 3`` action space."""

    num_parameters: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_parameters, NUM_ACTION_CHOICES)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random action vector (used by random-policy baselines)."""
        return rng.integers(0, NUM_ACTION_CHOICES, size=self.num_parameters)

    def no_op(self) -> np.ndarray:
        """The all-keep action."""
        return np.full(self.num_parameters, ACTION_KEEP, dtype=np.int64)

    def contains(self, action: np.ndarray) -> bool:
        action = np.asarray(action)
        return (
            action.shape == (self.num_parameters,)
            and np.issubdtype(action.dtype, np.integer)
            and bool(np.all((action >= 0) & (action < NUM_ACTION_CHOICES)))
        )


@dataclass
class Observation:
    """One environment observation (see module docstring)."""

    node_features: np.ndarray
    static_node_features: np.ndarray
    adjacency: np.ndarray
    spec_features: np.ndarray
    normalized_parameters: np.ndarray
    measured_specs: Dict[str, float]
    target_specs: Dict[str, float]

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_parameters(self) -> int:
        return self.normalized_parameters.shape[0]

    def flat_vector(self) -> np.ndarray:
        """Spec context + parameters, the Baseline A (AutoCkt-style) input."""
        return np.concatenate([self.spec_features, self.normalized_parameters])
