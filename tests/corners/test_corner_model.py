"""Unit contract of the PVT corner model: derating math and set validation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.corners import Corner, CornerSet, TYPICAL, default_corner_set
from repro.corners.model import (
    COLD_TEMPERATURE_C,
    FAST_MOBILITY_SCALE,
    FAST_VTH_SCALE,
    HOT_TEMPERATURE_C,
    SLOW_MOBILITY_SCALE,
    SLOW_VTH_SCALE,
)
from repro.simulation.technology import (
    CMOS_45NM,
    GAN_150NM,
    NOMINAL_TEMPERATURE_C,
    temperature_mobility_factor,
    threshold_magnitude_at,
)


class TestTemperatureModel:
    def test_nominal_temperature_is_identity(self):
        assert temperature_mobility_factor(NOMINAL_TEMPERATURE_C) == 1.0
        assert threshold_magnitude_at(0.4, 1.0, NOMINAL_TEMPERATURE_C) == 0.4

    def test_mobility_falls_with_temperature(self):
        cold = temperature_mobility_factor(COLD_TEMPERATURE_C)
        hot = temperature_mobility_factor(HOT_TEMPERATURE_C)
        assert cold > 1.0 > hot > 0.0

    def test_threshold_magnitude_falls_with_temperature(self):
        """Negative tempco: |Vth| shrinks when the junction heats up."""
        cold = threshold_magnitude_at(0.4, 1.0, COLD_TEMPERATURE_C)
        hot = threshold_magnitude_at(0.4, 1.0, HOT_TEMPERATURE_C)
        assert cold > 0.4 > hot > 0.0

    def test_threshold_collapse_is_an_error(self):
        with pytest.raises(ValueError):
            threshold_magnitude_at(0.01, 0.1, HOT_TEMPERATURE_C)


class TestTechnologyAtCorner:
    def test_typical_corner_is_the_original_technology(self):
        derated = TYPICAL.apply(CMOS_45NM)
        for field in dataclasses.fields(CMOS_45NM):
            if field.name == "name":
                continue
            assert getattr(derated, field.name) == getattr(CMOS_45NM, field.name)

    def test_slow_corner_raises_thresholds_and_lowers_mobility(self):
        slow = Corner(
            name="slow",
            vth_scale=SLOW_VTH_SCALE,
            mobility_scale=SLOW_MOBILITY_SCALE,
        ).apply(CMOS_45NM)
        assert slow.vth_n > CMOS_45NM.vth_n
        assert abs(slow.vth_p) > abs(CMOS_45NM.vth_p)
        assert slow.kp_n < CMOS_45NM.kp_n
        assert slow.kp_p < CMOS_45NM.kp_p

    def test_fast_corner_is_the_mirror_image(self):
        fast = Corner(
            name="fast",
            vth_scale=FAST_VTH_SCALE,
            mobility_scale=FAST_MOBILITY_SCALE,
        ).apply(CMOS_45NM)
        assert fast.vth_n < CMOS_45NM.vth_n
        assert fast.kp_n > CMOS_45NM.kp_n

    def test_geometry_is_corner_invariant(self):
        derated = default_corner_set().corners[1].apply(CMOS_45NM)
        assert derated.l_ref == CMOS_45NM.l_ref
        assert derated.cox_per_area == CMOS_45NM.cox_per_area
        assert derated.supply_voltage == CMOS_45NM.supply_voltage

    def test_gan_threshold_keeps_its_sign(self):
        """GaN depletion-mode Vth is negative; derating scales its magnitude."""
        slow = Corner(name="slow", vth_scale=SLOW_VTH_SCALE).apply(GAN_150NM)
        assert slow.vth < GAN_150NM.vth < 0.0

    def test_every_default_corner_keeps_cmos_devices_on(self):
        """CMOS bias points stay above threshold at every default corner.

        The folded cascode's 0.52 V tail bias is the tightest margin in the
        zoo; the GaN PA runs class-AB, so it only needs a negative Vth.
        """
        for corner in default_corner_set():
            derated = corner.apply(CMOS_45NM)
            assert derated.vth_n < 0.52
            assert corner.apply(GAN_150NM).vth < 0.0


class TestCornerValidation:
    def test_rejects_at_sign_in_name(self):
        with pytest.raises(ValueError, match="@"):
            Corner(name="slow@hot")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Corner(name="")

    def test_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError):
            Corner(name="bad", vth_scale=0.0)
        with pytest.raises(ValueError):
            Corner(name="bad", mobility_scale=-1.0)


class TestCornerSet:
    def test_default_set_has_five_named_corners(self):
        corner_set = default_corner_set()
        assert len(corner_set) == 5
        assert corner_set.names[0] == "typical"
        assert set(corner_set.names) == {
            "typical", "slow_hot", "slow_cold", "fast_hot", "fast_cold"
        }

    def test_uniform_weights_by_default(self):
        corner_set = default_corner_set()
        assert np.allclose(corner_set.normalized_weights(), 0.2)

    def test_normalized_weights_sum_to_one(self):
        corner_set = CornerSet(
            corners=(TYPICAL, Corner(name="hot", temperature_c=125.0)),
            weights=(3.0, 1.0),
        )
        weights = corner_set.normalized_weights()
        assert np.isclose(sum(weights), 1.0)
        assert np.isclose(weights[0], 0.75)

    def test_spec_key_joins_with_at(self):
        assert default_corner_set().spec_key("gain", TYPICAL) == "gain@typical"

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            CornerSet(corners=(TYPICAL, Corner(name="typical")))

    def test_rejects_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            CornerSet(corners=(TYPICAL,), weights=(0.5, 0.5))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            CornerSet(
                corners=(TYPICAL, Corner(name="hot", temperature_c=125.0)),
                weights=(1.0, 0.0),
            )
