"""Error types for the compiled-plan subsystem.

The contract of :mod:`repro.compile` is "degrades gracefully, never
wrongly": any configuration the tracer cannot prove it can replay
bitwise-identically raises :class:`UntraceableError` at *build* time, and
callers (``VectorCircuitEnv``, ``compile_policy``) fall back to the
interpreted path.  Replay never guesses.
"""

from __future__ import annotations


class UntraceableError(RuntimeError):
    """Raised when a policy/env configuration cannot be compiled faithfully.

    Carries a human-readable ``reason`` describing the first untraceable
    construct encountered (unknown layer type, unsupported simulator,
    subclassed cache, failed build-time parity probe, ...).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
