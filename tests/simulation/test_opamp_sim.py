"""Tests for the two-stage op-amp evaluator (trends, validity, calibration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build_two_stage_opamp
from repro.simulation.opamp_sim import OpAmpSimulator


def sized_netlist(overrides=None):
    """Fresh op-amp netlist with optional (device, attribute) overrides."""
    benchmark = build_two_stage_opamp()
    netlist = benchmark.fresh_netlist()
    for (device, attribute), value in (overrides or {}).items():
        netlist.set_parameter(device, attribute, value)
    return netlist


class TestSpecOutputs:
    def test_returns_all_four_specs(self, opamp_simulator):
        result = opamp_simulator.simulate(sized_netlist())
        assert set(result.specs) == {"gain", "bandwidth", "phase_margin", "power"}
        assert result.valid
        assert result.spec("gain") > 1.0
        assert result.spec("bandwidth") > 0.0
        assert 0.0 <= result.spec("phase_margin") <= 180.0
        assert result.spec("power") > 0.0

    def test_details_expose_operating_point(self, opamp_simulator):
        result = opamp_simulator.simulate(sized_netlist())
        for key in ("tail_current", "gm1", "gm6", "dominant_pole_hz", "output_pole_hz"):
            assert key in result.details
        assert result.details["tail_current"] > 0.0

    def test_unknown_spec_lookup_raises(self, opamp_simulator):
        result = opamp_simulator.simulate(sized_netlist())
        with pytest.raises(KeyError):
            result.spec("psrr")

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            OpAmpSimulator(method="transient")


class TestDesignTrends:
    """Monotone parameter→spec relations a sizing agent must be able to exploit."""

    def test_power_increases_with_tail_device_width(self, opamp_simulator):
        small = opamp_simulator.simulate(sized_netlist({("M5", "width"): 5e-6}))
        large = opamp_simulator.simulate(sized_netlist({("M5", "width"): 80e-6}))
        assert large.spec("power") > small.spec("power")

    def test_bandwidth_decreases_with_compensation_cap(self, opamp_simulator):
        small_cc = opamp_simulator.simulate(sized_netlist({("CC", "value"): 0.5e-12}))
        large_cc = opamp_simulator.simulate(sized_netlist({("CC", "value"): 8e-12}))
        assert small_cc.spec("bandwidth") > large_cc.spec("bandwidth")

    def test_phase_margin_improves_with_compensation_cap(self, opamp_simulator):
        small_cc = opamp_simulator.simulate(sized_netlist({("CC", "value"): 0.3e-12}))
        large_cc = opamp_simulator.simulate(sized_netlist({("CC", "value"): 8e-12}))
        assert large_cc.spec("phase_margin") > small_cc.spec("phase_margin")

    def test_gain_increases_with_input_pair_width(self, opamp_simulator):
        narrow = opamp_simulator.simulate(
            sized_netlist({("M1", "width"): 5e-6, ("M2", "width"): 5e-6})
        )
        wide = opamp_simulator.simulate(
            sized_netlist({("M1", "width"): 90e-6, ("M2", "width"): 90e-6})
        )
        assert wide.spec("gain") > narrow.spec("gain")

    def test_gain_decreases_with_tail_current(self, opamp_simulator):
        """Larger bias current lowers ro faster than it raises gm (gain ~ 1/sqrt(I))."""
        low_current = opamp_simulator.simulate(sized_netlist({("M5", "width"): 4e-6}))
        high_current = opamp_simulator.simulate(sized_netlist({("M5", "width"): 90e-6}))
        assert low_current.spec("gain") > high_current.spec("gain")

    def test_bandwidth_increases_with_input_pair_width(self, opamp_simulator):
        narrow = opamp_simulator.simulate(sized_netlist({("M1", "width"): 2e-6}))
        wide = opamp_simulator.simulate(sized_netlist({("M1", "width"): 80e-6}))
        assert wide.spec("bandwidth") > narrow.spec("bandwidth")


class TestOperatingPoint:
    def test_power_matches_supply_times_current(self, opamp_simulator):
        netlist = sized_netlist()
        op = opamp_simulator.operating_point(netlist)
        expected = 1.2 * (
            op.tail_current + op.second_stage_current + opamp_simulator.bias_overhead_current
        )
        assert op.power_w == pytest.approx(expected)

    def test_gbw_formula(self, opamp_simulator):
        netlist = sized_netlist()
        op = opamp_simulator.operating_point(netlist)
        cc = netlist.get_parameter("CC", "value")
        assert op.unity_gain_bandwidth_hz == pytest.approx(op.gm1 / (2 * np.pi * cc))

    def test_zero_frequency_is_gm6_over_cc(self, opamp_simulator):
        netlist = sized_netlist()
        op = opamp_simulator.operating_point(netlist)
        cc = netlist.get_parameter("CC", "value")
        assert op.zero_hz == pytest.approx(op.gm6 / (2 * np.pi * cc))


class TestCalibration:
    def test_table1_spec_space_is_reachable(self, opamp_simulator, opamp_benchmark, rng):
        """Some design in the Table 1 space meets a mid-range target group.

        This is the calibration property that makes the P2S problem well
        posed: the specification sampling space must not be empty of
        solutions.
        """
        target = {"gain": 350.0, "bandwidth": 5e6, "phase_margin": 56.0, "power": 5e-3}
        space = opamp_benchmark.design_space
        found = False
        for _ in range(400):
            netlist = opamp_benchmark.fresh_netlist()
            space.apply_to_netlist(netlist, space.sample(rng))
            result = opamp_simulator.simulate(netlist)
            if opamp_benchmark.spec_space.all_met(result.specs, target):
                found = True
                break
        assert found, "no random design met a mid-range target group"

    def test_simulation_is_deterministic(self, opamp_simulator):
        netlist = sized_netlist()
        first = opamp_simulator.simulate(netlist).specs
        second = opamp_simulator.simulate(netlist).specs
        assert first == second


@settings(max_examples=25, deadline=None)
@given(
    width_um=st.floats(min_value=1.0, max_value=100.0),
    fingers=st.integers(min_value=2, max_value=32),
    cc_pf=st.floats(min_value=0.1, max_value=10.0),
)
def test_property_specs_always_finite_and_positive(width_um, fingers, cc_pf):
    """Any in-range sizing yields finite, non-negative specifications."""
    simulator = OpAmpSimulator()
    netlist = sized_netlist(
        {
            ("M1", "width"): width_um * 1e-6,
            ("M1", "fingers"): fingers,
            ("M6", "width"): width_um * 1e-6,
            ("CC", "value"): cc_pf * 1e-12,
        }
    )
    specs = simulator.simulate(netlist).specs
    for value in specs.values():
        assert np.isfinite(value)
    assert specs["power"] > 0.0
    assert specs["gain"] >= 0.0
    assert 0.0 <= specs["phase_margin"] <= 180.0
