"""Serving under load: the async gateway over the deployment service.

Walks the ``repro.serve.gateway`` workflow end to end:

1. checkpoint a GCN-FC policy for the two-stage op-amp (stand-in for a
   trained one — see ``examples/serve_policy.py`` for real training);
2. stand up a :class:`repro.serve.Gateway` over a
   :class:`repro.serve.DeploymentService` and fire concurrent requests at
   it from many client threads, each getting its own
   :class:`concurrent.futures.Future`;
3. watch deadline-based dynamic batching do its job: requests for the same
   topology coalesce into lock-step micro-batches (up to ``--batch-size``)
   within each request's ``deadline_ms`` budget;
4. show the failure discipline — an unroutable request comes back as a
   structured error response, not an exception;
5. verify the batching guarantee: every gateway response is identical to
   synchronous one-at-a-time service calls.

Run with:  python examples/serve_gateway.py [--requests N] [--batch-size N]
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import make_env, make_policy, save_checkpoint, seed_everything
from repro.serve import DeploymentService, Gateway, ServeRequest

MAX_STEPS = 8


def main(requests: int, batch_size: int, workers: int, delay_ms: float,
         seed: int = 0) -> None:
    rng = seed_everything(seed)
    env = make_env("opamp-p2s-v0", seed=seed)
    policy = make_policy("gcn_fc", env, rng)

    with tempfile.TemporaryDirectory(prefix="repro-gateway-") as tmp:
        checkpoint = save_checkpoint(
            Path(tmp) / "policy.npz", policy, policy_id="gcn_fc",
            env_id="opamp-p2s-v0",
        )
        service = DeploymentService.from_checkpoint(checkpoint, batch_size=batch_size)
        spec_rng = np.random.default_rng(seed + 123)
        targets = env.benchmark.spec_space.sample_batch(spec_rng, requests)

        print(f"Gateway: batch size {batch_size}, {workers} workers, "
              f"{delay_ms:g} ms coalescing budget")
        print(f"Firing {requests} requests from {requests} client threads ...")
        responses = {}
        lock = threading.Lock()
        with Gateway(service, num_workers=workers, max_batch_delay_ms=delay_ms) as gw:
            def client(index: int) -> None:
                request = ServeRequest(
                    target_specs=dict(targets[index]), max_steps=MAX_STEPS,
                    request_id=f"client-{index}",
                )
                response = gw.submit(request).result(timeout=300)
                with lock:
                    responses[index] = response

            start = time.perf_counter()
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(requests)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start

            # Failure discipline: unknown topology -> structured response.
            bad = gw.submit(
                ServeRequest(target_specs={"gain": 1.0}, env_id="no-such-env-v0")
            ).result(timeout=30)
            snapshot = gw.stats.snapshot()

        for index in sorted(responses)[:5]:
            response = responses[index]
            status = "MET " if response.success else "miss"
            met = sum(response.met.values())
            print(f"  [{response.request_id}] {status} in {response.steps} steps, "
                  f"{met}/{len(response.met)} specs met, "
                  f"total {response.timing['total_ms']:.1f} ms "
                  f"(queued {response.timing['queue_ms']:.1f} ms)")
        if len(responses) > 5:
            print(f"  ... and {len(responses) - 5} more")
        print(f"  unroutable request -> error code {bad.error.code!r} "
              f"({bad.error.message.split('(')[0].strip()})")

        print(f"\n{snapshot.episodes} episodes in {elapsed:.2f}s "
              f"({snapshot.episodes / elapsed:.1f} requests/s)")
        print(f"  batches: {snapshot.batches} "
              f"(full {snapshot.full_flushes}, deadline {snapshot.deadline_flushes}, "
              f"drain {snapshot.drain_flushes}); "
              f"mean coalesce {snapshot.mean_coalesce:.1f}, "
              f"max {snapshot.max_coalesce}")
        print(f"  latency p50 {snapshot.latency_p50_ms:.1f} ms, "
              f"p99 {snapshot.latency_p99_ms:.1f} ms; "
              f"errors {snapshot.errors}")

        print("\nBatching guarantee: gateway responses == synchronous serve() ...")
        reference = service.serve(
            [ServeRequest(target_specs=dict(t), max_steps=MAX_STEPS) for t in targets]
        )
        for index, ref in enumerate(reference):
            response = responses[index]
            assert response.steps == ref.steps
            assert response.final_specs == ref.final_specs
            assert response.final_parameters == ref.final_parameters
        print(f"  identical designs for all {len(reference)} requests.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--batch-size", type=int, default=4, dest="batch_size")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--delay-ms", type=float, default=25.0, dest="delay_ms")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    main(args.requests, args.batch_size, args.workers, args.delay_ms, args.seed)
