"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot build a
wheel); an installed ``repro`` takes precedence.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
