"""Serializable run configurations: any experiment from a single dict.

Three small dataclasses make a complete optimization run reconstructable
from JSON — the foundation for distributing and sharding experiment sweeps:

* :class:`EnvConfig` — an environment ID plus its keyword arguments;
* :class:`OptimizerConfig` — an optimizer ID plus its constructor keywords;
* :class:`RunConfig` — env + optimizer + budget + seed (+ optional fixed
  target group), with ``run()`` executing the whole thing through the
  common :class:`repro.api.Optimizer` protocol.

Round trip::

    config = RunConfig(
        env=EnvConfig("opamp-p2s-v0", {"seed": 0}),
        optimizer=OptimizerConfig("random"),
        budget=40,
        seed=7,
    )
    clone = RunConfig.from_json(config.to_json())
    assert clone == config
    assert clone.run().best_objective == config.run().best_objective
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.api import catalog
from repro.api.protocol import Callbacks, OptimizationResult
from repro.utils import atomic_write_text


def _require_mapping(value: Any, what: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise TypeError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


@dataclass
class EnvConfig:
    """A registry environment ID plus the keyword arguments to build it."""

    id: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.params = _require_mapping(self.params, "EnvConfig.params")
        catalog.ENVS.resolve(self.id)  # fail fast with the helpful registry error

    def build(self):
        """Instantiate the environment: ``make_env(id, **params)``."""
        return catalog.make_env(self.id, **self.params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ``{"id": ..., "params": {...}}`` form (``from_dict`` inverse)."""
        return {"id": self.id, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "EnvConfig":
        """Build from ``{"id": ..., "params": {...}}`` (or a bare ID string)."""
        if isinstance(data, str):
            return cls(id=data)
        data = _require_mapping(data, "EnvConfig")
        unknown = set(data) - {"id", "params"}
        if unknown:
            raise ValueError(f"unknown EnvConfig keys: {sorted(unknown)}")
        if "id" not in data:
            raise ValueError("EnvConfig requires an 'id' key")
        return cls(id=data["id"], params=data.get("params") or {})


@dataclass
class OptimizerConfig:
    """A registry optimizer ID plus the constructor keyword arguments.

    ``vectorize`` is the batched-evaluation width of the
    :mod:`repro.parallel` vector path — the number of parallel environment
    instances for RL rollouts, and the switch for the shared
    :class:`repro.parallel.SimulationCache` in the search baselines.  ``None``
    leaves the optimizer's own default (sequential) in place; any other value
    is forwarded to the optimizer constructor's ``vectorize`` keyword.
    """

    id: str
    params: Dict[str, Any] = field(default_factory=dict)
    vectorize: Optional[int] = None

    def __post_init__(self) -> None:
        self.params = _require_mapping(self.params, "OptimizerConfig.params")
        if self.vectorize is not None:
            self.vectorize = int(self.vectorize)
            if self.vectorize < 1:
                raise ValueError("OptimizerConfig.vectorize must be >= 1")
            if "vectorize" in self.params:
                raise ValueError(
                    "pass vectorize either as the OptimizerConfig field or inside "
                    "params, not both"
                )
        catalog.OPTIMIZERS.resolve(self.id)

    def build(self):
        """Instantiate the optimizer: ``make_optimizer(id, **params)``."""
        params = dict(self.params)
        if self.vectorize is not None:
            params["vectorize"] = self.vectorize
        return catalog.make_optimizer(self.id, **params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form including ``vectorize`` when set (``from_dict`` inverse)."""
        data: Dict[str, Any] = {"id": self.id, "params": dict(self.params)}
        if self.vectorize is not None:
            data["vectorize"] = self.vectorize
        return data

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "OptimizerConfig":
        """Build from ``{"id": ..., "params": {...}}`` (or a bare ID string)."""
        if isinstance(data, str):
            return cls(id=data)
        data = _require_mapping(data, "OptimizerConfig")
        unknown = set(data) - {"id", "params", "vectorize"}
        if unknown:
            raise ValueError(f"unknown OptimizerConfig keys: {sorted(unknown)}")
        if "id" not in data:
            raise ValueError("OptimizerConfig requires an 'id' key")
        return cls(
            id=data["id"],
            params=data.get("params") or {},
            vectorize=data.get("vectorize"),
        )


@dataclass
class RunConfig:
    """One fully-specified optimization run.

    The same config (hence the same JSON document) always reproduces the
    same result: the ``seed`` drives every random choice — policy
    initialization, search sampling, and the target group when
    ``target_specs`` is not pinned.
    """

    env: EnvConfig
    optimizer: OptimizerConfig
    budget: Optional[int] = None
    seed: int = 0
    target_specs: Optional[Dict[str, float]] = None
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.env, (str, Mapping)):
            self.env = EnvConfig.from_dict(self.env)
        if isinstance(self.optimizer, (str, Mapping)):
            self.optimizer = OptimizerConfig.from_dict(self.optimizer)
        if self.budget is not None and int(self.budget) <= 0:
            raise ValueError("budget must be positive (or None for the method default)")
        if self.target_specs is not None:
            self.target_specs = {
                name: float(value) for name, value in dict(self.target_specs).items()
            }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, callbacks: Callbacks = ()) -> OptimizationResult:
        """Build the environment and optimizer, then execute the run."""
        env = self.env.build()
        optimizer = self.optimizer.build()
        return optimizer.optimize(
            env,
            budget=self.budget,
            seed=self.seed,
            callbacks=callbacks,
            target_specs=self.target_specs,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The run as one JSON-ready document (``from_dict`` inverse)."""
        return {
            "name": self.name,
            "env": self.env.to_dict(),
            "optimizer": self.optimizer.to_dict(),
            "budget": self.budget,
            "seed": self.seed,
            "target_specs": dict(self.target_specs) if self.target_specs else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        data = _require_mapping(data, "RunConfig")
        known = {"name", "env", "optimizer", "budget", "seed", "target_specs"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunConfig keys: {sorted(unknown)} (expected {sorted(known)})"
            )
        missing = {"env", "optimizer"} - set(data)
        if missing:
            raise ValueError(f"RunConfig requires keys: {sorted(missing)}")
        return cls(
            env=EnvConfig.from_dict(data["env"]),
            optimizer=OptimizerConfig.from_dict(data["optimizer"]),
            budget=data.get("budget"),
            seed=int(data.get("seed", 0)),
            target_specs=data.get("target_specs"),
            name=data.get("name", ""),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the run to a JSON string (``from_json`` inverse)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the config as JSON to ``path`` (atomically published)."""
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunConfig":
        """Read a config previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
