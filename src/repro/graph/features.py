"""Node-feature encoding for circuit graphs.

Following Sec. 3 ("State Representation") of the paper, every graph node is a
device (including supply, ground and bias sources) and its feature vector is
``(t, p)`` where

* ``t`` is the one-hot encoding of the node type, and
* ``p`` is the parameter vector of the node — width and finger count for
  transistors, the element value for passives, the voltage for supply /
  ground / bias nodes — zero-padded so every node has the same length.

The parameter entries are the *dynamic* state the paper emphasizes: they are
re-encoded at every RL step from the current netlist so the GNN branch of the
policy sees where in the design space the agent currently sits (unlike
Baseline B which only sees static technology constants).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.circuits.devices import DEVICE_TYPE_ORDER, Device, DeviceType

#: Maximum number of numeric parameters encoded per node; transistors use two
#: (width, fingers), everything else uses one (value or voltage), so two is
#: enough and keeps the padding small.
PARAMETER_SLOTS = 2

#: Scale factors applied to raw device parameters so all node features are
#: O(1) for the neural network (tanh-based GNN layers saturate otherwise).
#: Keys are parameter names on the devices; the scales map the Table 1 design
#: ranges roughly onto [0, 1].
PARAMETER_SCALES: Dict[str, float] = {
    "width": 1e4,       # metres -> fraction of the 100 um maximum width
    "fingers": 1.0 / 32.0,
    "value": 1e11,      # farads -> fraction of the 10 pF maximum capacitance
    "voltage": 1.0 / 30.0,
    "current": 1e3,
}


def node_type_one_hot(dtype: DeviceType) -> np.ndarray:
    """One-hot encoding of a device type using the canonical ordering."""
    encoding = np.zeros(len(DEVICE_TYPE_ORDER))
    encoding[DEVICE_TYPE_ORDER.index(dtype)] = 1.0
    return encoding


def dynamic_parameter_reads(device: Device) -> List[tuple]:
    """The ``(parameter key, scale, slot)`` triples encoded for one device.

    Single source of truth for which device parameters enter the dynamic
    node features: :func:`device_parameter_vector` consumes it per device,
    and :class:`repro.graph.circuit_graph.CircuitGraph` pre-compiles the
    triples of a whole netlist into one vectorized gather per step.
    """
    if device.dtype.is_transistor:
        return [
            ("width", PARAMETER_SCALES["width"], 0),
            ("fingers", PARAMETER_SCALES["fingers"], 1),
        ]
    if device.dtype.is_passive:
        return [("value", PARAMETER_SCALES["value"], 0)]
    if device.dtype is DeviceType.CURRENT_SOURCE:
        return [("current", PARAMETER_SCALES["current"], 0)]
    # supply, ground, bias
    return [("voltage", PARAMETER_SCALES["voltage"], 0)]


def device_parameter_vector(device: Device) -> np.ndarray:
    """Scaled, zero-padded parameter vector ``p`` of one device."""
    vector = np.zeros(PARAMETER_SLOTS)
    for key, scale, slot in dynamic_parameter_reads(device):
        vector[slot] = device.get_parameter(key) * scale
    return vector


def device_feature_vector(device: Device) -> np.ndarray:
    """Full node feature ``(t, p)`` for one device."""
    return np.concatenate([node_type_one_hot(device.dtype), device_parameter_vector(device)])


def feature_dimension() -> int:
    """Length of every node-feature vector."""
    return len(DEVICE_TYPE_ORDER) + PARAMETER_SLOTS


def static_feature_vector(device: Device, technology_constants: Dict[str, float]) -> np.ndarray:
    """Baseline B style features: node type plus *static* technology constants.

    The prior GCN-RL method [11] encodes only static technology information
    (threshold voltage, mobility, …) in the node features.  We reproduce that
    choice for the Baseline B policy so the ablation "dynamic vs static node
    features" can be measured.  The returned vector has the same length as
    :func:`device_feature_vector` so policies are size-compatible.
    """
    vector = np.zeros(PARAMETER_SLOTS)
    if device.dtype.is_transistor:
        vector[0] = technology_constants.get("threshold_voltage", 0.4)
        vector[1] = technology_constants.get("mobility_scale", 1.0)
    elif device.dtype.is_passive:
        vector[0] = technology_constants.get("passive_quality", 1.0)
    else:
        vector[0] = device.get_parameter("voltage") * PARAMETER_SCALES["voltage"]
    return np.concatenate([node_type_one_hot(device.dtype), vector])
