"""Tests for the categorical action distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.distributions import Categorical, MultiCategorical
from repro.nn.tensor import Tensor


class TestCategorical:
    def test_probs_and_mode(self):
        dist = Categorical(Tensor(np.array([0.0, 2.0, -1.0])))
        assert abs(dist.probs.sum() - 1.0) < 1e-12
        assert dist.mode() == 1

    def test_log_prob_matches_probs(self):
        dist = Categorical(Tensor(np.array([0.5, 1.0, -2.0])))
        for k in range(3):
            assert float(dist.log_prob(k).item()) == pytest.approx(np.log(dist.probs[k]))

    def test_entropy_uniform_is_log_k(self):
        dist = Categorical(Tensor(np.zeros(4)))
        assert float(dist.entropy().item()) == pytest.approx(np.log(4.0))

    def test_rejects_2d_logits(self):
        with pytest.raises(ValueError):
            Categorical(Tensor(np.zeros((2, 3))))


class TestMultiCategorical:
    def test_shape_properties(self):
        dist = MultiCategorical(Tensor(np.zeros((5, 3))))
        assert dist.num_parameters == 5
        assert dist.num_choices == 3
        assert dist.probs.shape == (5, 3)
        np.testing.assert_allclose(dist.probs.sum(axis=1), np.ones(5))

    def test_log_prob_is_sum_of_rows(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        dist = MultiCategorical(Tensor(logits))
        action = np.array([0, 2, 1, 1])
        expected = sum(np.log(dist.probs[i, a]) for i, a in enumerate(action))
        assert float(dist.log_prob(action).item()) == pytest.approx(expected)

    def test_log_prob_validates_action(self):
        dist = MultiCategorical(Tensor(np.zeros((3, 3))))
        with pytest.raises(ValueError):
            dist.log_prob(np.array([0, 1]))
        with pytest.raises(ValueError):
            dist.log_prob(np.array([0, 1, 5]))

    def test_mode_picks_argmax(self):
        logits = np.array([[0.0, 5.0, 0.0], [9.0, 0.0, 0.0]])
        np.testing.assert_array_equal(MultiCategorical(Tensor(logits)).mode(), [1, 0])

    def test_sampling_frequencies_follow_probabilities(self):
        rng = np.random.default_rng(0)
        logits = np.array([[2.0, 0.0, -2.0]])
        dist = MultiCategorical(Tensor(logits))
        samples = np.array([dist.sample(rng)[0] for _ in range(4000)])
        empirical = np.bincount(samples, minlength=3) / samples.size
        np.testing.assert_allclose(empirical, dist.probs[0], atol=0.03)

    def test_entropy_bounds(self):
        uniform = MultiCategorical(Tensor(np.zeros((6, 3))))
        assert float(uniform.entropy().item()) == pytest.approx(6 * np.log(3.0))
        peaked = MultiCategorical(Tensor(np.array([[100.0, 0.0, 0.0]] * 6)))
        assert float(peaked.entropy().item()) == pytest.approx(0.0, abs=1e-6)

    def test_kl_divergence_zero_for_identical(self):
        logits = np.random.default_rng(1).normal(size=(4, 3))
        a = MultiCategorical(Tensor(logits))
        b = MultiCategorical(Tensor(logits.copy()))
        assert a.kl_divergence(b) == pytest.approx(0.0, abs=1e-12)

    def test_kl_divergence_positive_for_different(self):
        a = MultiCategorical(Tensor(np.array([[1.0, 0.0, -1.0]])))
        b = MultiCategorical(Tensor(np.array([[-1.0, 0.0, 1.0]])))
        assert a.kl_divergence(b) > 0.0

    def test_log_prob_gradient_flows_to_logits(self):
        logits = Tensor(np.zeros((3, 3)), requires_grad=True)
        dist = MultiCategorical(logits)
        dist.log_prob(np.array([0, 1, 2])).backward()
        assert logits.grad is not None
        assert np.any(logits.grad != 0.0)

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            MultiCategorical(Tensor(np.zeros(3)))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_sampled_actions_always_valid(rows, seed):
    """Sampled action indices are always within [0, num_choices)."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(rows, 3))
    dist = MultiCategorical(Tensor(logits))
    action = dist.sample(rng)
    assert action.shape == (rows,)
    assert np.all((action >= 0) & (action < 3))
    # And log_prob of the sampled action is finite.
    assert np.isfinite(float(dist.log_prob(action).item()))
