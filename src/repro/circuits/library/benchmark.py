"""Container bundling everything a benchmark circuit needs.

A :class:`CircuitBenchmark` groups the netlist (topology + initial sizing),
the tunable design space (Table 1, left half) and the specification sampling
space (Table 1, right half) so that environments, baselines and experiment
harnesses all consume the same definition of "the two-stage op-amp" or "the
RF PA".
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict

from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignSpace
from repro.circuits.specs import SpecificationSpace


@dataclass
class CircuitBenchmark:
    """One evaluation circuit: topology, knobs, and target sampling space."""

    name: str
    technology: str
    netlist: Netlist
    design_space: DesignSpace
    spec_space: SpecificationSpace
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Validate that every design parameter resolves to a real device
        # attribute; a typo here would otherwise only explode deep inside an
        # RL rollout.
        for parameter in self.design_space:
            value = self.netlist.get_parameter(parameter.device, parameter.attribute)
            if not (parameter.minimum <= value <= parameter.maximum):
                raise ValueError(
                    f"initial value of {parameter.name} ({value}) lies outside "
                    f"[{parameter.minimum}, {parameter.maximum}]"
                )
            # The initial value must also sit *on* the design-space grid —
            # otherwise the first snap inside the environment silently moves
            # the design point, and "the initial sizing" the benchmark claims
            # is never actually simulated.  Representation noise (an initial
            # value written as a literal the grid arithmetic reproduces only
            # to ~1e-9 relative) is normalized silently; a genuinely off-grid
            # value is snapped with a warning.
            snapped = parameter.snap(value)
            if snapped != value:
                if not math.isclose(snapped, value, rel_tol=1e-9, abs_tol=0.0):
                    warnings.warn(
                        f"initial value of {parameter.name} ({value!r}) is off the "
                        f"design-space grid (step {parameter.step!r}); snapping to "
                        f"{snapped!r}",
                        stacklevel=2,
                    )
                self.netlist.set_parameter(parameter.device, parameter.attribute, snapped)

    @property
    def num_parameters(self) -> int:
        return self.design_space.num_parameters

    @property
    def num_specs(self) -> int:
        return len(self.spec_space)

    def fresh_netlist(self) -> Netlist:
        """Deep copy of the netlist for an isolated episode/optimization run."""
        return self.netlist.copy()

    def summary(self) -> Dict[str, object]:
        """Human-readable summary used by the Table 1 benchmark."""
        return {
            "circuit": self.name,
            "technology": self.technology,
            "num_device_parameters": self.num_parameters,
            "num_specifications": self.num_specs,
            "design_space_cardinality": self.design_space.cardinality(),
            "parameters": {
                p.name: {
                    "min": p.minimum,
                    "max": p.maximum,
                    "step": p.step,
                    "integer": p.integer,
                }
                for p in self.design_space
            },
            "specifications": {
                s.name: {
                    "min": s.minimum,
                    "max": s.maximum,
                    "objective": s.objective.value,
                    "unit": s.unit,
                }
                for s in self.spec_space
            },
        }
