"""Shared contract every ``*-corners-v0`` environment must satisfy.

Mirrors ``tests/circuits/test_topology_zoo.py`` with the corner-specific
deltas: ``info["specs"]`` carries the per-corner ``spec@corner`` keys on top
of the plain worst-corner entries (superset, not equality), rewards come
from :class:`~repro.corners.YieldP2SReward`, and the whole stack must agree
bitwise with the sequential per-corner loop (``batched_corners=False``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.circuits import BENCHMARK_BUILDERS, Objective
from repro.corners import CornerSimulator, default_corner_set
from repro.env.reward import GOAL_BONUS
from repro.parallel import VectorCircuitEnv

#: Every corner-sweep environment in the registry (the full five-circuit zoo).
CORNERS_ENV_IDS = sorted(
    env_id for env_id in repro.list_envs() if env_id.endswith("-corners-v0")
)

NUM_ENVS = 4


def _easy_target(env):
    """A target group the current worst-corner measurements already meet."""
    target = {}
    for spec in env.benchmark.spec_space:
        measured = env.measured_specs[spec.name]
        if spec.objective is Objective.MAXIMIZE:
            target[spec.name] = measured * 0.8
        else:
            target[spec.name] = measured * 1.25
    return target


class TestRegistryCoverage:
    def test_every_zoo_circuit_has_a_corners_variant(self):
        # The paper's op-amp keeps its legacy "opamp-*" id in the catalog.
        expected = {
            "opamp-corners-v0" if circuit == "two_stage_opamp"
            else f"{circuit}-corners-v0"
            for circuit in BENCHMARK_BUILDERS
        }
        assert set(CORNERS_ENV_IDS) == expected

    def test_corners_envs_wrap_a_corner_simulator(self):
        for env_id in CORNERS_ENV_IDS:
            env = repro.make_env(env_id, seed=0)
            assert isinstance(env.simulator, CornerSimulator)
            assert env.simulator.corner_set.names == default_corner_set().names


@pytest.mark.parametrize("env_id", CORNERS_ENV_IDS)
class TestEpisodeContract:
    def test_reset_and_step(self, env_id):
        env = repro.make_env(env_id, seed=0)
        observation = env.reset()
        assert observation.node_features.shape == (
            env.num_graph_nodes, env.node_feature_dimension
        )
        assert observation.spec_features.shape == (env.spec_feature_dimension,)
        spec_names = set(env.benchmark.spec_space.names)
        # Worst-corner values under the plain names, per-corner values behind
        # them: a superset of the nominal env's measurement dict.
        assert set(env.measured_specs) >= spec_names
        for name in spec_names:
            for corner in default_corner_set():
                assert f"{name}@{corner.name}" in env.measured_specs
        rng = np.random.default_rng(0)
        done = False
        for _ in range(3):
            assert not done
            _, reward, done, info = env.step(env.action_space.sample(rng))
            assert np.isfinite(reward)
            assert set(info["specs"]) >= spec_names
            assert 0.0 <= info["met_fraction"] <= 1.0

    def test_initial_simulation_is_valid_at_every_corner(self, env_id):
        """The center sizing must survive the whole five-corner sweep."""
        env = repro.make_env(env_id, seed=0)
        env.reset()
        result = env.simulator.simulate(env.data_processor.netlist)
        assert result.valid
        for corner in default_corner_set():
            assert result.details[f"corner_valid@{corner.name}"]

    def test_goal_bonus_and_termination(self, env_id):
        env = repro.make_env(env_id, seed=0)
        env.reset()
        env.reset(target_specs=_easy_target(env))
        keep = np.ones(env.num_parameters, dtype=np.int64)
        _, reward, done, info = env.step(keep)
        assert reward == GOAL_BONUS
        assert info["goal_reached"]
        assert done

    def test_worst_corner_gates_the_goal(self, env_id):
        """A target met at the typical corner but missed at the worst corner
        must not collect the goal bonus."""
        env = repro.make_env(env_id, seed=0)
        env.reset()
        target = {}
        squeezed = False
        for spec in env.benchmark.spec_space:
            worst = env.measured_specs[spec.name]
            typical = env.measured_specs[f"{spec.name}@typical"]
            if spec.objective is Objective.MAXIMIZE:
                midpoint = (worst + typical) / 2.0
                if midpoint > worst:
                    target[spec.name] = midpoint
                    squeezed = True
                else:
                    target[spec.name] = worst * 0.8
            else:
                midpoint = (worst + typical) / 2.0
                if midpoint < worst:
                    target[spec.name] = midpoint
                    squeezed = True
                else:
                    target[spec.name] = worst * 1.25
        if not squeezed:
            pytest.skip(f"{env_id}: no corner spread at the center sizing")
        env.reset(target_specs=target)
        keep = np.ones(env.num_parameters, dtype=np.int64)
        _, reward, done, info = env.step(keep)
        assert not info["goal_reached"]
        assert reward < GOAL_BONUS

    def test_vector_parity(self, env_id):
        """Sub-env ``i`` of ``num_envs=4, seed=s`` equals sequential ``s+i``."""
        seed = 11
        vector_env = repro.make_env(env_id, seed=seed, num_envs=NUM_ENVS)
        assert isinstance(vector_env, VectorCircuitEnv)
        sequential = [repro.make_env(env_id, seed=seed + i) for i in range(NUM_ENVS)]
        batch = vector_env.reset()
        reference = [env.reset() for env in sequential]
        for i in range(NUM_ENVS):
            assert np.array_equal(batch[i].spec_features, reference[i].spec_features)
        rngs = [np.random.default_rng(500 + i) for i in range(NUM_ENVS)]
        for _ in range(4):
            actions = np.stack([vector_env.action_space.sample(rng) for rng in rngs])
            batch, rewards, dones, infos = vector_env.step(actions)
            for i, env in enumerate(sequential):
                observation, reward, done, info = env.step(actions[i])
                assert reward == rewards[i]
                assert done == dones[i]
                assert info["specs"] == infos[i]["specs"]
                if done:
                    observation = env.reset()
                assert np.array_equal(batch[i].spec_features, observation.spec_features)

    def test_batched_corners_flag_is_bitwise_transparent(self, env_id):
        """An episode through the corner lanes equals the sequential loop."""
        batched = repro.make_env(env_id, seed=0)
        sequential = repro.make_env(env_id, seed=0, batched_corners=False)
        batched.reset()
        sequential.reset()
        rng = np.random.default_rng(2)
        for _ in range(3):
            action = batched.action_space.sample(rng)
            _, reward_b, done_b, info_b = batched.step(action)
            _, reward_s, done_s, info_s = sequential.step(action)
            assert reward_b == reward_s
            assert done_b == done_s
            assert info_b["specs"] == info_s["specs"]
            if done_b:
                batched.reset()
                sequential.reset()

    def test_compiled_plan_falls_back_to_interpreted(self, env_id):
        """``compile=True`` must degrade gracefully: the corner simulator has
        no traced twin, so the vector env takes the interpreted path with
        identical results."""
        seed = 11
        compiled = repro.make_env(env_id, seed=seed, num_envs=2, compile=True)
        interpreted = repro.make_env(env_id, seed=seed, num_envs=2)
        batch_c = compiled.reset()
        batch_i = interpreted.reset()
        rngs = [np.random.default_rng(900 + i) for i in range(2)]
        for _ in range(2):
            actions = np.stack([compiled.action_space.sample(rng) for rng in rngs])
            batch_c, rewards_c, dones_c, infos_c = compiled.step(actions)
            batch_i, rewards_i, dones_i, infos_i = interpreted.step(actions)
            assert np.array_equal(rewards_c, rewards_i)
            assert np.array_equal(dones_c, dones_i)
            for i in range(2):
                assert infos_c[i]["specs"] == infos_i[i]["specs"]
                assert np.array_equal(
                    batch_c[i].spec_features, batch_i[i].spec_features
                )


@pytest.mark.parametrize("optimizer_id", sorted(repro.list_optimizers()))
@pytest.mark.parametrize("env_id", CORNERS_ENV_IDS)
class TestOptimizerContract:
    def test_optimize_smoke(self, env_id, optimizer_id):
        env = repro.make_env(env_id, seed=0, max_steps=8)
        if optimizer_id == "ppo":
            optimizer = repro.make_optimizer("ppo", episodes_per_update=2)
            budget = 2
        elif optimizer_id == "supervised":
            optimizer = repro.make_optimizer("supervised", epochs=2)
            budget = 16
        else:
            optimizer = repro.make_optimizer(optimizer_id)
            budget = 8
        result = optimizer.optimize(env, budget=budget, seed=0)
        assert result.num_simulations > 0
        assert result.best_parameters.shape == (env.num_parameters,)
        assert np.isfinite(result.best_objective)


# Worst-corner satisfaction is strictly harder than nominal, so the floors
# sit below the nominal zoo test's ``hits >= 4``.  The folded cascode is
# excluded outright: its 0.52 V tail bias leaves ~26 mV of overdrive at
# slow/cold, so nominal-range targets are genuinely out of reach there (the
# goal-bonus test above still proves its easy targets are winnable).
@pytest.mark.parametrize(
    "circuit,floor",
    [("current_mirror_ota", 1), ("common_source_lna", 4)],
)
class TestCornerReachability:
    def test_sampling_space_reachable_at_worst_corner(self, circuit, floor):
        """Some sampled targets must be satisfiable under the full sweep."""
        benchmark = BENCHMARK_BUILDERS[circuit]()
        env = repro.make_env(f"{circuit}-corners-v0", seed=0)
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(20):
            target = benchmark.spec_space.sample(rng)
            for _ in range(120):
                netlist = benchmark.fresh_netlist()
                benchmark.design_space.apply_to_netlist(
                    netlist, benchmark.design_space.sample(rng)
                )
                result = env.simulator.simulate(netlist)
                if result.valid and benchmark.spec_space.all_met(result.specs, target):
                    hits += 1
                    break
        assert hits >= floor, f"only {hits}/20 sampled targets reachable for {circuit}"
