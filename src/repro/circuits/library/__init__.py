"""Benchmark circuit library: the paper's two evaluation circuits plus the
topology zoo (folded-cascode op-amp, current-mirror OTA, common-source LNA)
added so transfer learning has a source→target matrix to sweep."""

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.library.common_source_lna import build_common_source_lna
from repro.circuits.library.current_mirror_ota import build_current_mirror_ota
from repro.circuits.library.folded_cascode import build_folded_cascode
from repro.circuits.library.rf_pa import build_rf_pa
from repro.circuits.library.two_stage_opamp import build_two_stage_opamp

#: Circuit name -> benchmark builder, in presentation order.  The single
#: source of truth for "every benchmark circuit in the library" — Table 1,
#: the README circuit-zoo table and the topology-zoo contract tests all
#: iterate over it, so a new circuit registered here is automatically swept.
BENCHMARK_BUILDERS = {
    "two_stage_opamp": build_two_stage_opamp,
    "folded_cascode": build_folded_cascode,
    "current_mirror_ota": build_current_mirror_ota,
    "common_source_lna": build_common_source_lna,
    "rf_pa": build_rf_pa,
}

__all__ = [
    "BENCHMARK_BUILDERS",
    "CircuitBenchmark",
    "build_common_source_lna",
    "build_current_mirror_ota",
    "build_folded_cascode",
    "build_rf_pa",
    "build_two_stage_opamp",
]
