"""Benchmark-regression gate: diff a fresh bench.json against the baseline.

CI's ``benchmarks-smoke`` job runs the reduced benchmark suite with
``--benchmark-json=bench.json`` and then::

    python benchmarks/compare_bench.py BENCH_baseline.json bench.json

The gate fails (exit 1) when any benchmark's throughput (pytest-benchmark's
``stats.ops``, operations per second) regresses by more than ``--threshold``
(default 25 %) relative to the committed ``BENCH_baseline.json``.  Speedups
and sub-threshold drift only update the printed trajectory; benchmarks added
since the baseline are reported as new (not failures), and benchmarks that
*disappeared* fail the gate — deleting a workload should be deliberate
(regenerate the baseline in the same PR).

Hardware normalization: raw ops ratios are divided by the *median* ratio
across the suite before gating, so a uniformly faster or slower machine
(baseline measured on one box, CI measuring on another, runner-generation
churn) cancels out and only benchmarks that regressed *relative to the rest
of the suite* trip the gate.  The deliberate blind spot: a change that
slows every benchmark by the same factor is attributed to hardware — pass
``--absolute`` to gate on raw ratios instead, appropriate once the baseline
is regenerated on the runner class that executes the gate.

Numeric ``extra_info`` metrics (the per-benchmark measured quantities like
``cached_steps_per_s`` or ``warm_speedup``) are printed for context but not
gated: they track shapes and ratios whose variance CI runners cannot bound
as tightly as whole-benchmark wall-clock.

Update the baseline::

    python -m pytest benchmarks -q --benchmark-json=BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from statistics import median
from typing import Dict, Optional, Sequence


def load_benchmarks(path: str) -> Dict[str, dict]:
    """fullname -> benchmark entry of one pytest-benchmark JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a pytest-benchmark JSON document")
    return {entry["fullname"]: entry for entry in benchmarks}


def throughput(entry: dict) -> Optional[float]:
    ops = entry.get("stats", {}).get("ops")
    return float(ops) if ops else None


def compare(
    baseline: Dict[str, dict],
    fresh: Dict[str, dict],
    threshold: float,
    absolute: bool = False,
) -> int:
    """Print the trajectory; return the number of gate violations."""
    ratios = {}
    for name in set(baseline) & set(fresh):
        base_ops, fresh_ops = throughput(baseline[name]), throughput(fresh[name])
        if base_ops and fresh_ops:
            ratios[name] = fresh_ops / base_ops
    # The suite-wide median ratio estimates the machine-speed difference
    # between the baseline box and this one; gating on the normalized ratio
    # catches benchmarks that regressed relative to the rest of the suite.
    scale = 1.0 if absolute or not ratios else median(ratios.values())
    if not absolute and ratios:
        print(f"suite median throughput ratio {scale:.2f}x "
              "(machine-speed normalization; --absolute disables)")

    violations = 0
    width = max((len(name) for name in baseline), default=20) + 2
    print(f"{'benchmark':<{width}s} {'baseline':>12s} {'fresh':>12s} {'rel':>8s}")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            print(f"{name:<{width}s} {'(missing from fresh run)':>34s}  FAIL")
            violations += 1
            continue
        if name not in baseline:
            print(f"{name:<{width}s} {'(new, no baseline)':>34s}")
            continue
        if name not in ratios:
            print(f"{name:<{width}s} {'(no throughput stats)':>34s}")
            continue
        relative = ratios[name] / scale
        verdict = ""
        if relative < 1.0 - threshold:
            verdict = f"  FAIL (>{threshold:.0%} regression)"
            violations += 1
        base_ops, fresh_ops = throughput(baseline[name]), throughput(fresh[name])
        print(f"{name:<{width}s} {base_ops:>10.3f}/s {fresh_ops:>10.3f}/s "
              f"{relative:>7.2f}x{verdict}")
        extra = {
            key: value
            for key, value in fresh[name].get("extra_info", {}).items()
            if isinstance(value, (int, float))
        }
        if extra:
            rendered = ", ".join(f"{key}={value:g}" for key, value in sorted(extra.items()))
            print(f"{'':<{width}s}   {rendered}")
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (BENCH_baseline.json)")
    parser.add_argument("fresh", help="freshly measured JSON (bench.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated throughput regression "
                             "(fraction, default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="gate on raw ops ratios instead of "
                             "median-normalized ones (requires a baseline "
                             "measured on the same runner class)")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be a fraction in (0, 1)", file=sys.stderr)
        return 2
    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations = compare(baseline, fresh, args.threshold, absolute=args.absolute)
    if violations:
        print(f"\n{violations} benchmark(s) regressed beyond the "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"({len(fresh)} benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
