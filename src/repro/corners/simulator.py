"""Corner-sweep simulation: K corners per sizing, batched where possible.

:class:`CornerSimulator` implements the standard
:class:`~repro.simulation.base.CircuitSimulator` protocol, so it nests
anywhere a plain simulator does (environments, the simulation cache, the
surrogate tier).  ``simulate`` evaluates the netlist at every corner of its
:class:`~repro.corners.model.CornerSet` and merges the per-corner results
into one :class:`~repro.simulation.base.SimulationResult`:

* ``specs[name]`` — the worst-corner value of each specification (with
  respect to its objective direction when a spec space is supplied, else
  the first corner's value), so a plain P2S reward on the merged result
  already scores worst-corner satisfaction;
* ``specs[f"{name}@{corner}"]`` — every per-corner value, flattened; extra
  keys are invisible to spec-space iterators but give
  :class:`~repro.corners.reward.YieldP2SReward` its per-corner view;
* ``valid`` — true only when *every* corner simulates to a valid operating
  point.

Two evaluation paths produce bitwise-identical results:

* **batched** (default): for simulators with a compiled kernel twin
  (:func:`repro.compile.sim_kernels.build_simulator_kernel`), the corners
  ride as extra batch lanes — the kernel is built once with ``K`` lanes,
  each lane bound to that corner's technology constants
  (``bind_lane_technologies``), and one stacked evaluation replaces ``K``
  sequential simulations (one stacked MNA sweep instead of ``K`` for the
  MNA-method simulators);
* **sequential**: a per-corner loop over clones of the base simulator,
  each carrying :meth:`Corner.apply`-derived technology constants.  This is
  also the fallback for simulators without a kernel twin (folded cascode,
  LNA, RF PA).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.specs import Objective, SpecificationSpace
from repro.corners.model import CornerSet, default_corner_set
from repro.simulation.base import SimulationResult
from repro.simulation.folded_cascode_sim import FoldedCascodeSimulator
from repro.simulation.lna_sim import LnaSimulator
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator
from repro.simulation.pa_sim import RfPaCoarseSimulator, RfPaFineSimulator

#: Simulator types whose corner sweep can ride the batched kernel path.
KERNEL_BATCHED_TYPES = (OpAmpSimulator, CmOtaSimulator)


def clone_simulator_with_technology(simulator, technology):
    """A fresh simulator of the same type/configuration at ``technology``.

    Exact-type dispatch (mirroring the compiled-kernel discipline): a
    subclass could override arithmetic the clone would silently drop, so
    only the known simulator types are cloneable.
    """
    kind = type(simulator)
    if kind is OpAmpSimulator:
        return OpAmpSimulator(
            technology=technology,
            method=simulator.method,
            bias_overhead_current=simulator.bias_overhead_current,
        )
    if kind is CmOtaSimulator:
        return CmOtaSimulator(
            technology=technology,
            method=simulator.method,
            bias_overhead_current=simulator.bias_overhead_current,
        )
    if kind is FoldedCascodeSimulator:
        return FoldedCascodeSimulator(
            technology=technology,
            bias_overhead_current=simulator.bias_overhead_current,
        )
    if kind is LnaSimulator:
        return LnaSimulator(
            technology=technology,
            frequency=simulator.frequency,
            source_resistance=simulator.source_resistance,
            noise_gamma=simulator.noise_gamma,
            inductor_q=simulator.inductor_q,
            bias_overhead_current=simulator.bias_overhead_current,
        )
    if kind is RfPaFineSimulator:
        return RfPaFineSimulator(technology=technology)
    if kind is RfPaCoarseSimulator:
        return RfPaCoarseSimulator(
            technology=technology, mismatch=simulator.mismatch
        )
    raise TypeError(
        f"no corner-cloning rule for simulator type {kind.__name__}; "
        "corner sweeps support the built-in zoo simulators"
    )


def _netlist_signature(netlist: Netlist):
    """Structural identity of a netlist: device names and parameter orders.

    The kernel caches parameter *indices*, which stay valid exactly as long
    as this signature does; episode steps mutate values only, so one kernel
    serves a whole benchmark.
    """
    return tuple(
        (device.name, tuple(device.parameters)) for device in netlist
    )


class CornerSimulator:
    """Evaluate every corner of a :class:`CornerSet` per ``simulate`` call.

    Parameters
    ----------
    simulator:
        The nominal-technology base simulator (one of the zoo simulator
        types).
    corner_set:
        Corners to sweep; defaults to :func:`default_corner_set`.
    spec_space:
        When given, merged ``specs`` report the worst-corner value per
        specification with respect to each objective direction (the value a
        conservative designer would quote); without it the first corner's
        values are reported.  Per-corner keys are emitted either way.
    batched:
        Use the corner-lane kernel path when the simulator has a kernel
        twin (bitwise identical to the sequential loop, roughly one batched
        evaluation instead of ``K`` simulations).  ``False`` forces the
        sequential per-corner loop (the parity reference).
    """

    def __init__(
        self,
        simulator,
        corner_set: Optional[CornerSet] = None,
        spec_space: Optional[SpecificationSpace] = None,
        batched: bool = True,
    ) -> None:
        self.base_simulator = simulator
        self.corner_set = corner_set if corner_set is not None else default_corner_set()
        self.spec_space = spec_space
        self.technologies = tuple(
            corner.apply(simulator.technology) for corner in self.corner_set
        )
        # Cloning also validates the simulator type up front, before the
        # first simulate call deep inside an episode.
        self._corner_simulators = tuple(
            clone_simulator_with_technology(simulator, technology)
            for technology in self.technologies
        )
        self.batched = bool(batched) and isinstance(simulator, KERNEL_BATCHED_TYPES)
        self._kernel = None
        self._kernel_signature = None
        self.name = f"corners[{getattr(simulator, 'name', type(simulator).__name__)}]"

    # ------------------------------------------------------------------
    # CircuitSimulator protocol
    # ------------------------------------------------------------------
    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Merged worst-corner result plus flattened per-corner spec keys."""
        return self.merge(self.corner_results(netlist))

    # ------------------------------------------------------------------
    # Per-corner evaluation
    # ------------------------------------------------------------------
    def corner_results(self, netlist: Netlist) -> List[SimulationResult]:
        """One :class:`SimulationResult` per corner, in corner-set order."""
        if self.batched:
            return self._corner_results_batched(netlist)
        return [
            simulator.simulate(netlist) for simulator in self._corner_simulators
        ]

    def _corner_results_batched(self, netlist: Netlist) -> List[SimulationResult]:
        # Local import keeps repro.corners importable without pulling the
        # compile subsystem until the batched path actually runs.
        from repro.compile.sim_kernels import build_simulator_kernel

        signature = _netlist_signature(netlist)
        if self._kernel is None or self._kernel_signature != signature:
            kernel = build_simulator_kernel(
                self.base_simulator, netlist, num_envs=len(self.corner_set)
            )
            kernel.bind_lane_technologies(list(self.technologies))
            self._kernel = kernel
            self._kernel_signature = signature
        parameters = netlist.parameter_array()
        stacked = np.tile(parameters, (len(self.corner_set), 1))
        result = self._kernel.evaluate(stacked)
        spec_rows = result.spec_rows()
        detail_rows = result.detail_rows()
        return [
            SimulationResult(
                specs=spec_rows[lane],
                details=detail_rows[lane],
                valid=bool(result.valid[lane]),
            )
            for lane in range(len(self.corner_set))
        ]

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _worst_value(self, name: str, values: Sequence[float]) -> float:
        if self.spec_space is None:
            return values[0]
        objective = None
        for spec in self.spec_space:
            if spec.name == name:
                objective = spec.objective
                break
        if objective is None:
            return values[0]
        if objective is Objective.MINIMIZE:
            return max(values)
        return min(values)

    def merge(self, results: Sequence[SimulationResult]) -> SimulationResult:
        """Fold per-corner results into the protocol's single result."""
        corners = list(self.corner_set)
        if len(results) != len(corners):
            raise ValueError(f"{len(results)} results for {len(corners)} corners")
        specs: Dict[str, float] = {}
        for name in results[0].specs:
            values = [result.specs[name] for result in results]
            specs[name] = self._worst_value(name, values)
        for corner, result in zip(corners, results):
            for name, value in result.specs.items():
                specs[self.corner_set.spec_key(name, corner)] = value
        details: Dict[str, float] = {}
        for corner, result in zip(corners, results):
            details[f"corner_valid@{corner.name}"] = float(result.valid)
            for name, value in result.details.items():
                details[f"{name}@{corner.name}"] = value
        valid = all(result.valid for result in results)
        return SimulationResult(specs=specs, details=details, valid=valid)
