"""Deployment and generalization experiments (Fig. 5 and Fig. 6).

Fig. 5 deploys the trained policy on one specification group sampled from the
Table 1 space and plots how every intermediate specification approaches its
target step by step.  Fig. 6 repeats the exercise with specification groups
*outside* the sampling space (generalization), which typically needs more
steps.  The exact target groups used in the paper's figures are reproduced
as constants below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.agents.deployment import DeploymentResult, deploy_policy
from repro.agents.policy import ActorCriticPolicy
from repro.api.catalog import make_env
from repro.env.circuit_env import CircuitDesignEnv
from repro.experiments.configs import ExperimentScale, bench_scale
from repro.experiments.training import CIRCUIT_ENV_IDS, run_training_experiment

#: Fig. 5 target groups (sampled from the Table 1 spaces in the paper).
FIG5_OPAMP_TARGET: Dict[str, float] = {
    "gain": 350.0,
    "bandwidth": 1.8e7,
    "phase_margin": 55.0,
    "power": 4.0e-3,
}
FIG5_RF_PA_TARGET: Dict[str, float] = {
    "output_power": 2.5,
    "efficiency": 0.57,
}

#: Fig. 6 unseen target groups (outside the Table 1 sampling spaces).
FIG6_OPAMP_UNSEEN_TARGET: Dict[str, float] = {
    "gain": 225.0,
    "bandwidth": 2.6e7,
    "phase_margin": 65.0,
    "power": 6.0e-3,
}
FIG6_RF_PA_UNSEEN_TARGET: Dict[str, float] = {
    "output_power": 2.9,
    "efficiency": 0.69,
}

#: Deployment target per circuit: the paper's Fig. 5 groups for its two
#: benchmarks, mid-sampling-space groups for the topology-zoo circuits.
DEPLOYMENT_TARGETS: Dict[str, Dict[str, float]] = {
    "two_stage_opamp": FIG5_OPAMP_TARGET,
    "rf_pa": FIG5_RF_PA_TARGET,
    "folded_cascode": {
        "gain": 250.0, "bandwidth": 2.0e9, "phase_margin": 45.0, "power": 2.0e-2,
    },
    "current_mirror_ota": {
        "gain": 25.0, "bandwidth": 8.0e9, "slew_rate": 1.5e9, "power": 2.0e-2,
    },
    "common_source_lna": {
        "gain": 15.0, "noise_figure": 5.6, "power": 8.0e-3,
    },
}

#: Out-of-distribution target per circuit (each pushes at least one spec
#: beyond its sampling range, mirroring Fig. 6).
GENERALIZATION_TARGETS: Dict[str, Dict[str, float]] = {
    "two_stage_opamp": FIG6_OPAMP_UNSEEN_TARGET,
    "rf_pa": FIG6_RF_PA_UNSEEN_TARGET,
    "folded_cascode": {
        "gain": 500.0, "bandwidth": 6.0e9, "phase_margin": 75.0, "power": 1.5e-2,
    },
    "current_mirror_ota": {
        "gain": 60.0, "bandwidth": 4.0e10, "slew_rate": 8.0e9, "power": 1.5e-2,
    },
    "common_source_lna": {
        "gain": 40.0, "noise_figure": 4.6, "power": 6.0e-3,
    },
}

#: Step budgets used in the paper's generalization figure (op-amp 38/49 steps
#: shown; we allow a slightly larger budget than the training episodes).
GENERALIZATION_MAX_STEPS = {
    "two_stage_opamp": 80,
    "folded_cascode": 80,
    "current_mirror_ota": 64,
    "common_source_lna": 50,
    "rf_pa": 50,
}


@dataclass
class DeploymentExample:
    """One deployment (or generalization) trajectory plus its context."""

    circuit: str
    method: str
    target_specs: Dict[str, float]
    result: DeploymentResult

    def spec_series(self, name: str) -> np.ndarray:
        """The per-step curve of one specification (one Fig. 5/6 panel)."""
        return self.result.trajectory.spec_series(name)

    @property
    def steps(self) -> int:
        return self.result.steps

    @property
    def success(self) -> bool:
        return self.result.success


#: Deployment always uses the accurate simulator (fine for the RF PA).
DEPLOYMENT_ENV_IDS = {circuit: ids["fine"] for circuit, ids in CIRCUIT_ENV_IDS.items()}


def _deployment_env(circuit: str, seed: Optional[int] = None) -> CircuitDesignEnv:
    if circuit not in DEPLOYMENT_ENV_IDS:
        raise ValueError(
            f"unknown circuit '{circuit}', expected one of {sorted(DEPLOYMENT_ENV_IDS)}"
        )
    return make_env(DEPLOYMENT_ENV_IDS[circuit], seed=seed)


def default_target(circuit: str, unseen: bool = False) -> Dict[str, float]:
    """The circuit's deployment (or, when ``unseen``, out-of-distribution)
    target group — Fig. 5 / Fig. 6 for the paper's two benchmarks."""
    table = GENERALIZATION_TARGETS if unseen else DEPLOYMENT_TARGETS
    if circuit not in table:
        raise ValueError(f"unknown circuit '{circuit}', expected one of {sorted(table)}")
    return dict(table[circuit])


def deployment_example(
    circuit: str,
    policy: Optional[ActorCriticPolicy] = None,
    method: str = "gcn_fc",
    target: Optional[Mapping[str, float]] = None,
    unseen: bool = False,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    checkpoint: Optional[str] = None,
) -> DeploymentExample:
    """Produce one Fig. 5 (or, with ``unseen=True``, Fig. 6) trajectory.

    The policy comes from, in order of precedence: the ``policy`` argument,
    a ``checkpoint`` file saved with :func:`repro.save_checkpoint` (the
    train-once / deploy-many workflow), or a from-scratch training run at the
    given ``scale`` (the paper uses its GCN-FC policy for these figures).
    Deployment runs grad-free on the accurate simulator and, for the
    generalization case, with the enlarged step budget the paper uses.
    """
    scale = scale or bench_scale()
    env = _deployment_env(circuit, seed=seed)
    if policy is None and checkpoint is not None:
        from repro.agents.checkpoint import CheckpointError, load_checkpoint

        loaded = load_checkpoint(checkpoint)
        if loaded.policy.config.num_parameters != env.num_parameters:
            raise CheckpointError(
                f"checkpoint {checkpoint} holds a policy sized for "
                f"{loaded.policy.config.num_parameters} parameters "
                f"(env_id={loaded.env_id!r}), but circuit '{circuit}' has "
                f"{env.num_parameters} tunable parameters"
            )
        policy = loaded.policy
        method = loaded.policy_id or method
    if policy is None:
        training = run_training_experiment(
            circuit, method, scale=scale, seed=seed, track_accuracy=False
        )
        policy = training.policy
    target_specs = dict(target) if target is not None else default_target(circuit, unseen=unseen)
    max_steps = GENERALIZATION_MAX_STEPS[circuit] if unseen else None
    result = deploy_policy(
        env, policy, target_specs, deterministic=True,
        rng=np.random.default_rng(seed), max_steps=max_steps,
    )
    return DeploymentExample(
        circuit=circuit, method=method, target_specs=target_specs, result=result
    )


def generalization_example(
    circuit: str,
    policy: Optional[ActorCriticPolicy] = None,
    method: str = "gcn_fc",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    checkpoint: Optional[str] = None,
) -> DeploymentExample:
    """Fig. 6: deployment toward an out-of-distribution specification group."""
    return deployment_example(
        circuit, policy=policy, method=method, unseen=True, scale=scale, seed=seed,
        checkpoint=checkpoint,
    )
