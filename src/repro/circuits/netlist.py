"""Netlist container: the circuit description the RL environment rewrites.

In the paper's design loop (Fig. 2) the data-processing module updates device
parameters and rewrites the netlist at every RL step before invoking the
simulator.  :class:`Netlist` is that mutable circuit description.  It offers

* device lookup and parameter rewriting (the "Updated netlist" arrow),
* connectivity queries used to build the circuit graph,
* a SPICE-style text export for inspection and golden-file tests, and
* deep copies so parallel episodes never alias each other's state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from repro.circuits.devices import Device, DeviceType


class Netlist:
    """An ordered collection of :class:`~repro.circuits.devices.Device`.

    Parameters
    ----------
    name:
        Human-readable circuit name (e.g. ``"two_stage_opamp"``).
    devices:
        Devices in schematic order.  Names must be unique.
    """

    def __init__(self, name: str, devices: Iterable[Device] = ()) -> None:
        self.name = name
        self._devices: Dict[str, Device] = {}
        for device in devices:
            self.add_device(device)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_device(self, device: Device) -> None:
        if device.name in self._devices:
            raise ValueError(f"duplicate device name '{device.name}' in netlist '{self.name}'")
        self._devices[device.name] = device

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def __contains__(self, device_name: str) -> bool:
        return device_name in self._devices

    @property
    def devices(self) -> List[Device]:
        return list(self._devices.values())

    @property
    def device_names(self) -> List[str]:
        return list(self._devices)

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError as exc:
            raise KeyError(f"netlist '{self.name}' has no device '{name}'") from exc

    def devices_of_type(self, dtype: DeviceType) -> List[Device]:
        return [d for d in self._devices.values() if d.dtype is dtype]

    @property
    def transistors(self) -> List[Device]:
        return [d for d in self._devices.values() if d.dtype.is_transistor]

    # ------------------------------------------------------------------
    # Nets and connectivity
    # ------------------------------------------------------------------
    @property
    def nets(self) -> List[str]:
        """All net names, order of first appearance."""
        seen: Dict[str, None] = {}
        for device in self._devices.values():
            for net in device.terminals.values():
                seen.setdefault(net, None)
        return list(seen)

    def devices_on_net(self, net: str) -> List[Device]:
        return [d for d in self._devices.values() if d.connects_to(net)]

    def connections(self) -> List[Tuple[str, str]]:
        """Device–device adjacency: pairs of device names sharing a net.

        This is the edge set ``E`` of the circuit graph ``G = (V, E)`` used
        by the policy's GNN branch (Sec. 3, State Representation).
        """
        edges: Dict[Tuple[str, str], None] = {}
        devices = self.devices
        for i, first in enumerate(devices):
            first_nets = set(first.terminals.values())
            for second in devices[i + 1:]:
                if first_nets.intersection(second.terminals.values()):
                    edges.setdefault((first.name, second.name), None)
        return list(edges)

    # ------------------------------------------------------------------
    # Parameter rewriting (the DPM's "update device parameters" step)
    # ------------------------------------------------------------------
    def get_parameter(self, device_name: str, key: str) -> float:
        return self.device(device_name).get_parameter(key)

    def set_parameter(self, device_name: str, key: str, value: float) -> None:
        self.device(device_name).set_parameter(key, value)

    def update_parameters(self, updates: Mapping[Tuple[str, str], float]) -> None:
        """Apply a batch of ``(device, parameter) -> value`` updates."""
        for (device_name, key), value in updates.items():
            self.set_parameter(device_name, key, value)

    # ------------------------------------------------------------------
    # Copying and export
    # ------------------------------------------------------------------
    def copy(self) -> "Netlist":
        return Netlist(self.name, (device.copy() for device in self._devices.values()))

    def to_spice(self) -> str:
        """Render a SPICE-like card deck (for logs, debugging, golden tests)."""
        lines = [f"* netlist: {self.name}"]
        for device in self._devices.values():
            terminals = " ".join(device.terminals.values())
            params = " ".join(
                f"{key}={value:.6g}" for key, value in sorted(device.parameters.items())
            )
            lines.append(f"{device.name} {terminals} {device.dtype.value} {params}".rstrip())
        lines.append(".end")
        return "\n".join(lines)

    def parameter_array(self) -> np.ndarray:
        """Every device parameter as one flat array (netlist insertion order).

        For a fixed topology the ordering is deterministic, so this array is
        a complete, cheap fingerprint of the simulator-relevant state — it is
        what :class:`repro.parallel.SimulationCache` hashes.
        """
        values: List[float] = []
        for device in self._devices.values():
            values.extend(device.parameters.values())
        return np.array(values, dtype=np.float64)

    def parameter_snapshot(self) -> Dict[Tuple[str, str], float]:
        """Flat copy of every device parameter — useful for diffing steps."""
        snapshot: Dict[Tuple[str, str], float] = {}
        for device in self._devices.values():
            for key, value in device.parameters.items():
                snapshot[(device.name, key)] = value
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Netlist(name={self.name!r}, devices={len(self)})"
