"""TrustGate calibration: loosest-safe-threshold semantics and cold behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate import TrustGate, calibrate_threshold


class TestCalibrateThreshold:
    def test_picks_loosest_prefix_within_tolerance(self):
        # Error grows with disagreement: the first three queries are within
        # tolerance, the last two are not.
        disagreement = np.array([0.01, 0.02, 0.03, 0.5, 0.9])
        errors = np.array([0.01, 0.02, 0.05, 0.8, 1.2])
        threshold = calibrate_threshold(disagreement, errors, tolerance=0.1, quantile=1.0)
        assert threshold == pytest.approx(0.03)

    def test_unsorted_input_is_ranked_by_disagreement(self):
        disagreement = np.array([0.9, 0.01, 0.5, 0.03, 0.02])
        errors = np.array([1.2, 0.01, 0.8, 0.05, 0.02])
        threshold = calibrate_threshold(disagreement, errors, tolerance=0.1, quantile=1.0)
        assert threshold == pytest.approx(0.03)

    def test_quantile_ignores_a_small_error_tail(self):
        # One outlier error among many good queries: the 0.9-quantile lets the
        # calibration keep the whole prefix, a max (quantile=1.0) would not.
        disagreement = np.linspace(0.01, 0.1, 20)
        errors = np.full(20, 0.01)
        errors[10] = 5.0
        assert calibrate_threshold(disagreement, errors, tolerance=0.1, quantile=1.0) \
            == pytest.approx(disagreement[9])
        assert calibrate_threshold(disagreement, errors, tolerance=0.1, quantile=0.9) \
            == pytest.approx(disagreement[-1])

    def test_hopeless_fit_returns_none(self):
        disagreement = np.array([0.01, 0.02])
        errors = np.array([3.0, 4.0])  # even the most confident query is bad
        assert calibrate_threshold(disagreement, errors, tolerance=0.1) is None

    def test_empty_or_mismatched_inputs_return_none(self):
        assert calibrate_threshold(np.array([]), np.array([]), tolerance=0.1) is None
        assert calibrate_threshold(np.array([0.1]), np.array([0.1, 0.2]), tolerance=0.1) is None

    def test_nan_error_poisons_its_prefix(self):
        # A NaN error in the most-confident query must not be silently
        # accepted — the conservative outcome is no threshold at all.
        disagreement = np.array([0.01, 0.02, 0.03])
        errors = np.array([np.nan, 0.01, 0.01])
        assert calibrate_threshold(disagreement, errors, tolerance=0.1, quantile=1.0) is None

    @pytest.mark.parametrize(
        "tolerance,quantile", [(0.0, 0.9), (-1.0, 0.9), (0.1, 0.0), (0.1, 1.5)]
    )
    def test_invalid_knobs_raise(self, tolerance, quantile):
        with pytest.raises(ValueError):
            calibrate_threshold(
                np.array([0.1]), np.array([0.1]), tolerance=tolerance, quantile=quantile
            )


class TestTrustGate:
    def test_uncalibrated_gate_rejects_everything(self):
        gate = TrustGate()
        assert not gate.ready(10_000)
        mask = gate.accept(np.array([0.0, 1e-9, 1.0]), num_train_points=10_000)
        assert mask.dtype == bool and not mask.any()

    def test_small_corpus_rejects_even_with_threshold(self):
        gate = TrustGate(threshold=0.5, min_train_points=32)
        assert not gate.ready(31)
        assert not gate.accept(np.zeros(3), num_train_points=31).any()
        assert gate.ready(32)

    def test_accept_mask_thresholds_disagreement(self):
        gate = TrustGate(threshold=0.5, min_train_points=1)
        mask = gate.accept(np.array([0.1, 0.5, 0.50001]), num_train_points=100)
        assert mask.tolist() == [True, True, False]

    def test_calibrate_installs_the_threshold(self):
        gate = TrustGate(tolerance=0.1, quantile=1.0)
        value = gate.calibrate(np.array([0.01, 0.9]), np.array([0.05, 2.0]))
        assert value == pytest.approx(0.01)
        assert gate.threshold == pytest.approx(0.01)
        value = gate.calibrate(np.array([0.01]), np.array([2.0]))
        assert value is None and gate.threshold is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"min_train_points": 0}, {"tolerance": 0.0}, {"quantile": 0.0}, {"quantile": 1.1}],
    )
    def test_invalid_construction_raises(self, kwargs):
        with pytest.raises(ValueError):
            TrustGate(**kwargs)
