"""The shipped tree must satisfy its own lint rules (modulo the baseline)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    ALL_RULES,
    DEFAULT_BASELINE,
    analyze_paths,
    load_baseline,
    split_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_has_no_findings_beyond_the_baseline(monkeypatch):
    # Baseline fingerprints hash the repo-relative path, exactly as the CI
    # invocation (`python -m repro.run analyze src/` from the repo root)
    # produces them.
    monkeypatch.chdir(REPO_ROOT)
    report = analyze_paths(["src"])
    assert report.errors == []
    assert report.files > 50  # sanity: the whole tree was actually scanned
    entries = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    new, _matched, stale = split_baseline(report.findings, entries)
    assert new == [], "new findings:\n" + "\n".join(f.render() for f in new)
    assert stale == [], (
        "stale baseline entries (finding fixed? regenerate with "
        "`python -m repro.run analyze src/ --write-baseline`): "
        + ", ".join(str(e.get("fingerprint")) for e in stale)
    )


def test_baseline_is_small_and_annotated():
    entries = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    assert len(entries) <= 5  # grandfathering budget: burn down, never grow
    for entry in entries:
        assert entry.get("note"), f"baseline entry without a note: {entry}"


def test_every_rule_documents_itself():
    seen = set()
    for rule in ALL_RULES:
        assert rule.rule_id and rule.rule_id not in seen
        seen.add(rule.rule_id)
        assert rule.title and rule.rationale and rule.hint


def test_rule_catalog_doc_covers_every_rule():
    catalog = (REPO_ROOT / "docs" / "analysis-rules.md").read_text(encoding="utf-8")
    for rule in ALL_RULES:
        assert rule.rule_id in catalog, f"{rule.rule_id} missing from docs/analysis-rules.md"
