"""Policy deployment: using a trained policy to design circuits.

"Policy deployment applies a trained policy to automatically find the device
parameters for given specifications" (Sec. 4).  This module implements

* :func:`deploy_policy` — run one deployment episode for one specification
  group and return its trajectory (the data behind Fig. 5 and Fig. 6),
* :func:`deploy_policy_batch` — run many specification-group episodes
  lock-step on a :class:`~repro.parallel.VectorCircuitEnv`, paying one
  batched policy forward per step instead of one per episode (episode-level
  results identical to sequential :func:`deploy_policy`), and
* :func:`evaluate_deployment` — deploy over a batch of sampled specification
  groups and report the two headline Table 2 metrics: *design accuracy*
  (fraction of groups for which all specs are met within the step budget)
  and *mean number of design steps*.

Deployment never back-propagates, so by default both entry points use the
policy's grad-free fast paths (:meth:`ActorCriticPolicy.select_action` /
``select_action_batch``) — pure-numpy actor forwards with no critic, no
log-probabilities, and no autograd graph.  Pass ``inference=False`` to run
the legacy grad-recording path (``benchmarks/bench_serve.py`` measures the
two against each other); the chosen actions are identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.agents.policy import ActorCriticPolicy
from repro.env.circuit_env import CircuitDesignEnv, EpisodeTrajectory
from repro.env.spaces import BatchedObservation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.vector_env import VectorCircuitEnv


@dataclass
class DeploymentResult:
    """Outcome of deploying the policy for one specification group."""

    target_specs: Dict[str, float]
    success: bool
    steps: int
    final_specs: Dict[str, float]
    trajectory: EpisodeTrajectory


@dataclass
class DeploymentEvaluation:
    """Aggregate deployment statistics over a batch of specification groups."""

    results: List[DeploymentResult] = field(default_factory=list)

    @property
    def num_targets(self) -> int:
        return len(self.results)

    @property
    def accuracy(self) -> float:
        """Design accuracy: fraction of target groups fully satisfied."""
        if not self.results:
            return 0.0
        return float(np.mean([r.success for r in self.results]))

    @property
    def mean_steps(self) -> float:
        """Mean number of design (simulation) steps per deployment episode."""
        if not self.results:
            return 0.0
        return float(np.mean([r.steps for r in self.results]))

    @property
    def mean_successful_steps(self) -> float:
        """Mean steps counting only successful deployments (paper's metric)."""
        steps = [r.steps for r in self.results if r.success]
        return float(np.mean(steps)) if steps else float("nan")


@contextmanager
def _max_steps_override(
    envs: Sequence[CircuitDesignEnv], max_steps: Optional[int]
) -> Iterator[None]:
    """Temporarily override the step budget of every given environment."""
    originals = [env.max_steps for env in envs]
    if max_steps is not None:
        for env in envs:
            env.max_steps = int(max_steps)
    try:
        yield
    finally:
        for env, original in zip(envs, originals):
            env.max_steps = original


def deploy_policy(
    env: CircuitDesignEnv,
    policy: ActorCriticPolicy,
    target_specs: Mapping[str, float],
    deterministic: bool = True,
    rng: Optional[np.random.Generator] = None,
    max_steps: Optional[int] = None,
    inference: bool = True,
) -> DeploymentResult:
    """Run one deployment episode toward ``target_specs``.

    Parameters
    ----------
    env:
        The design environment (its simulator defines the fidelity level —
        for the RF PA this should be the *fine* simulator, per the paper's
        transfer-learning protocol).
    policy:
        A trained actor-critic policy.
    target_specs:
        The desired specification group.
    deterministic:
        Greedy (mode) actions when True, sampled actions otherwise.
    rng:
        Random generator for stochastic deployment.
    max_steps:
        Optional per-deployment step budget overriding the environment's
        default (Fig. 6 uses a longer budget for out-of-distribution specs).
    inference:
        Use the grad-free pure-numpy action-selection fast path (default).
        ``False`` runs the legacy grad-recording ``policy.act`` path; the
        actions — and therefore the whole episode — are identical.
    """
    rng = rng if rng is not None else np.random.default_rng()
    with _max_steps_override([env], max_steps):
        observation = env.reset(target_specs=target_specs)
        done = False
        while not done:
            if inference:
                action = policy.select_action(observation, rng, deterministic=deterministic)
            else:
                action, _, _ = policy.act(
                    observation, rng, deterministic=deterministic, inference=False
                )
            observation, _, done, info = env.step(action)
        trajectory = env.trajectory
        assert trajectory is not None
        return DeploymentResult(
            target_specs=dict(target_specs),
            success=trajectory.success,
            steps=trajectory.length,
            final_specs=dict(env.measured_specs),
            trajectory=trajectory,
        )


def deploy_policy_batch(
    vector_env: "VectorCircuitEnv",
    policy: ActorCriticPolicy,
    targets: Sequence[Mapping[str, float]],
    deterministic: bool = True,
    rng: Optional[np.random.Generator] = None,
    max_steps: Optional[int] = None,
) -> List[DeploymentResult]:
    """Deploy one episode per target group, micro-batched over a vector env.

    Targets are processed in chunks of ``vector_env.num_envs``: each chunk's
    episodes run lock-step — one batched grad-free policy forward per step —
    with finished episodes dropping out of the batch, so every episode is
    exactly the step sequence the sequential :func:`deploy_policy` would have
    produced (deterministic deployment results are episode-level identical;
    the shared simulation cache changes cost, never values).

    ``rng`` is only consulted for ``deterministic=False``; sampled actions
    then draw per lock-step batch, so the stochastic stream differs from the
    sequential call order (seed accounting, not result quality).  The
    episode-identity guarantee likewise assumes deterministic episode starts
    (the default ``"center"`` initial sizing) — ``"random"`` starts draw from
    each sub-environment's own RNG stream.
    """
    from repro.parallel.vector_env import VectorCircuitEnv  # local: avoid import cycle

    if not isinstance(vector_env, VectorCircuitEnv):
        raise TypeError(
            f"deploy_policy_batch needs a VectorCircuitEnv, got {type(vector_env).__name__}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    results: List[DeploymentResult] = []
    targets = list(targets)
    with _max_steps_override(vector_env.envs, max_steps):
        for start in range(0, len(targets), vector_env.num_envs):
            chunk = targets[start : start + vector_env.num_envs]
            results.extend(
                _deploy_chunk(vector_env, policy, chunk, deterministic=deterministic, rng=rng)
            )
    return results


def _deploy_chunk(
    vector_env: "VectorCircuitEnv",
    policy: ActorCriticPolicy,
    targets: Sequence[Mapping[str, float]],
    deterministic: bool,
    rng: np.random.Generator,
) -> List[DeploymentResult]:
    """Run one lock-step micro-batch (at most ``num_envs`` episodes)."""
    envs = vector_env.envs[: len(targets)]
    observations = [
        env.reset(target_specs=target) for env, target in zip(envs, targets)
    ]
    results: List[Optional[DeploymentResult]] = [None] * len(targets)
    active = list(range(len(targets)))
    while active:
        batch = BatchedObservation.stack([observations[index] for index in active])
        actions = policy.select_action_batch(batch, rng, deterministic=deterministic)
        step_observations, _, dones, _ = vector_env.step_selected(active, actions)
        still_active: List[int] = []
        for row, index in enumerate(active):
            observations[index] = step_observations[row]
            if dones[row]:
                trajectory = envs[index].trajectory
                assert trajectory is not None
                results[index] = DeploymentResult(
                    target_specs=dict(targets[index]),
                    success=trajectory.success,
                    steps=trajectory.length,
                    final_specs=dict(envs[index].measured_specs),
                    trajectory=trajectory,
                )
            else:
                still_active.append(index)
        active = still_active
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def evaluate_deployment(
    env: CircuitDesignEnv,
    policy: ActorCriticPolicy,
    num_targets: int = 200,
    seed: Optional[int] = None,
    targets: Optional[Sequence[Mapping[str, float]]] = None,
    deterministic: bool = True,
    batch_size: Optional[int] = None,
    inference: bool = True,
) -> DeploymentEvaluation:
    """Deploy the policy over a batch of specification groups.

    The paper evaluates each point of the Fig. 3 accuracy curves on 200
    randomly sampled groups; ``num_targets`` controls that batch size here.
    Pass an explicit ``targets`` sequence to evaluate every method on the
    identical batch (as done by the Table 2 harness).

    ``batch_size > 1`` micro-batches the episodes over a
    :class:`~repro.parallel.VectorCircuitEnv` sharing one simulation cache
    (see :func:`deploy_policy_batch`); deterministic evaluations report
    exactly the sequential metrics, just faster.  The batched path is
    always grad-free, so it cannot be combined with ``inference=False``.
    """
    if batch_size is not None and batch_size > 1 and not inference:
        raise ValueError(
            "batched evaluation always uses the grad-free fast path; "
            "use batch_size=None (or 1) to exercise inference=False"
        )
    rng = np.random.default_rng(seed)
    if targets is None:
        targets = env.benchmark.spec_space.sample_batch(rng, num_targets)
    evaluation = DeploymentEvaluation()
    if batch_size is not None and batch_size > 1 and len(targets) > 1:
        from repro.parallel.vector_env import VectorCircuitEnv  # local: avoid import cycle

        # Seed the sub-environments from this function's seed so stochastic
        # episode starts (initial_sizing="random") stay reproducible run to
        # run; an unseeded call stays unseeded, like the sequential path.
        vector_env = VectorCircuitEnv.from_env(
            env, num_envs=min(int(batch_size), len(targets)), seed=seed, autoreset=False
        )
        evaluation.results.extend(
            deploy_policy_batch(
                vector_env, policy, targets, deterministic=deterministic, rng=rng
            )
        )
        return evaluation
    for target in targets:
        result = deploy_policy(
            env, policy, target, deterministic=deterministic, rng=rng, inference=inference
        )
        evaluation.results.append(result)
    return evaluation
