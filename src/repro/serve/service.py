"""The micro-batched policy deployment service.

:class:`DeploymentService` is the serving front end over the PR's three
lower layers: on-disk checkpoints rebuild the policy, the grad-free
inference mode makes each forward pure numpy, and the batched deployment
engine runs up to ``batch_size`` specification-group episodes lock-step on
one :class:`~repro.parallel.VectorCircuitEnv` whose sub-environments share a
:class:`~repro.parallel.SimulationCache`.  The vector environments (and
their caches) persist across :meth:`DeploymentService.serve` calls, so a
long-lived service keeps getting cheaper as traffic repeats designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.checkpoint import CheckpointError, load_checkpoint
from repro.agents.deployment import DeploymentResult, deploy_policy_batch
from repro.agents.policy import ActorCriticPolicy
from repro.api.catalog import make_env
from repro.env.circuit_env import CircuitDesignEnv
from repro.parallel.cache import DEFAULT_CACHE_SIZE
from repro.parallel.vector_env import VectorCircuitEnv


@dataclass
class ServeRequest:
    """One deployment request: a specification group plus optional routing.

    ``env_id`` picks the topology (defaults to the service's default
    environment — usually the one recorded in the checkpoint);
    ``max_steps`` overrides the episode step budget (Fig. 6-style
    out-of-distribution targets need longer budgets).
    """

    target_specs: Dict[str, float]
    env_id: Optional[str] = None
    max_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.target_specs:
            raise ValueError("ServeRequest needs a non-empty target_specs mapping")
        self.target_specs = {
            name: float(value) for name, value in dict(self.target_specs).items()
        }
        if self.max_steps is not None and int(self.max_steps) <= 0:
            raise ValueError("max_steps must be positive")


@dataclass
class ServeResponse:
    """The designed circuit for one request."""

    index: int
    env_id: str
    target_specs: Dict[str, float]
    success: bool
    steps: int
    final_specs: Dict[str, float]
    final_parameters: Dict[str, float]
    result: DeploymentResult

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (what the deploy CLI writes with ``--output``)."""
        return {
            "index": self.index,
            "env_id": self.env_id,
            "target_specs": dict(self.target_specs),
            "success": self.success,
            "steps": self.steps,
            "final_specs": dict(self.final_specs),
            "final_parameters": dict(self.final_parameters),
        }


@dataclass
class ServeStats:
    """Cumulative counters over the lifetime of a service.

    One request is one deployment episode, so ``episodes`` is also the
    number of requests served.  The three tier counters aggregate the
    simulation tiers across every topology the service routes to (all zero
    unless a policy was registered with a surrogate): ``surrogate_hits`` —
    design steps answered by the learned tier, ``trust_rejections`` —
    surrogate consults its trust gate refused, ``exact_fallbacks`` — exact
    simulator calls made after such a refusal.
    """

    episodes: int = 0
    design_steps: int = 0
    successes: int = 0
    wall_time_s: float = 0.0
    by_env: Dict[str, int] = field(default_factory=dict)
    surrogate_hits: int = 0
    trust_rejections: int = 0
    exact_fallbacks: int = 0

    def record(self, env_id: str, results: Sequence[DeploymentResult], elapsed: float) -> None:
        self.episodes += len(results)
        self.design_steps += sum(result.steps for result in results)
        self.successes += sum(bool(result.success) for result in results)
        self.wall_time_s += elapsed
        self.by_env[env_id] = self.by_env.get(env_id, 0) + len(results)

    def record_tiers(
        self, surrogate_hits: int, trust_rejections: int, exact_fallbacks: int
    ) -> None:
        """Fold one serve call's simulation-tier deltas into the totals."""
        self.surrogate_hits += int(surrogate_hits)
        self.trust_rejections += int(trust_rejections)
        self.exact_fallbacks += int(exact_fallbacks)

    @property
    def accuracy(self) -> float:
        return self.successes / self.episodes if self.episodes else 0.0

    @property
    def episodes_per_second(self) -> float:
        return self.episodes / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable digest (what the deploy CLI writes)."""
        return {
            "episodes": self.episodes,
            "design_steps": self.design_steps,
            "successes": self.successes,
            "accuracy": self.accuracy,
            "wall_time_s": self.wall_time_s,
            "by_env": dict(self.by_env),
            "surrogate_hits": self.surrogate_hits,
            "trust_rejections": self.trust_rejections,
            "exact_fallbacks": self.exact_fallbacks,
        }


class DeploymentService:
    """Serve specification targets with checkpointed policies, micro-batched.

    Parameters
    ----------
    batch_size:
        Maximum number of episodes run lock-step per topology (the width of
        each per-environment :class:`VectorCircuitEnv`).
    cache_size:
        Entry budget of each topology's shared simulation cache.
    deterministic:
        Greedy (mode) actions when True — the paper's deployment setting.
    seed:
        Seed for the service RNG (only consulted for stochastic serving).
    """

    def __init__(
        self,
        batch_size: int = 8,
        cache_size: int = DEFAULT_CACHE_SIZE,
        deterministic: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.deterministic = bool(deterministic)
        self.rng = np.random.default_rng(seed)
        self.stats = ServeStats()
        self._policies: Dict[str, ActorCriticPolicy] = {}
        self._vector_envs: Dict[str, VectorCircuitEnv] = {}
        self._default_env_id: Optional[str] = None
        # Per-env snapshot of the tier counters at the last serve() flush, so
        # cumulative CacheStats fold into ServeStats as deltas exactly once.
        self._tier_marks: Dict[str, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # Policy registration
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        env_id: Optional[str] = None,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
        **kwargs: Any,
    ) -> "DeploymentService":
        """Build a service around one checkpoint (the CLI entry path)."""
        service = cls(**kwargs)
        service.add_checkpoint(
            path, env_id=env_id, surrogate=surrogate, surrogate_dir=surrogate_dir
        )
        return service

    def add_checkpoint(
        self,
        path: Union[str, Path],
        env_id: Optional[str] = None,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
    ) -> str:
        """Load a checkpoint and register its policy; returns the env ID used."""
        checkpoint = load_checkpoint(path)
        env_id = env_id or checkpoint.env_id
        if env_id is None:
            raise CheckpointError(
                f"checkpoint {path} does not record an environment ID; pass "
                "env_id=... (e.g. 'opamp-p2s-v0') to route its requests"
            )
        self.register_policy(
            env_id, checkpoint.policy, surrogate=surrogate, surrogate_dir=surrogate_dir
        )
        return env_id

    def register_policy(
        self,
        env_id: str,
        policy: ActorCriticPolicy,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        """Register a (possibly freshly trained) policy for an environment ID.

        ``surrogate`` (a trained :class:`repro.surrogate.SpecSurrogate` or a
        checkpoint path) and/or ``surrogate_dir`` (a persistent corpus
        directory) route this topology's simulations through a
        :class:`repro.surrogate.TieredSimulator`; the tier counters surface
        in :attr:`stats` and :meth:`stats_dict`.
        """
        # Resolve now so an unknown ID fails at registration, not mid-serve.
        template = make_env(env_id)
        if not isinstance(template, CircuitDesignEnv):  # pragma: no cover - defensive
            raise ValueError(f"environment {env_id!r} is not a sequential CircuitDesignEnv")
        if policy.config.num_parameters != template.num_parameters:
            raise ValueError(
                f"policy sized for {policy.config.num_parameters} parameters cannot "
                f"serve environment {env_id!r} ({template.num_parameters} parameters)"
            )
        if surrogate is not None or surrogate_dir is not None:
            # Local import: plain serving should not pay for the nn stack
            # unless a learned tier is actually requested.
            from repro.surrogate import TieredSimulator

            template.simulator = TieredSimulator(
                template.simulator,
                surrogate=surrogate,
                directory=surrogate_dir,
                max_entries=self.cache_size,
            )
        self._policies[env_id] = policy
        self._vector_envs[env_id] = VectorCircuitEnv.from_env(
            template,
            num_envs=self.batch_size,
            cache_size=self.cache_size,
            autoreset=False,
        )
        self._tier_marks[env_id] = (0, 0, 0)
        if self._default_env_id is None:
            self._default_env_id = env_id

    @property
    def env_ids(self) -> List[str]:
        """Environment IDs this service can currently route to."""
        return sorted(self._policies)

    def cache_stats(self, env_id: Optional[str] = None):
        """Simulation-cache statistics for one topology (default: the default)."""
        vector_env = self._vector_envs[self._resolve_env_id(env_id)]
        assert vector_env.cache is not None
        return vector_env.cache.stats

    def stats_dict(self) -> Dict[str, Any]:
        """One JSON-ready document: serve counters plus per-topology caches."""
        return {
            **self.stats.to_dict(),
            "caches": {
                env_id: vector_env.cache.stats.to_dict()
                for env_id, vector_env in self._vector_envs.items()
                if vector_env.cache is not None
            },
        }

    def _flush_tier_stats(self, env_id: str) -> None:
        """Fold an env cache's tier counters into the serve stats (as deltas)."""
        vector_env = self._vector_envs[env_id]
        if vector_env.cache is None:  # pragma: no cover - caches always on here
            return
        cache = vector_env.cache.stats
        now = (cache.surrogate_hits, cache.trust_rejections, cache.exact_fallbacks)
        mark = self._tier_marks.get(env_id, (0, 0, 0))
        self.stats.record_tiers(now[0] - mark[0], now[1] - mark[1], now[2] - mark[2])
        self._tier_marks[env_id] = now

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _resolve_env_id(self, env_id: Optional[str]) -> str:
        if env_id is None:
            if self._default_env_id is None:
                raise ValueError(
                    "the service has no registered policy; call add_checkpoint() "
                    "or register_policy() first"
                )
            return self._default_env_id
        if env_id not in self._policies:
            registered = ", ".join(self.env_ids) or "none"
            raise ValueError(
                f"no policy registered for environment {env_id!r} "
                f"(registered: {registered})"
            )
        return env_id

    @staticmethod
    def _normalize(
        requests: Sequence[Union[ServeRequest, Mapping[str, Any]]],
    ) -> List[ServeRequest]:
        normalized: List[ServeRequest] = []
        for request in requests:
            if isinstance(request, ServeRequest):
                normalized.append(request)
            elif isinstance(request, Mapping):
                normalized.append(ServeRequest(target_specs=dict(request)))
            else:
                raise TypeError(
                    "requests must be ServeRequest objects or spec mappings, "
                    f"got {type(request).__name__}"
                )
        return normalized

    def serve(
        self, requests: Sequence[Union[ServeRequest, Mapping[str, Any]]]
    ) -> List[ServeResponse]:
        """Design every requested specification group; responses keep request order.

        Requests are grouped by ``(env_id, max_steps)`` so each group runs as
        lock-step micro-batches of at most ``batch_size`` episodes on that
        topology's persistent vector environment and shared simulation cache.
        """
        normalized = self._normalize(requests)
        groups: Dict[Tuple[str, Optional[int]], List[int]] = {}
        for index, request in enumerate(normalized):
            key = (self._resolve_env_id(request.env_id), request.max_steps)
            groups.setdefault(key, []).append(index)

        responses: List[Optional[ServeResponse]] = [None] * len(normalized)
        for (env_id, max_steps), indices in groups.items():
            vector_env = self._vector_envs[env_id]
            policy = self._policies[env_id]
            targets = [normalized[index].target_specs for index in indices]
            start = time.perf_counter()
            results = deploy_policy_batch(
                vector_env,
                policy,
                targets,
                deterministic=self.deterministic,
                rng=self.rng,
                max_steps=max_steps,
            )
            self.stats.record(env_id, results, time.perf_counter() - start)
            self._flush_tier_stats(env_id)
            names = vector_env.benchmark.design_space.names
            for index, result in zip(indices, results):
                final = result.trajectory.records[-1].parameters
                responses[index] = ServeResponse(
                    index=index,
                    env_id=env_id,
                    target_specs=dict(result.target_specs),
                    success=result.success,
                    steps=result.steps,
                    final_specs=dict(result.final_specs),
                    final_parameters={
                        name: float(value) for name, value in zip(names, final)
                    },
                    result=result,
                )
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]
