"""Training determinism, gate calibration, and checkpoint persistence."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.surrogate import (
    SurrogateConfig,
    SurrogateDataset,
    SurrogateError,
    load_surrogate,
    save_surrogate,
    train_surrogate,
)
from repro.surrogate.trainer import split_dataset

REPO_ROOT = Path(__file__).resolve().parents[2]


def _smooth_dataset(count=120, seed=0):
    """A corpus an 8x8 ensemble learns well: smooth specs of 2 inputs."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, size=(count, 2))
    specs = np.stack([x[:, 0] + 0.5 * x[:, 1], x[:, 0] * x[:, 1]], axis=1)
    return SurrogateDataset(
        circuit="lna", spec_names=("gain", "power"), parameters=x, specs=specs
    )


def _config(**kwargs):
    defaults = dict(
        hidden=(8, 8), ensemble_size=2, epochs=150, min_train_points=8,
        trust_tolerance=0.3,
    )
    defaults.update(kwargs)
    return SurrogateConfig(**defaults)


class TestSplit:
    def test_split_is_a_deterministic_partition(self):
        dataset = _smooth_dataset(50)
        train_a, val_a = split_dataset(dataset, 0.2, seed=3)
        train_b, val_b = split_dataset(dataset, 0.2, seed=3)
        assert np.array_equal(train_a, train_b) and np.array_equal(val_a, val_b)
        assert sorted([*train_a, *val_a]) == list(range(50))
        assert val_a.size == 10

    def test_split_always_keeps_one_point_per_side(self):
        train, val = split_dataset(_smooth_dataset(2), 0.9, seed=0)
        assert train.size == 1 and val.size == 1

    def test_split_needs_two_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            split_dataset(_smooth_dataset(1), 0.2, seed=0)


class TestTraining:
    def test_learns_and_calibrates_on_a_smooth_corpus(self):
        surrogate, report = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        assert surrogate.is_trained
        assert report.num_train + report.num_val == report.num_points == 120
        assert report.final_train_loss < 0.05
        assert report.threshold is not None
        assert report.val_accept_rate > 0.0
        # The gate actually passes in-distribution queries.
        _, disagreement = surrogate.predict(_smooth_dataset(seed=1).parameters)
        assert surrogate.trusted(disagreement).any()

    def test_training_is_bitwise_deterministic(self):
        x = _smooth_dataset(seed=5).parameters
        a, report_a = train_surrogate(_smooth_dataset(), config=_config(), seed=4)
        b, report_b = train_surrogate(_smooth_dataset(), config=_config(), seed=4)
        for left, right in zip(a.predict(x), b.predict(x)):
            assert np.array_equal(left, right)
        assert report_a.to_dict() == report_b.to_dict()
        c, _ = train_surrogate(_smooth_dataset(), config=_config(), seed=5)
        assert not np.array_equal(a.predict(x)[0], c.predict(x)[0])


class TestPersistence:
    def test_round_trip_preserves_predictions_and_gate(self, tmp_path):
        surrogate, report = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        path = save_surrogate(tmp_path / "model.npz", surrogate, extra={"note": "hi"})
        restored = load_surrogate(path)
        x = _smooth_dataset(seed=2).parameters
        for a, b in zip(surrogate.predict(x), restored.predict(x)):
            assert np.array_equal(a, b)
        assert restored.gate.threshold == surrogate.gate.threshold == report.threshold
        assert restored.num_train_points == surrogate.num_train_points
        assert restored.circuit == "lna" and restored.spec_names == ("gain", "power")
        assert restored.config == surrogate.config

    def test_identical_models_write_identical_bytes(self, tmp_path):
        surrogate, _ = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        a = save_surrogate(tmp_path / "a.npz", surrogate)
        b = save_surrogate(tmp_path / "b.npz", surrogate)
        assert a.read_bytes() == b.read_bytes()

    def test_round_trip_is_bitwise_in_a_fresh_process(self, tmp_path):
        surrogate, _ = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        path = save_surrogate(tmp_path / "model.npz", surrogate)
        x = _smooth_dataset(seed=2).parameters
        np.save(tmp_path / "queries.npy", x)
        specs, disagreement = surrogate.predict(x)

        script = (
            "import numpy as np, sys\n"
            "from repro.surrogate import load_surrogate\n"
            "surrogate = load_surrogate(sys.argv[1])\n"
            "specs, disagreement = surrogate.predict(np.load(sys.argv[2]))\n"
            "np.save(sys.argv[3], specs)\n"
            "np.save(sys.argv[4], disagreement)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [
                sys.executable, "-c", script, str(path), str(tmp_path / "queries.npy"),
                str(tmp_path / "specs.npy"), str(tmp_path / "disagreement.npy"),
            ],
            check=True, env=env, timeout=120,
        )
        assert np.array_equal(np.load(tmp_path / "specs.npy"), specs)
        assert np.array_equal(np.load(tmp_path / "disagreement.npy"), disagreement)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SurrogateError, match="not found"):
            load_surrogate(tmp_path / "nope.npz")

    def test_non_archive_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(SurrogateError, match="not a readable"):
            load_surrogate(path)

    def test_foreign_npz_raises(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(SurrogateError, match="metadata"):
            load_surrogate(path)

    def test_future_format_version_raises(self, tmp_path):
        surrogate, _ = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        path = save_surrogate(tmp_path / "model.npz", surrogate)
        # Rewrite the metadata entry claiming a future layout version.
        with np.load(path, allow_pickle=False) as archive:
            entries = {name: archive[name] for name in archive.files}
        metadata = json.loads(str(entries["__surrogate__"][()]))
        metadata["version"] = 999
        entries["__surrogate__"] = np.array(json.dumps(metadata))
        np.savez(path, **entries)
        with pytest.raises(SurrogateError, match="version"):
            load_surrogate(path)

    def test_truncated_archive_raises(self, tmp_path):
        surrogate, _ = train_surrogate(_smooth_dataset(), config=_config(), seed=0)
        path = save_surrogate(tmp_path / "model.npz", surrogate)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((SurrogateError, zipfile.BadZipFile)):
            load_surrogate(path)
