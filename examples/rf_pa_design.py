"""GaN RF power-amplifier sizing with transfer learning (Sec. 3, Fig. 3/5).

Demonstrates the paper's transfer-learning workflow: the agent trains against
the fast-but-rough coarse (DC-estimate) simulator and is then deployed on the
accurate harmonic-balance-like fine simulator.  Also prints the coarse-vs-fine
reward fidelity report (the "rewards within ±10 %" claim).

Run with:  python examples/rf_pa_design.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import make_env, make_policy, seed_everything
from repro.agents import PPOConfig, deploy_policy
from repro.agents.transfer import TransferLearningWorkflow, reward_fidelity_report
from repro.experiments import FIG5_RF_PA_TARGET


def main(episodes: int, eval_targets: int, fidelity_samples: int, seed: int = 0) -> None:
    rng = seed_everything(seed)
    coarse_env = make_env("rf_pa-coarse-v0", seed=seed)
    fine_env = make_env("rf_pa-fine-v0", seed=seed)

    print("Coarse vs fine simulator reward fidelity (random designs/targets):")
    report = reward_fidelity_report(
        coarse_env, fine_env, num_samples=fidelity_samples, seed=seed
    )
    print(f"  mean |reward error|          : {report.mean_abs_error:.3f}")
    print(f"  90th percentile |error|      : {report.p90_abs_error:.3f}")
    print(f"  mean relative reward error   : {report.mean_abs_relative_error:.1%}")

    print(f"\nTraining GAT-FC policy on the COARSE simulator for {episodes} episodes "
          f"(paper scale: 3,500) ...")
    policy = make_policy("gat_fc", coarse_env, rng)
    workflow = TransferLearningWorkflow(
        coarse_env, fine_env, policy,
        config=PPOConfig(learning_rate=1e-3, minibatch_size=64, update_epochs=4),
        seed=seed, method_name="gat_fc_transfer",
    )
    result = workflow.run(coarse_episodes=episodes, episodes_per_update=10,
                          eval_targets=eval_targets)
    print(f"  deployment accuracy on the coarse simulator: {result.coarse_accuracy:.0%}")
    print(f"  deployment accuracy on the FINE simulator   : {result.fine_accuracy:.0%}")

    print("\nDeployment example toward the Fig. 5 PA target group (fine simulator):")
    print(f"  targets: {FIG5_RF_PA_TARGET}")
    deployment = deploy_policy(fine_env, policy, FIG5_RF_PA_TARGET,
                               rng=np.random.default_rng(seed + 1))
    print(f"  {'step':>4s} {'Pout (W)':>10s} {'efficiency':>11s}")
    for record in deployment.trajectory.records:
        print(f"  {record.step:>4d} {record.specs['output_power']:>10.3f} "
              f"{record.specs['efficiency']:>11.1%}")
    outcome = "SUCCESS" if deployment.success else "not all specs met within the step budget"
    print(f"  -> {outcome} after {deployment.steps} steps")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=120,
                        help="coarse-simulator training episodes (default 120; paper uses 3500)")
    parser.add_argument("--eval-targets", type=int, default=15,
                        help="number of spec groups for the accuracy evaluation")
    parser.add_argument("--fidelity-samples", type=int, default=150,
                        help="random designs for the coarse-vs-fine fidelity report")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    args = parser.parse_args()
    main(args.episodes, args.eval_targets, args.fidelity_samples, args.seed)
