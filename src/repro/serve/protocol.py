"""The versioned serve wire protocol: requests, responses, and documents.

This module is the request/response surface of the serving subsystem —
every entry point (the programmatic :class:`~repro.serve.gateway.Gateway`
API, the ``python -m repro.run serve`` NDJSON/HTTP front ends, and the
``deploy`` CLI) speaks exactly these shapes:

* :class:`ServeRequest` — one sizing query: the target specification group
  plus routing (``env_id``, ``max_steps``) and gateway knobs (``deadline_ms``
  batching budget, caller-chosen ``request_id``);
* :class:`ServeResponse` — the designed circuit (named ``final_parameters``,
  achieved ``final_specs``, per-spec ``met`` flags), or a structured
  :class:`ServeError`, plus ``timing`` and simulation-``tier`` stats;
* :func:`parse_requests_document` / :func:`load_requests_document` — parse a
  whole request document (the ``deploy``/``serve`` CLI input).

Both dataclasses carry ``schema_version`` (currently ``1``) and round-trip
strictly through ``to_json`` / ``from_json``: unknown fields are rejected
with the known field names listed, and future schema versions fail with a
message naming the version this build speaks.  The pre-gateway ``specs.json``
target documents still parse — through a back-compat shim that emits a
:class:`DeprecationWarning` (see :func:`parse_requests_document` and the
legacy entry points in :mod:`repro.serve.specs`).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.deployment import DeploymentResult

#: The wire-format version this build speaks.
SCHEMA_VERSION = 1

_REQUEST_FIELDS = (
    "schema_version",
    "target_specs",
    "env_id",
    "max_steps",
    "deadline_ms",
    "request_id",
)
_RESPONSE_FIELDS = (
    "schema_version",
    "request_id",
    "index",
    "env_id",
    "target_specs",
    "success",
    "met",
    "steps",
    "final_specs",
    "final_parameters",
    "timing",
    "tier",
    "error",
)
_ERROR_FIELDS = ("code", "message")


def _check_schema_version(value: Any, kind: str) -> int:
    try:
        version = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{kind} schema_version must be an integer, got {value!r}") from None
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {kind} schema_version {version} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )
    return version


def _check_known_fields(data: Mapping[str, Any], known: Sequence[str], kind: str) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise ValueError(
            f"unknown {kind} field(s) {sorted(unknown)} (known fields: {', '.join(known)})"
        )


def _spec_mapping(value: Any, label: str) -> Dict[str, float]:
    if not isinstance(value, Mapping):
        raise ValueError(f"{label} must be an object of {{spec name: value}} pairs")
    try:
        return {str(name): float(entry) for name, entry in value.items()}
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{label} has a non-numeric specification value: {exc}") from exc


@dataclass
class ServeRequest:
    """One sizing request: a specification group plus routing and budgets.

    ``env_id`` picks the topology (defaults to the service's default
    environment — usually the one recorded in the checkpoint); ``max_steps``
    overrides the episode step budget.  ``deadline_ms`` is the request's
    batching budget: a gateway may hold the request back, coalescing it with
    others for the same ``(env_id, max_steps)`` group, for at most this long.
    ``request_id`` is echoed verbatim on the response so callers can
    correlate over unordered transports.
    """

    target_specs: Dict[str, float]
    env_id: Optional[str] = None
    max_steps: Optional[int] = None
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.schema_version = _check_schema_version(self.schema_version, "request")
        if not self.target_specs:
            raise ValueError("ServeRequest needs a non-empty target_specs mapping")
        self.target_specs = _spec_mapping(self.target_specs, "target_specs")
        if self.max_steps is not None:
            self.max_steps = int(self.max_steps)
            if self.max_steps <= 0:
                raise ValueError("max_steps must be positive")
        if self.deadline_ms is not None:
            self.deadline_ms = float(self.deadline_ms)
            if self.deadline_ms < 0:
                raise ValueError("deadline_ms must be >= 0")
        if self.request_id is not None:
            self.request_id = str(self.request_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; optional fields are omitted when unset."""
        document: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "target_specs": dict(self.target_specs),
        }
        for name in ("env_id", "max_steps", "deadline_ms", "request_id"):
            value = getattr(self, name)
            if value is not None:
                document[name] = value
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeRequest":
        if not isinstance(data, Mapping):
            raise ValueError(f"a serve request must be an object, got {type(data).__name__}")
        _check_known_fields(data, _REQUEST_FIELDS, "request")
        if "target_specs" not in data:
            raise ValueError(
                "a serve request needs a 'target_specs' object "
                "(legacy bare spec mappings parse via repro.serve.specs)"
            )
        return cls(
            target_specs=_spec_mapping(data["target_specs"], "target_specs"),
            env_id=data.get("env_id"),
            max_steps=data.get("max_steps"),
            deadline_ms=data.get("deadline_ms"),
            request_id=data.get("request_id"),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "ServeRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request line is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclass
class ServeError:
    """A structured failure attached to a :class:`ServeResponse`.

    ``code`` is machine-readable: ``bad_request`` (unparseable input),
    ``unroutable`` (no policy registered for the requested environment),
    ``checkpoint_error`` (a lazily loaded checkpoint failed or mismatched),
    ``timeout`` (the request's hard budget expired before execution),
    ``shutdown`` (the gateway closed without draining), ``internal``
    (an unexpected exception — the worker survives, the request does not).
    """

    code: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeError":
        if not isinstance(data, Mapping):
            raise ValueError("a response 'error' must be an object")
        _check_known_fields(data, _ERROR_FIELDS, "error")
        return cls(code=str(data["code"]), message=str(data["message"]))


@dataclass
class ServeResponse:
    """The designed circuit for one request — or a structured error.

    ``met`` maps each targeted specification to whether the final design
    satisfies it (``success`` is their conjunction); ``timing`` carries
    ``queue_ms`` / ``serve_ms`` / ``total_ms`` where the serving path can
    attribute them; ``tier`` carries the simulation-tier deltas
    (``surrogate_hits`` etc.) of the batch that answered this request.
    ``result`` keeps the full in-process :class:`DeploymentResult`
    (trajectory included) and never crosses the wire.
    """

    env_id: str
    target_specs: Dict[str, float]
    success: bool
    steps: int
    final_specs: Dict[str, float]
    final_parameters: Dict[str, float]
    met: Dict[str, bool] = field(default_factory=dict)
    index: int = 0
    request_id: Optional[str] = None
    error: Optional[ServeError] = None
    timing: Dict[str, float] = field(default_factory=dict)
    tier: Dict[str, int] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    result: Optional["DeploymentResult"] = None

    def __post_init__(self) -> None:
        self.schema_version = _check_schema_version(self.schema_version, "response")

    @property
    def ok(self) -> bool:
        """True when the request was actually served (no structured error)."""
        return self.error is None

    @classmethod
    def failure(
        cls,
        request: Optional[ServeRequest],
        code: str,
        message: str,
        env_id: str = "",
    ) -> "ServeResponse":
        """Build the structured error response for a failed request."""
        return cls(
            env_id=env_id or (request.env_id if request is not None else None) or "",
            target_specs=dict(request.target_specs) if request is not None else {},
            success=False,
            steps=0,
            final_specs={},
            final_parameters={},
            request_id=request.request_id if request is not None else None,
            error=ServeError(code=code, message=message),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (``result`` is in-process only and dropped)."""
        document: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "index": self.index,
            "env_id": self.env_id,
            "target_specs": dict(self.target_specs),
            "success": self.success,
            "met": dict(self.met),
            "steps": self.steps,
            "final_specs": dict(self.final_specs),
            "final_parameters": dict(self.final_parameters),
            "timing": dict(self.timing),
            "tier": dict(self.tier),
        }
        if self.request_id is not None:
            document["request_id"] = self.request_id
        if self.error is not None:
            document["error"] = self.error.to_dict()
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeResponse":
        if not isinstance(data, Mapping):
            raise ValueError(f"a serve response must be an object, got {type(data).__name__}")
        _check_known_fields(data, _RESPONSE_FIELDS, "response")
        error = data.get("error")
        return cls(
            env_id=str(data.get("env_id", "")),
            target_specs=_spec_mapping(data.get("target_specs", {}), "target_specs")
            if data.get("target_specs")
            else {},
            success=bool(data.get("success", False)),
            steps=int(data.get("steps", 0)),
            final_specs=_spec_mapping(data.get("final_specs", {}), "final_specs")
            if data.get("final_specs")
            else {},
            final_parameters=_spec_mapping(
                data.get("final_parameters", {}), "final_parameters"
            )
            if data.get("final_parameters")
            else {},
            met={str(k): bool(v) for k, v in dict(data.get("met", {})).items()},
            index=int(data.get("index", 0)),
            request_id=data.get("request_id"),
            error=ServeError.from_dict(error) if error is not None else None,
            timing={str(k): float(v) for k, v in dict(data.get("timing", {})).items()},
            tier={str(k): int(v) for k, v in dict(data.get("tier", {})).items()},
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "ServeResponse":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"response line is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Request documents (the deploy/serve CLI input files)
# ----------------------------------------------------------------------
_DOCUMENT_FIELDS = ("schema_version", "requests", "env_id", "max_steps")


def _parse_v1_document(document: Mapping[str, Any]) -> List[ServeRequest]:
    _check_known_fields(document, _DOCUMENT_FIELDS, "request document")
    if "schema_version" in document:
        _check_schema_version(document["schema_version"], "request document")
    requests = document["requests"]
    if not isinstance(requests, Sequence) or isinstance(requests, (str, bytes)):
        raise ValueError("'requests' must be a list of request objects")
    if not requests:
        raise ValueError("the request document contains no requests")
    default_env = document.get("env_id")
    default_max_steps = document.get("max_steps")
    parsed: List[ServeRequest] = []
    for position, entry in enumerate(requests):
        try:
            request = ServeRequest.from_dict(entry)
        except ValueError as exc:
            raise ValueError(f"request #{position}: {exc}") from exc
        if request.env_id is None:
            request.env_id = default_env
        if request.max_steps is None and default_max_steps is not None:
            request.max_steps = int(default_max_steps)
        parsed.append(request)
    return parsed


def _parse_legacy_target(
    entry: Any,
    position: int,
    default_env: Optional[str],
    default_max_steps: Optional[int],
) -> ServeRequest:
    if not isinstance(entry, Mapping):
        raise ValueError(f"target #{position} must be an object, got {type(entry).__name__}")
    if "specs" in entry:
        unknown = set(entry) - {"specs", "env", "max_steps"}
        if unknown:
            raise ValueError(
                f"target #{position} has unknown keys {sorted(unknown)} "
                "(expected 'specs', 'env', 'max_steps')"
            )
        specs = entry["specs"]
        if not isinstance(specs, Mapping):
            raise ValueError(f"target #{position}: 'specs' must be an object")
        env_id = entry.get("env", default_env)
        max_steps = entry.get("max_steps", default_max_steps)
    else:
        specs = entry
        env_id = default_env
        max_steps = default_max_steps
    try:
        target = {str(name): float(value) for name, value in specs.items()}
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"target #{position} has a non-numeric specification value: {exc}"
        ) from exc
    if not target:
        raise ValueError(f"target #{position} is empty")
    return ServeRequest(
        target_specs=target,
        env_id=env_id,
        max_steps=int(max_steps) if max_steps is not None else None,
    )


def parse_legacy_document(document: Any) -> List[ServeRequest]:
    """Parse a pre-gateway ``specs.json`` targets document (no warning).

    The deprecation shims (:func:`parse_requests_document`'s legacy branch
    and :mod:`repro.serve.specs`) wrap this with their own warnings.
    """
    default_env: Optional[str] = None
    default_max_steps: Optional[int] = None
    if isinstance(document, Mapping):
        unknown = set(document) - {"targets", "env", "max_steps"}
        if unknown:
            raise ValueError(
                f"unknown top-level keys {sorted(unknown)} "
                "(expected 'targets', 'env', 'max_steps')"
            )
        if "targets" not in document:
            raise ValueError("a spec document object needs a 'targets' list")
        default_env = document.get("env")
        default_max_steps = document.get("max_steps")
        targets: Sequence[Any] = document["targets"]
    elif isinstance(document, Sequence) and not isinstance(document, (str, bytes)):
        targets = document
    else:
        raise ValueError(
            "a spec document must be an object with a 'targets' list or a bare "
            f"list of targets, got {type(document).__name__}"
        )
    if not isinstance(targets, Sequence) or isinstance(targets, (str, bytes)):
        raise ValueError("'targets' must be a list")
    if not targets:
        raise ValueError("the spec document contains no targets")
    return [
        _parse_legacy_target(entry, position, default_env, default_max_steps)
        for position, entry in enumerate(targets)
    ]


def parse_requests_document(document: Any) -> List[ServeRequest]:
    """Parse a request document in either the v1 or the legacy format.

    The canonical shape is an object with a ``requests`` list (each entry a
    :class:`ServeRequest` document) plus optional document-wide ``env_id`` /
    ``max_steps`` defaults and a ``schema_version``.  The pre-gateway
    ``specs.json`` shapes (a ``targets`` object or a bare list of spec
    mappings) still parse but emit a :class:`DeprecationWarning`.
    """
    if isinstance(document, Mapping) and "requests" in document:
        return _parse_v1_document(document)
    warnings.warn(
        "legacy specs.json target documents are deprecated; use a "
        '{"schema_version": 1, "requests": [{"target_specs": {...}}, ...]} '
        "request document instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return parse_legacy_document(document)


def load_requests_document(path: Union[str, Path]) -> List[ServeRequest]:
    """Read and parse a request-document JSON file (v1 or legacy format)."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    return parse_requests_document(document)
