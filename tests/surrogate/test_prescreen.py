"""Surrogate pre-screening: ranking mechanics and the always-exact guarantee."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api.optimizers import resolve_prescreener
from repro.surrogate import (
    SpecSurrogate,
    SurrogateConfig,
    SurrogatePrescreener,
    harvest_corpus,
    save_surrogate,
    train_surrogate,
)

BUDGET = 60
SEED = 11


@pytest.fixture(scope="module")
def warm_setup(tmp_path_factory):
    """An unscreened reference run plus a surrogate trained on its corpus."""
    corpus = tmp_path_factory.mktemp("prescreen") / "corpus"
    env = repro.make_env("opamp-p2s-v0", seed=0, surrogate_dir=corpus)
    optimizer = repro.make_optimizer("random", budget=BUDGET, stop_when_met=False)
    reference = optimizer.optimize(env, seed=SEED)
    config = SurrogateConfig(
        hidden=(32, 32), epochs=200, min_train_points=8, ensemble_size=2
    )
    surrogate, _ = train_surrogate(harvest_corpus(corpus), config=config, seed=0)
    return reference, surrogate


def _exact_specs(parameters):
    env = repro.make_env("opamp-p2s-v0", seed=0)
    netlist = env.benchmark.fresh_netlist()
    env.benchmark.design_space.apply_to_netlist(netlist, parameters)
    result = env.simulator.simulate(netlist)
    return {name: float(value) for name, value in result.specs.items()}


class TestMechanics:
    def test_num_exact_floor_and_ceiling(self):
        surrogate = SpecSurrogate("lna", ["gain"], num_inputs=2)
        prescreener = SurrogatePrescreener(surrogate, top_fraction=0.25, min_exact=4)
        assert prescreener.num_exact(100) == 25
        assert prescreener.num_exact(10) == 4     # floor dominates
        assert prescreener.num_exact(3) == 3      # never more than the population
        assert prescreener.num_exact(13) == 4     # ceil(0.25 * 13) == 4

    def test_top_indices_are_sorted_and_stable_on_ties(self):
        surrogate = SpecSurrogate("lna", ["gain"], num_inputs=2)
        prescreener = SurrogatePrescreener(surrogate, top_fraction=0.5, min_exact=1)
        predicted = np.array([1.0, 3.0, 3.0, 0.0])
        top = prescreener.top_indices(predicted, 4)
        # Stable ranking keeps the first of the tied 3.0s; indices ascend.
        assert top.tolist() == [1, 2]

    def test_constructor_validation(self):
        surrogate = SpecSurrogate("lna", ["gain"], num_inputs=2)
        with pytest.raises(ValueError, match="top_fraction"):
            SurrogatePrescreener(surrogate, top_fraction=0.0)
        with pytest.raises(ValueError, match="min_exact"):
            SurrogatePrescreener(surrogate, min_exact=0)

    def test_untrained_surrogate_is_inactive(self):
        prescreener = SurrogatePrescreener(SpecSurrogate("lna", ["gain"], num_inputs=2))
        assert not prescreener.active
        assert prescreener.matches("lna", 2)
        assert not prescreener.matches("opamp", 2)
        assert not prescreener.matches("lna", 3)


class TestColdParity:
    def test_inactive_prescreener_is_bitwise_transparent(self):
        reference = repro.make_optimizer(
            "random", budget=24, stop_when_met=False
        ).optimize(repro.make_env("opamp-p2s-v0", seed=0), seed=3)
        template = repro.make_env("opamp-p2s-v0", seed=0).benchmark.fresh_netlist()
        cold = SurrogatePrescreener(
            SpecSurrogate(
                template.name, ["gain"], num_inputs=template.parameter_array().size
            )
        )
        screened = repro.make_optimizer(
            "random", budget=24, stop_when_met=False, prescreen=cold
        ).optimize(repro.make_env("opamp-p2s-v0", seed=0), seed=3)
        assert np.array_equal(screened.best_parameters, reference.best_parameters)
        assert screened.best_objective == reference.best_objective
        assert screened.best_specs == reference.best_specs
        assert screened.num_simulations == reference.num_simulations
        assert cold.stats.populations == 0 and cold.stats.bypassed == 24


class TestWarmScreening:
    def test_identical_answer_with_a_fraction_of_the_simulations(self, warm_setup):
        reference, surrogate = warm_setup
        prescreener = SurrogatePrescreener(surrogate, top_fraction=0.25)
        screened = repro.make_optimizer(
            "random", budget=BUDGET, stop_when_met=False, prescreen=prescreener
        ).optimize(repro.make_env("opamp-p2s-v0", seed=0), seed=SEED)
        assert np.array_equal(screened.best_parameters, reference.best_parameters)
        assert screened.best_objective == reference.best_objective
        assert screened.best_specs == reference.best_specs
        assert screened.num_simulations * 3 <= reference.num_simulations
        stats = prescreener.stats
        assert stats.populations == 1 and stats.candidates == BUDGET
        assert stats.exact_verified == screened.num_simulations
        assert stats.surrogate_ranked == BUDGET - stats.exact_verified
        assert screened.metadata["prescreen"]["active"] is True

    def test_final_answer_is_always_exact(self, warm_setup):
        _, surrogate = warm_setup
        prescreener = SurrogatePrescreener(surrogate, top_fraction=0.5)
        result = repro.make_optimizer(
            "genetic", budget=48, stop_when_met=False, prescreen=prescreener
        ).optimize(repro.make_env("opamp-p2s-v0", seed=0), seed=3)
        assert prescreener.stats.populations > 0
        # The reported specs reproduce bitwise under a fresh exact simulator:
        # no surrogate estimate can ever be the returned answer.
        assert result.best_specs == _exact_specs(result.best_parameters)

    def test_foreign_topology_bypasses(self, warm_setup):
        _, surrogate = warm_setup  # trained for the op-amp
        prescreener = SurrogatePrescreener(surrogate, top_fraction=0.25)
        result = repro.make_optimizer(
            "random", budget=12, stop_when_met=False, prescreen=prescreener
        ).optimize(repro.make_env("common_source_lna-p2s-v0", seed=0), seed=2)
        assert prescreener.stats.populations == 0
        assert prescreener.stats.bypassed == 12
        assert result.num_simulations > 0


class TestResolvePrescreener:
    def test_none_and_instance_forms(self):
        assert resolve_prescreener(None) is None
        prescreener = SurrogatePrescreener(SpecSurrogate("lna", ["gain"], num_inputs=2))
        assert resolve_prescreener(prescreener) is prescreener

    def test_path_and_mapping_forms(self, tmp_path, warm_setup):
        _, surrogate = warm_setup
        path = save_surrogate(tmp_path / "model.npz", surrogate)
        from_path = resolve_prescreener(str(path))
        assert from_path.surrogate.circuit == surrogate.circuit
        from_mapping = resolve_prescreener(
            {"surrogate": str(path), "top_fraction": 0.5, "min_exact": 2}
        )
        assert from_mapping.top_fraction == 0.5 and from_mapping.min_exact == 2

    def test_mapping_without_surrogate_key_raises(self):
        with pytest.raises(ValueError, match="surrogate"):
            resolve_prescreener({"top_fraction": 0.5})
