"""The common ``Optimizer`` protocol every sizing method implements.

The paper compares five families of methods — PPO-trained RL policies, a
genetic algorithm, Bayesian optimization, random search, and a supervised
inverse-regression sizer.  Historically each had its own entry point and
signature; the protocol below gives them one shared loop::

    env = repro.make_env("opamp-p2s-v0", seed=0)
    for method in repro.list_optimizers():
        optimizer = repro.make_optimizer(method)
        result = optimizer.optimize(env, budget=200, seed=0)
        print(method, result.num_simulations, result.success)

``optimize`` returns a :class:`repro.baselines.base.OptimizationResult`
(re-exported here) whose ``method`` / ``seed`` / ``budget`` / ``metadata``
fields the adapters fill in, so results from different methods are directly
comparable and serializable via ``result.summary()``.

Budget semantics follow the paper: for the search baselines the budget is a
*simulator-call* budget; for ``"ppo"`` it is a *training-episode* budget and
``num_simulations`` reports the deployment steps only ("the RL row excludes
the one-off training cost").
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.baselines.base import OptimizationResult, OptimizationTrace
from repro.env.circuit_env import CircuitDesignEnv


class OptimizationCallback:
    """Observer hooks invoked during an :meth:`Optimizer.optimize` run.

    Subclass and override any subset; all hooks default to no-ops.  The
    hooks are deliberately coarse so every optimizer family can honour them:
    ``on_evaluation`` fires once per objective evaluation for the search
    methods and once per training update (with the mean episode reward) for
    the RL optimizer.
    """

    def on_start(self, optimizer_id: str, env: CircuitDesignEnv, budget: Optional[int]) -> None:
        """Called once before the first evaluation."""

    def on_evaluation(self, index: int, objective: float, best: float) -> None:
        """Called after each objective evaluation (1-based ``index``)."""

    def on_result(self, result: "OptimizationResult") -> None:
        """Called once with the final result."""


Callbacks = Sequence[OptimizationCallback]


def notify(callbacks: Iterable[OptimizationCallback], hook: str, *args: Any) -> None:
    """Invoke ``hook`` on every callback (missing hooks are skipped)."""
    for callback in callbacks:
        method = getattr(callback, hook, None)
        if method is not None:
            method(*args)


class NotifyingTrace(OptimizationTrace):
    """An :class:`OptimizationTrace` that forwards each record to callbacks."""

    def __init__(self, callbacks: Callbacks = ()) -> None:
        super().__init__()
        self._callbacks = tuple(callbacks)

    def record(self, value: float) -> None:
        """Record one objective evaluation and notify ``on_evaluation``."""
        super().record(value)
        notify(
            self._callbacks, "on_evaluation", len(self.objective_values), value,
            self.best_values[-1],
        )


@runtime_checkable
class Optimizer(Protocol):
    """What every sizing method exposes to the shared comparison loop.

    Implementations also carry an ``id`` attribute with their registry ID.
    """

    def optimize(
        self,
        env: CircuitDesignEnv,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        callbacks: Callbacks = (),
        target_specs: Optional[Mapping[str, float]] = None,
    ) -> OptimizationResult:
        """Run one optimization on ``env`` and return the unified result.

        Parameters
        ----------
        env:
            The design environment; its benchmark/simulator/reward define
            the problem (P2S toward ``target_specs``, or FoM maximization
            when the env uses the FoM reward).
        budget:
            Simulator-call budget (search methods) or training-episode
            budget (RL).  ``None`` uses the method's default.
        seed:
            Seed controlling every random choice of the run; the same
            (env, budget, seed, target) quadruple reproduces the result.
        callbacks:
            :class:`OptimizationCallback` observers.
        target_specs:
            Fixed target specification group.  ``None`` samples one
            deterministically from the environment's spec space (ignored in
            FoM mode).
        """
        ...


def resolve_target(
    env: CircuitDesignEnv,
    target_specs: Optional[Mapping[str, float]],
    seed: Optional[int],
) -> Optional[Dict[str, float]]:
    """The target group an optimize() run should pursue.

    Explicit ``target_specs`` win; otherwise one group is sampled
    deterministically from ``seed`` — the environment's episode state is
    deliberately ignored so the same ``(env id, budget, seed)`` triple
    always optimizes the same target, reset history notwithstanding.
    FoM-mode environments need no target and get ``None``.
    """
    if env.is_fom_mode:
        return None
    if target_specs is not None:
        return {name: float(value) for name, value in dict(target_specs).items()}
    import numpy as np

    return env.benchmark.spec_space.sample(np.random.default_rng(seed))


__all__ = [
    "Callbacks",
    "NotifyingTrace",
    "OptimizationCallback",
    "OptimizationResult",
    "OptimizationTrace",
    "Optimizer",
    "notify",
    "resolve_target",
]
