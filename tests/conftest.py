"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_rf_pa, build_two_stage_opamp
from repro.env import make_opamp_env, make_rf_pa_env
from repro.simulation import OpAmpSimulator, RfPaCoarseSimulator, RfPaFineSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def opamp_benchmark():
    return build_two_stage_opamp()


@pytest.fixture
def rf_pa_benchmark():
    return build_rf_pa()


@pytest.fixture
def opamp_simulator():
    return OpAmpSimulator()


@pytest.fixture
def pa_fine_simulator():
    return RfPaFineSimulator()


@pytest.fixture
def pa_coarse_simulator():
    return RfPaCoarseSimulator()


@pytest.fixture
def opamp_env():
    return make_opamp_env(seed=0)


@pytest.fixture
def rf_pa_env():
    return make_rf_pa_env(seed=0, fidelity="fine")


@pytest.fixture
def rf_pa_coarse_env():
    return make_rf_pa_env(seed=0, fidelity="coarse")
