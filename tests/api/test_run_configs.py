"""Tests for the serializable run configs (EnvConfig/OptimizerConfig/RunConfig)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import EnvConfig, OptimizerConfig, RunConfig, UnknownComponentError


class TestEnvConfig:
    def test_build_applies_params(self):
        config = EnvConfig("opamp-p2s-v0", {"seed": 3, "max_steps": 9})
        env = config.build()
        assert env.max_steps == 9

    def test_unknown_id_fails_at_construction(self):
        with pytest.raises(UnknownComponentError):
            EnvConfig("opamp-p3s-v0")

    def test_from_dict_accepts_bare_string(self):
        assert EnvConfig.from_dict("opamp-p2s-v0") == EnvConfig("opamp-p2s-v0")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown EnvConfig keys"):
            EnvConfig.from_dict({"id": "opamp-p2s-v0", "kwargs": {}})
        with pytest.raises(ValueError, match="requires an 'id'"):
            EnvConfig.from_dict({"params": {}})


class TestOptimizerConfig:
    def test_build_forwards_params(self):
        config = OptimizerConfig("genetic", {"population_size": 6, "budget": 12})
        optimizer = config.build()
        search = optimizer.build_search()
        assert search.config.population_size == 6

    def test_alias_ids_accepted(self):
        assert OptimizerConfig("genetic_algorithm").build().id == "genetic"

    def test_unknown_id_fails_at_construction(self):
        with pytest.raises(UnknownComponentError):
            OptimizerConfig("annealing")


class TestRunConfigSerialization:
    def _config(self) -> RunConfig:
        return RunConfig(
            env=EnvConfig("opamp-p2s-v0", {"seed": 0}),
            optimizer=OptimizerConfig("random"),
            budget=25,
            seed=7,
            target_specs={"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3},
            name="unit",
        )

    def test_dict_round_trip(self):
        config = self._config()
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = self._config()
        text = config.to_json()
        json.loads(text)  # valid JSON document
        assert RunConfig.from_json(text) == config

    def test_file_round_trip(self, tmp_path):
        config = self._config()
        path = tmp_path / "run.json"
        config.save(path)
        assert RunConfig.load(path) == config

    def test_shorthand_env_and_optimizer(self):
        config = RunConfig(env="opamp-p2s-v0", optimizer="random", budget=5)
        assert config.env == EnvConfig("opamp-p2s-v0")
        assert config.optimizer == OptimizerConfig("random")

    def test_rejects_unknown_keys_and_bad_budget(self):
        with pytest.raises(ValueError, match="unknown RunConfig keys"):
            RunConfig.from_dict({"env": "opamp-p2s-v0", "optimizer": "random", "episodes": 5})
        with pytest.raises(ValueError, match="requires keys"):
            RunConfig.from_dict({"env": "opamp-p2s-v0"})
        with pytest.raises(ValueError, match="budget"):
            RunConfig(env="opamp-p2s-v0", optimizer="random", budget=0)


class TestRunConfigReproducibility:
    def test_same_config_reproduces_identical_run(self):
        config = RunConfig(env={"id": "opamp-p2s-v0", "params": {"seed": 0}},
                           optimizer="random", budget=25, seed=7)
        clone = RunConfig.from_json(config.to_json())
        first, second = config.run(), clone.run()
        assert first.best_objective == second.best_objective
        assert first.success == second.success
        assert first.num_simulations == second.num_simulations
        np.testing.assert_array_equal(first.best_parameters, second.best_parameters)
        assert first.trace.objective_values == second.trace.objective_values

    def test_different_seeds_sample_different_targets(self):
        base = {"env": "opamp-p2s-v0", "optimizer": "random", "budget": 6}
        result_a = RunConfig.from_dict({**base, "seed": 1}).run()
        result_b = RunConfig.from_dict({**base, "seed": 2}).run()
        assert result_a.metadata["target_specs"] != result_b.metadata["target_specs"]

    def test_result_summary_is_json_serializable(self):
        result = RunConfig(env="opamp-p2s-v0", optimizer="random", budget=5, seed=0).run()
        digest = json.loads(json.dumps(result.summary()))
        assert digest["method"] == "random"
        assert digest["budget"] == 5
        assert isinstance(digest["best_parameters"], list)
