"""Transfer learning: across simulator fidelities and across topologies.

Section 3 ("Transfer Learning") of the paper: harmonic-balance simulation of
the RF PA is too slow to sit inside the RL training loop, so the agent is
trained against a fast-but-rough DC characterization whose rewards track the
HB rewards within roughly ±10 %, and the *learned policy* is then deployed
against the accurate HB simulator.  This module packages that workflow:

* :func:`reward_fidelity_report` quantifies the coarse-vs-fine reward error
  over random designs (the paper's ±10 % claim);
* :class:`TransferLearningWorkflow` trains a policy on the coarse
  environment, optionally fine-tunes it briefly on the fine environment, and
  evaluates deployment accuracy on the fine environment;
* :func:`transfer_policy_parameters` is the *cross-topology* primitive: the
  GNN branch of the paper's policy operates on per-node features whose
  dimension is topology-independent, so its weights — the "underlying
  physics" extractor — carry over between circuits even when the action and
  specification heads must be re-initialized.  The topology-zoo transfer
  matrix (:mod:`repro.experiments.transfer_matrix`) is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.agents.deployment import DeploymentEvaluation, evaluate_deployment
from repro.agents.policy import ActorCriticPolicy
from repro.agents.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.env.circuit_env import CircuitDesignEnv
from repro.env.reward import P2SReward
from repro.nn.module import Module


def transfer_policy_parameters(source: Module, target: Module) -> List[str]:
    """Copy every parameter whose dotted name *and* shape match.

    Between two :class:`ActorCriticPolicy` instances built for different
    circuit topologies this transfers the full GNN branch (its layer shapes
    depend only on the topology-independent node-feature dimension) and any
    hidden layers whose widths coincide, while the input-size-dependent
    layers (spec encoder input, action/value heads) keep their fresh
    initialization.  Returns the names of the copied parameters, so callers
    can report how much of the network transferred.
    """
    source_state = source.state_dict()
    copied: List[str] = []
    for name, parameter in target.named_parameters():
        value = source_state.get(name)
        if value is not None and value.shape == parameter.data.shape:
            parameter.data = value.copy()
            copied.append(name)
    return copied


@dataclass
class RewardFidelityReport:
    """Statistics of the coarse-simulator reward error versus the fine one."""

    mean_abs_error: float
    p90_abs_error: float
    max_abs_error: float
    mean_abs_relative_error: float
    num_samples: int

    @property
    def within_ten_percent_fraction(self) -> float:
        """Convenience flag used by the transfer-learning bench."""
        return float(self.mean_abs_relative_error <= 0.10)


def reward_fidelity_report(
    coarse_env: CircuitDesignEnv,
    fine_env: CircuitDesignEnv,
    num_samples: int = 200,
    seed: Optional[int] = None,
) -> RewardFidelityReport:
    """Compare Eq. (1) rewards computed from coarse vs fine simulations.

    Random designs and random targets are sampled; for each pair the reward
    is evaluated under both simulators and the absolute and relative errors
    are aggregated.  Relative errors are measured on the raw (pre-bonus)
    normalized-difference reward, mirroring the paper's "approximated rewards
    are often in ±10 % error range" statement.
    """
    if coarse_env.benchmark.name != fine_env.benchmark.name:
        raise ValueError("coarse and fine environments must wrap the same circuit")
    rng = np.random.default_rng(seed)
    benchmark = fine_env.benchmark
    spec_space = benchmark.spec_space
    reward_fn = P2SReward(spec_space)

    abs_errors = []
    rel_errors = []
    for _ in range(num_samples):
        parameters = benchmark.design_space.sample(rng)
        target = spec_space.sample(rng)
        netlist = benchmark.fresh_netlist()
        benchmark.design_space.apply_to_netlist(netlist, parameters)
        fine_result = fine_env.simulator.simulate(netlist)
        coarse_result = coarse_env.simulator.simulate(netlist)
        fine_reward = float(spec_space.normalized_errors(fine_result.specs, target).sum())
        coarse_reward = float(spec_space.normalized_errors(coarse_result.specs, target).sum())
        error = abs(fine_reward - coarse_reward)
        abs_errors.append(error)
        if abs(fine_reward) > 1e-6:
            rel_errors.append(error / abs(fine_reward))
    abs_errors = np.array(abs_errors)
    rel_errors = np.array(rel_errors) if rel_errors else np.array([0.0])
    return RewardFidelityReport(
        mean_abs_error=float(abs_errors.mean()),
        p90_abs_error=float(np.percentile(abs_errors, 90)),
        max_abs_error=float(abs_errors.max()),
        mean_abs_relative_error=float(rel_errors.mean()),
        num_samples=num_samples,
    )


@dataclass
class TransferLearningResult:
    """Outcome of the coarse-train / fine-deploy workflow."""

    coarse_history: TrainingHistory
    fine_tune_history: Optional[TrainingHistory]
    coarse_accuracy: float
    fine_accuracy: float
    fine_evaluation: DeploymentEvaluation


class TransferLearningWorkflow:
    """Train on the coarse environment, deploy (and evaluate) on the fine one.

    Parameters
    ----------
    coarse_env, fine_env:
        Two environments wrapping the *same* benchmark with different
        simulator fidelities.
    policy:
        The actor-critic policy to train; the same parameter set is reused on
        the fine environment (the networks only see specs and netlist state,
        so they transfer directly).
    config:
        PPO hyper-parameters shared by both phases.
    """

    def __init__(
        self,
        coarse_env: CircuitDesignEnv,
        fine_env: CircuitDesignEnv,
        policy: ActorCriticPolicy,
        config: Optional[PPOConfig] = None,
        seed: Optional[int] = None,
        method_name: str = "gnn_fc_transfer",
    ) -> None:
        if coarse_env.benchmark.name != fine_env.benchmark.name:
            raise ValueError("coarse and fine environments must wrap the same circuit")
        self.coarse_env = coarse_env
        self.fine_env = fine_env
        self.policy = policy
        self.config = config or PPOConfig()
        self.seed = seed
        self.method_name = method_name

    def run(
        self,
        coarse_episodes: int,
        fine_tune_episodes: int = 0,
        episodes_per_update: int = 8,
        eval_targets: int = 50,
        eval_seed: int = 2024,
    ) -> TransferLearningResult:
        """Execute the full workflow and return accuracies on both fidelities."""
        coarse_trainer = PPOTrainer(
            self.coarse_env, self.policy, config=self.config, seed=self.seed,
            method_name=f"{self.method_name}_coarse",
        )
        coarse_history = coarse_trainer.train(
            total_episodes=coarse_episodes, episodes_per_update=episodes_per_update
        )

        fine_history: Optional[TrainingHistory] = None
        if fine_tune_episodes > 0:
            fine_trainer = PPOTrainer(
                self.fine_env, self.policy, config=self.config, seed=self.seed,
                method_name=f"{self.method_name}_fine_tune",
            )
            fine_history = fine_trainer.train(
                total_episodes=fine_tune_episodes, episodes_per_update=episodes_per_update
            )

        coarse_eval = evaluate_deployment(
            self.coarse_env, self.policy, num_targets=eval_targets, seed=eval_seed
        )
        fine_eval = evaluate_deployment(
            self.fine_env, self.policy, num_targets=eval_targets, seed=eval_seed
        )
        return TransferLearningResult(
            coarse_history=coarse_history,
            fine_tune_history=fine_history,
            coarse_accuracy=coarse_eval.accuracy,
            fine_accuracy=fine_eval.accuracy,
            fine_evaluation=fine_eval,
        )
