"""Circuit-topology graphs and node-feature encodings (Sec. 3 of the paper)."""

from repro.graph.builder import (
    PARTIAL_TOPOLOGY_EXCLUDES,
    build_full_graph,
    build_graph,
    build_partial_graph,
)
from repro.graph.circuit_graph import CircuitGraph
from repro.graph.features import (
    PARAMETER_SCALES,
    PARAMETER_SLOTS,
    device_feature_vector,
    device_parameter_vector,
    feature_dimension,
    node_type_one_hot,
    static_feature_vector,
)

__all__ = [
    "CircuitGraph",
    "PARAMETER_SCALES",
    "PARAMETER_SLOTS",
    "PARTIAL_TOPOLOGY_EXCLUDES",
    "build_full_graph",
    "build_graph",
    "build_partial_graph",
    "device_feature_vector",
    "device_parameter_vector",
    "feature_dimension",
    "node_type_one_hot",
    "static_feature_vector",
]
