"""Semantics of the yield-aware Eq. (1) reward over corner-swept specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.specs import Objective, Specification, SpecificationSpace
from repro.corners import Corner, CornerSet, TYPICAL, YieldP2SReward
from repro.env.reward import GOAL_BONUS, P2SReward

SPEC_SPACE = SpecificationSpace(
    [
        Specification("gain", 100.0, 1000.0, Objective.MAXIMIZE),
        Specification("power", 1e-4, 1e-2, Objective.MINIMIZE, log_uniform=True),
    ]
)

TWO_CORNERS = CornerSet(
    corners=(TYPICAL, Corner(name="hot", temperature_c=125.0)),
)

TARGETS = {"gain": 400.0, "power": 2e-3}


def _measured(gain_typ, power_typ, gain_hot, power_hot):
    """A corner-swept measurement dict (plain keys = worst-corner values)."""
    return {
        "gain": min(gain_typ, gain_hot),
        "power": max(power_typ, power_hot),
        "gain@typical": gain_typ,
        "power@typical": power_typ,
        "gain@hot": gain_hot,
        "power@hot": power_hot,
    }


class TestCornerPath:
    def test_goal_bonus_requires_every_corner(self):
        reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        both_met = reward(_measured(500.0, 1e-3, 450.0, 1.5e-3), TARGETS)
        assert both_met.reward == GOAL_BONUS
        assert both_met.goal_reached
        one_corner_misses = reward(_measured(500.0, 1e-3, 300.0, 1.5e-3), TARGETS)
        assert not one_corner_misses.goal_reached
        assert one_corner_misses.reward < 0.0

    def test_shaped_reward_is_the_weighted_corner_mixture(self):
        heavy_hot = CornerSet(
            corners=TWO_CORNERS.corners, weights=(1.0, 3.0)
        )
        uniform = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        weighted = YieldP2SReward(SPEC_SPACE, corner_set=heavy_hot)
        # The hot corner misses both specs; weighting it more must hurt more.
        measured = _measured(500.0, 1e-3, 300.0, 3e-3)
        assert weighted(measured, TARGETS).reward < uniform(measured, TARGETS).reward
        # And the mixture is exactly the per-corner P2S sums re-weighted.
        nominal = P2SReward(SPEC_SPACE)
        typical_sum = nominal(
            {"gain": 500.0, "power": 1e-3}, TARGETS
        ).normalized_errors
        hot_sum = nominal({"gain": 300.0, "power": 3e-3}, TARGETS).normalized_errors
        expected = 0.25 * sum(typical_sum.values()) + 0.75 * sum(hot_sum.values())
        assert np.isclose(weighted(measured, TARGETS).reward, expected)

    def test_normalized_errors_are_the_worst_corner(self):
        reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        outcome = reward(_measured(500.0, 1e-3, 300.0, 3e-3), TARGETS)
        nominal = P2SReward(SPEC_SPACE)
        worst = nominal({"gain": 300.0, "power": 3e-3}, TARGETS)
        assert outcome.normalized_errors == worst.normalized_errors
        assert outcome.met_fraction == worst.met_fraction

    def test_invalid_result_takes_the_penalty_path(self):
        reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        outcome = reward(_measured(500.0, 1e-3, 450.0, 1.5e-3), TARGETS, valid=False)
        assert outcome.reward == reward.invalid_penalty
        assert not outcome.goal_reached
        assert outcome.met_fraction == 0.0

    def test_non_finite_corner_value_is_invalid_in_disguise(self):
        reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        measured = _measured(500.0, 1e-3, float("nan"), 1.5e-3)
        outcome = reward(measured, TARGETS)
        assert outcome.reward == reward.invalid_penalty
        assert not outcome.goal_reached


class TestNominalEquivalence:
    def test_single_typical_corner_equals_plain_p2s(self):
        single = CornerSet(corners=(TYPICAL,))
        yield_reward = YieldP2SReward(SPEC_SPACE, corner_set=single)
        nominal = P2SReward(SPEC_SPACE)
        for gain, power in [(500.0, 1e-3), (300.0, 3e-3), (401.0, 2.1e-3)]:
            measured = {
                "gain": gain, "power": power,
                "gain@typical": gain, "power@typical": power,
            }
            ours = yield_reward(measured, TARGETS)
            theirs = nominal({"gain": gain, "power": power}, TARGETS)
            assert ours.reward == theirs.reward
            assert ours.goal_reached == theirs.goal_reached
            assert ours.normalized_errors == theirs.normalized_errors
            assert ours.met_fraction == theirs.met_fraction

    def test_missing_corner_keys_fall_back_to_nominal_scoring(self):
        """A plain (nominal) measurement dict is scored exactly like P2S."""
        yield_reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        nominal = P2SReward(SPEC_SPACE)
        measured = {"gain": 500.0, "power": 1e-3}
        assert yield_reward(measured, TARGETS) == nominal(measured, TARGETS)

    def test_partial_corner_keys_also_fall_back(self):
        yield_reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        measured = {"gain": 500.0, "power": 1e-3, "gain@typical": 500.0}
        outcome = yield_reward(measured, TARGETS)
        assert outcome.reward == GOAL_BONUS  # nominal path: both specs met

    def test_missing_target_still_raises(self):
        yield_reward = YieldP2SReward(SPEC_SPACE, corner_set=TWO_CORNERS)
        with pytest.raises(KeyError):
            yield_reward(_measured(500.0, 1e-3, 450.0, 1.5e-3), {"gain": 400.0})
