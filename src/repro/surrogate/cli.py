"""``python -m repro.run surrogate`` — train and evaluate surrogate models.

Usage::

    python -m repro.run surrogate train CORPUS_DIR MODEL.npz [--circuit NAME]
    python -m repro.run surrogate eval MODEL.npz CORPUS_DIR [--json]

``train`` harvests the (parameters -> specs) corpus a
:class:`~repro.parallel.DiskSimulationCache` / :class:`~repro.surrogate.TieredSimulator`
directory accumulated, fits the ensemble, calibrates the trust gate on
held-out points, and writes a checkpoint servable by ``deploy --surrogate``
and by the baselines' ``prescreen=`` knob.  ``eval`` re-harvests a corpus
(typically fresh points the model never saw) and reports prediction error
and gate acceptance on it.

Exit status: 0 on success, 2 on bad input (missing/empty corpus, unreadable
model, no trainable entries).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.surrogate.dataset import corpus_circuits, harvest_corpus
from repro.surrogate.model import SurrogateConfig
from repro.surrogate.trainer import (
    SurrogateError,
    load_surrogate,
    save_surrogate,
    train_surrogate,
)


def build_surrogate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run surrogate",
        description="Train or evaluate a learned surrogate simulation tier.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="fit a surrogate on a harvested corpus")
    train.add_argument("corpus", help="simulation-cache directory to harvest")
    train.add_argument("model", help="output checkpoint path (.npz)")
    train.add_argument("--circuit", default=None,
                       help="topology to harvest when the corpus mixes several")
    train.add_argument("--seed", type=int, default=0, help="training seed (default 0)")
    train.add_argument("--epochs", type=int, default=None,
                       help="full-batch Adam epochs per ensemble member")
    train.add_argument("--hidden", type=int, nargs="+", default=None, metavar="WIDTH",
                       help="hidden layer widths (default 64 64)")
    train.add_argument("--ensemble", type=int, default=None, dest="ensemble",
                       help="ensemble members (default 3)")
    train.add_argument("--tolerance", type=float, default=None,
                       help="trust-gate error tolerance in standardized spec units")
    train.add_argument("--json", action="store_true",
                       help="print the training report as JSON")

    evaluate = commands.add_parser("eval", help="score a trained surrogate on a corpus")
    evaluate.add_argument("model", help="surrogate checkpoint path (.npz)")
    evaluate.add_argument("corpus", help="simulation-cache directory to score against")
    evaluate.add_argument("--json", action="store_true",
                          help="print the evaluation report as JSON")
    return parser


def _build_config(args: argparse.Namespace) -> SurrogateConfig:
    config = SurrogateConfig()
    if args.epochs is not None:
        config.epochs = int(args.epochs)
    if args.hidden is not None:
        config.hidden = tuple(int(width) for width in args.hidden)
    if args.ensemble is not None:
        config.ensemble_size = int(args.ensemble)
    if args.tolerance is not None:
        config.trust_tolerance = float(args.tolerance)
    return SurrogateConfig(**config.to_dict())  # re-validate the overrides


def _main_train(args: argparse.Namespace) -> int:
    try:
        dataset = harvest_corpus(args.corpus, circuit=args.circuit)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if len(dataset) < 2:
        inventory = corpus_circuits(args.corpus)
        listing = ", ".join(f"{k} ({v})" for k, v in sorted(inventory.items())) or "nothing"
        print(
            f"error: corpus {args.corpus!r} has {len(dataset)} trainable entries "
            f"(harvestable: {listing}); run more exact simulations into it first",
            file=sys.stderr,
        )
        return 2
    try:
        config = _build_config(args)
        surrogate, report = train_surrogate(dataset, config=config, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    save_surrogate(args.model, surrogate, extra={"train_report": report.to_dict()})
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        gate = "rejects everything (keep growing the corpus)"
        if report.threshold is not None:
            gate = (
                f"threshold {report.threshold:.4g} "
                f"({report.val_accept_rate:.0%} of held-out points accepted)"
            )
        print(
            f"trained {dataset.circuit!r} surrogate on {report.num_train} points "
            f"({report.num_val} held out) in {report.epochs} epochs"
        )
        print(
            f"held-out error mean {report.val_error_mean:.4g} / "
            f"max {report.val_error_max:.4g} (standardized) | trust gate: {gate}"
        )
        print(f"wrote {args.model}")
    return 0


def _main_eval(args: argparse.Namespace) -> int:
    try:
        surrogate = load_surrogate(args.model)
        dataset = harvest_corpus(args.corpus, circuit=surrogate.circuit)
    except (OSError, ValueError, SurrogateError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if len(dataset) == 0:
        print(
            f"error: corpus {args.corpus!r} holds no entries for "
            f"circuit {surrogate.circuit!r}",
            file=sys.stderr,
        )
        return 2
    if dataset.spec_names != surrogate.spec_names or dataset.num_inputs != surrogate.num_inputs:
        print(
            f"error: corpus layout ({dataset.num_inputs} inputs, specs "
            f"{list(dataset.spec_names)}) does not match the model "
            f"({surrogate.num_inputs} inputs, specs {list(surrogate.spec_names)})",
            file=sys.stderr,
        )
        return 2
    stacked = surrogate.predict_standardized(dataset.parameters)
    target_z = (dataset.specs - surrogate.output_mean) / surrogate.output_std
    errors = np.abs(stacked.mean(axis=0) - target_z).max(axis=1)
    disagreement = stacked.std(axis=0).max(axis=-1)
    accepted = surrogate.trusted(disagreement)
    report = {
        "circuit": surrogate.circuit,
        "num_points": len(dataset),
        "error_mean": float(errors.mean()),
        "error_max": float(errors.max()),
        "accept_rate": float(accepted.mean()),
        "accepted_error_max": float(errors[accepted].max()) if accepted.any() else None,
        "threshold": surrogate.gate.threshold,
        "corpus": dataset.report.to_dict(),
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        accepted_line = "gate rejects every point"
        if accepted.any():
            accepted_line = (
                f"gate accepts {accepted.mean():.0%} "
                f"(worst accepted error {errors[accepted].max():.4g})"
            )
        print(
            f"{surrogate.circuit!r} surrogate on {len(dataset)} corpus points: "
            f"error mean {errors.mean():.4g} / max {errors.max():.4g} (standardized)"
        )
        print(accepted_line)
    return 0


def main_surrogate(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_surrogate_parser()
    args = parser.parse_args(argv)
    if args.command == "train":
        return _main_train(args)
    return _main_eval(args)
