"""Folded-cascode op-amp performance evaluator.

Same role (and same calibrated square-law device model) as
:mod:`repro.simulation.opamp_sim`, for the folded-cascode topology of
:mod:`repro.circuits.library.folded_cascode`:

1. **DC**: the tail bias fixes the input-pair current through ``M11`` and the
   PMOS source bias fixes the folding-branch currents through ``M3``/``M4``;
   the output-branch current is their difference — over-sizing the tail
   against the sources starves the cascode and invalidates the design, the
   topology's characteristic failure mode.
2. **AC**: single-stage gain ``gm1 · (R_up ‖ R_down)`` with both cascoded
   output resistances, unity-gain bandwidth ``gm1 / (2π C_L)`` (the load
   capacitor is the compensation), and phase margin from the non-dominant
   pole at the folding node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.netlist import Netlist
from repro.simulation.base import SimulationResult
from repro.simulation.mosfet import MosfetModel
from repro.simulation.opamp_sim import _parallel
from repro.simulation.technology import CMOS_45NM, CmosTechnology

#: PMOS devices of the folded-cascode netlist (the rest are NMOS).
_PMOS_DEVICES = ("M3", "M4", "M5", "M6")


@dataclass
class FoldedCascodeOperatingPoint:
    """Intermediate analog quantities exposed for debugging and tests."""

    tail_current: float
    source_current: float
    output_branch_current: float
    gm1: float
    output_resistance: float
    gain: float
    dominant_pole_hz: float
    fold_pole_hz: float
    unity_gain_bandwidth_hz: float
    phase_margin_deg: float
    power_w: float


class FoldedCascodeSimulator:
    """Evaluate the folded-cascode netlist into its four specifications."""

    name = "folded_cascode_analytic"

    def __init__(
        self,
        technology: CmosTechnology = CMOS_45NM,
        bias_overhead_current: float = 2e-6,
    ) -> None:
        self.technology = technology
        #: Fixed bias-generation overhead added to the supply current (A).
        self.bias_overhead_current = bias_overhead_current

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Return gain, bandwidth (Hz), phase margin (deg) and power (W)."""
        op = self.operating_point(netlist)
        valid = (
            op.tail_current > 0.0
            and op.output_branch_current > 0.0
            and op.gain > 1.0
        )
        specs = {
            "gain": float(op.gain),
            "bandwidth": float(op.unity_gain_bandwidth_hz),
            "phase_margin": float(op.phase_margin_deg),
            "power": float(op.power_w),
        }
        details = {
            "tail_current": op.tail_current,
            "source_current": op.source_current,
            "output_branch_current": op.output_branch_current,
            "gm1": op.gm1,
            "output_resistance": op.output_resistance,
            "dominant_pole_hz": op.dominant_pole_hz,
            "fold_pole_hz": op.fold_pole_hz,
        }
        return SimulationResult(specs=specs, details=details, valid=valid)

    def operating_point(self, netlist: Netlist) -> FoldedCascodeOperatingPoint:
        """Compute bias currents, small-signal parameters and poles."""
        tech = self.technology
        models = {
            name: MosfetModel(
                tech,
                "pmos" if name in _PMOS_DEVICES else "nmos",
                netlist.get_parameter(name, "width"),
                netlist.get_parameter(name, "fingers"),
            )
            for name in (
                "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10", "M11",
            )
        }
        supply_voltage = netlist.get_parameter("VP", "voltage")
        tail_bias = netlist.get_parameter("VBIASN", "voltage")
        source_bias = netlist.get_parameter("VBIASP", "voltage")
        load_cap = netlist.get_parameter("CL", "value")

        # --- DC bias ---------------------------------------------------
        tail_current = models["M11"].saturation_current(tail_bias - tech.vth_n)
        source_overdrive = (supply_voltage - source_bias) - tech.vth_p
        source_current = models["M3"].saturation_current(source_overdrive)
        branch_current = tail_current / 2.0
        output_current = source_current - branch_current
        power = supply_voltage * (
            tail_current + 2.0 * source_current + self.bias_overhead_current
        )

        if output_current <= 0.0:
            # Folding branch starved: no quiescent current in the cascode.
            return FoldedCascodeOperatingPoint(
                tail_current=tail_current,
                source_current=source_current,
                output_branch_current=output_current,
                gm1=0.0, output_resistance=0.0, gain=0.0,
                dominant_pole_hz=0.0, fold_pole_hz=0.0,
                unity_gain_bandwidth_hz=0.0, phase_margin_deg=0.0,
                power_w=power,
            )

        # --- Small signal ----------------------------------------------
        gm1 = models["M1"].gm_at_current(branch_current)
        # Looking up from the output through the PMOS cascode M6: its source
        # sees the PMOS current source in parallel with the input device.
        fold_resistance = _parallel(
            models["M4"].ro_at_current(source_current),
            models["M2"].ro_at_current(branch_current),
        )
        r_up = (
            models["M6"].gm_at_current(output_current)
            * models["M6"].ro_at_current(output_current)
            * fold_resistance
        )
        # Looking down through the NMOS cascode M8 into the mirror sink M10.
        r_down = (
            models["M8"].gm_at_current(output_current)
            * models["M8"].ro_at_current(output_current)
            * models["M10"].ro_at_current(output_current)
        )
        output_resistance = _parallel(r_up, r_down)
        gain = gm1 * output_resistance if math.isfinite(output_resistance) else 0.0

        # --- Frequency response ----------------------------------------
        total_load = load_cap + 20e-15
        dominant_pole = (
            1.0 / (2.0 * math.pi * output_resistance * total_load)
            if output_resistance > 0.0
            else 0.0
        )
        unity_gain_bandwidth = gm1 / (2.0 * math.pi * total_load)
        # Non-dominant pole at the folding node: the cascode's 1/gm6 input
        # resistance against the parasitics of the three connected drains.
        fold_cap = models["M6"].gate_capacitance() + 10e-15
        gm6 = models["M6"].gm_at_current(output_current)
        fold_pole = gm6 / (2.0 * math.pi * fold_cap) if fold_cap > 0.0 else 0.0

        phase_margin = self._phase_margin(
            unity_gain_bandwidth, dominant_pole, fold_pole, dc_gain=gain
        )
        return FoldedCascodeOperatingPoint(
            tail_current=tail_current,
            source_current=source_current,
            output_branch_current=output_current,
            gm1=gm1,
            output_resistance=output_resistance,
            gain=gain,
            dominant_pole_hz=dominant_pole,
            fold_pole_hz=fold_pole,
            unity_gain_bandwidth_hz=unity_gain_bandwidth,
            phase_margin_deg=phase_margin,
            power_w=power,
        )

    @staticmethod
    def _phase_margin(
        unity_freq: float, dominant_pole: float, fold_pole: float, dc_gain: float
    ) -> float:
        """Phase margin (degrees) of the two-pole (no zero) response."""
        if unity_freq <= 0.0 or dc_gain <= 1.0 or dominant_pole <= 0.0:
            return 0.0
        phase = -math.degrees(math.atan2(unity_freq, dominant_pole))
        if fold_pole > 0.0:
            phase -= math.degrees(math.atan2(unity_freq, fold_pole))
        margin = 180.0 + phase
        return float(min(max(margin, 0.0), 180.0))
