"""PVT corner sweeps: corner-lane batched evaluation and yield-aware rewards.

The subsystem has three layers (see ``docs/corners.md`` for the guide):

* :mod:`repro.corners.model` — :class:`Corner` / :class:`CornerSet` over
  the behavioural technology model (±10 % threshold/mobility process
  scaling, −40/27/125 °C through the MOSFET temperature model), with
  :func:`default_corner_set` as the standard five-corner sweep;
* :mod:`repro.corners.simulator` — :class:`CornerSimulator`, a drop-in
  :class:`~repro.simulation.base.CircuitSimulator` that evaluates all K
  corners per call, riding the compiled kernel/batched-MNA path as extra
  batch lanes where available (bitwise identical to the sequential
  per-corner loop);
* :mod:`repro.corners.reward` — :class:`YieldP2SReward`, worst-corner
  Eq. (1) satisfaction with configurable corner weighting.

The ``*-corners-v0`` catalog environments wire these together; the
Monte-Carlo yield report lives in :mod:`repro.experiments.yield_report`.
"""

from repro.corners.model import (
    Corner,
    CornerSet,
    TYPICAL,
    default_corner_set,
)
from repro.corners.reward import YieldP2SReward
from repro.corners.simulator import (
    CornerSimulator,
    clone_simulator_with_technology,
)

__all__ = [
    "Corner",
    "CornerSet",
    "CornerSimulator",
    "TYPICAL",
    "YieldP2SReward",
    "clone_simulator_with_technology",
    "default_corner_set",
]
