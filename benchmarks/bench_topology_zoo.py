"""Topology zoo: per-topology episode throughput, cached vs uncached.

Every zoo circuit rides the same environment/simulator stack, so its inner
loop — one simulation plus bookkeeping per step — should run at the same
order of throughput as the original benchmarks, and the shared
:class:`repro.parallel.SimulationCache` should serve repeated design points
(shared center resets, revisited grid points) without re-simulating.  This
bench records, per topology, raw random-walk episode throughput without a
cache and with one, plus the cache hit-rate, so the benchmark JSON artifact
tracks every workload from the day it registers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro

#: Every P2S workload: the paper's op-amp plus the three zoo circuits.
ZOO_ENV_IDS = sorted(
    env_id for env_id in repro.list_envs() if env_id.endswith("-p2s-v0")
)

#: Episodes per timed measurement (random-action walks, no policy forward, so
#: the measured quantity is the environment/simulation inner loop itself).
EPISODES = 20

MAX_STEPS = 12


def _episode_throughput(env_id: str, cache_size, seed: int = 0):
    env = repro.make_env(env_id, seed=seed, max_steps=MAX_STEPS, cache_size=cache_size)
    rng = np.random.default_rng(seed)
    steps = 0
    start = time.perf_counter()
    for _ in range(EPISODES):
        env.reset()
        done = False
        while not done:
            _, _, done, _ = env.step(env.action_space.sample(rng))
            steps += 1
    elapsed = time.perf_counter() - start
    stats = env.simulator.stats if cache_size is not None else None
    return steps / elapsed, stats


@pytest.mark.parametrize("env_id", ZOO_ENV_IDS)
def test_topology_episode_throughput(benchmark, env_id):
    """Uncached vs cached episode stepping for one zoo workload."""

    def run():
        uncached, _ = _episode_throughput(env_id, cache_size=None)
        cached, stats = _episode_throughput(env_id, cache_size=1024)
        return uncached, cached, stats

    uncached, cached, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "env_id": env_id,
            "episodes": EPISODES,
            "max_steps": MAX_STEPS,
            "uncached_steps_per_s": round(uncached, 1),
            "cached_steps_per_s": round(cached, 1),
            "cache_hit_rate": round(stats.hit_rate, 4),
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
        }
    )
    # Random walks revisit the shared center reset plus retraced grid points;
    # the cache must serve a visible fraction of lookups and must never make
    # the loop pathologically slower (hit cost ≪ one analytic simulation).
    assert stats.hits > 0
    assert cached >= 0.5 * uncached


def test_zoo_simulators_stay_fast(benchmark):
    """One simulate() call per zoo topology stays in the sub-millisecond
    regime the RL loop is built around (the 'tens of milliseconds' Spectre
    substitute of the paper, scaled to this pure-python substrate)."""
    builders = {
        env_id: repro.make_env(env_id, seed=0) for env_id in ZOO_ENV_IDS
    }

    def run():
        timings = {}
        for env_id, env in builders.items():
            netlist = env.benchmark.fresh_netlist()
            start = time.perf_counter()
            for _ in range(50):
                env.simulator.simulate(netlist)
            timings[env_id] = (time.perf_counter() - start) / 50
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    for env_id, seconds in timings.items():
        benchmark.extra_info[f"{env_id}_simulate_us"] = round(seconds * 1e6, 1)
        assert seconds < 5e-3, f"{env_id} simulate() too slow: {seconds * 1e3:.2f} ms"
