"""``repro.api`` — the unified front door to the whole codebase.

Three ideas, one import::

    import repro

    # 1. String-ID component registry with discovery
    env = repro.make_env("opamp-p2s-v0", seed=0)
    policy = repro.make_policy("gcn_fc", env)
    repro.list_envs(), repro.list_policies(), repro.list_optimizers()

    # 2. One Optimizer protocol for all five method families
    optimizer = repro.make_optimizer("ppo")          # or genetic/bayesian/random/supervised
    result = optimizer.optimize(env, budget=200, seed=0)

    # 3. Serializable run configs (JSON round-trip == identical run)
    config = repro.RunConfig(env="opamp-p2s-v0", optimizer="random", budget=40, seed=7)
    same_result = repro.RunConfig.from_json(config.to_json()).run()

New components register with the same decorators the built-ins use
(:func:`register_env`, :func:`register_policy`, :func:`register_optimizer`).
"""

from repro.api.catalog import (
    ENVS,
    OPTIMIZERS,
    POLICIES,
    describe_components,
    list_envs,
    list_optimizers,
    list_policies,
    make_env,
    make_optimizer,
    make_policy,
    register_env,
    register_optimizer,
    register_policy,
    vectorizable,
)
from repro.api.configs import EnvConfig, OptimizerConfig, RunConfig
from repro.api.optimizers import (
    BayesianOptimizer,
    GeneticOptimizer,
    PPOOptimizer,
    RandomSearchOptimizer,
    SupervisedOptimizer,
    build_problem,
)
from repro.api.protocol import (
    NotifyingTrace,
    OptimizationCallback,
    OptimizationResult,
    OptimizationTrace,
    Optimizer,
)
from repro.api.registry import Registry, RegistryEntry, UnknownComponentError
from repro.api.seeding import seed_everything, seed_legacy_globals

__all__ = [
    "BayesianOptimizer",
    "ENVS",
    "EnvConfig",
    "GeneticOptimizer",
    "NotifyingTrace",
    "OPTIMIZERS",
    "OptimizationCallback",
    "OptimizationResult",
    "OptimizationTrace",
    "Optimizer",
    "OptimizerConfig",
    "POLICIES",
    "PPOOptimizer",
    "RandomSearchOptimizer",
    "Registry",
    "RegistryEntry",
    "RunConfig",
    "SupervisedOptimizer",
    "UnknownComponentError",
    "build_problem",
    "describe_components",
    "list_envs",
    "list_optimizers",
    "list_policies",
    "make_env",
    "make_optimizer",
    "make_policy",
    "register_env",
    "register_optimizer",
    "register_policy",
    "seed_everything",
    "seed_legacy_globals",
    "vectorizable",
]
