"""End-to-end integration tests: train → deploy → evaluate at smoke scale."""

from __future__ import annotations

import numpy as np

from repro import make_env, make_policy
from repro.agents import PPOConfig, PPOTrainer, evaluate_deployment
from repro.experiments import (
    deployment_example,
    generalization_example,
    run_fom_training,
    run_training_experiment,
    smoke_scale,
)


class TestOpAmpPipeline:
    def test_training_improves_mean_reward(self):
        """A short PPO run lifts the mean episode reward above its start.

        This is the smoke-level version of the Fig. 3 reward curves: with the
        center-start environment, untrained policies collect strongly
        negative Eq. (1) rewards and learning pushes them upward.
        """
        env = make_env("opamp-p2s-v0", seed=0)
        policy = make_policy("gcn_fc", env, np.random.default_rng(0))
        trainer = PPOTrainer(
            env, policy, PPOConfig(learning_rate=1e-3, minibatch_size=64, update_epochs=4), seed=0
        )
        history = trainer.train(total_episodes=60, episodes_per_update=10)
        first = history.records[0].mean_episode_reward
        best_late = max(r.mean_episode_reward for r in history.records[2:])
        assert best_late > first

    def test_run_training_experiment_harness(self):
        result = run_training_experiment(
            "two_stage_opamp", "baseline_a", scale=smoke_scale(), seed=0, track_accuracy=False
        )
        assert result.history.records
        evaluation = evaluate_deployment(result.env, result.policy, num_targets=4, seed=1)
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_deployment_example_records_all_spec_curves(self):
        example = deployment_example(
            "two_stage_opamp", method="baseline_a", scale=smoke_scale(), seed=0
        )
        assert example.target_specs["gain"] == 350.0
        for name in ("gain", "bandwidth", "phase_margin", "power"):
            series = example.spec_series(name)
            assert series.shape == (example.steps,)
            assert np.all(np.isfinite(series))

    def test_generalization_example_uses_unseen_targets_and_longer_budget(self):
        example = generalization_example(
            "two_stage_opamp", method="baseline_a", scale=smoke_scale(), seed=0
        )
        assert example.target_specs["phase_margin"] == 65.0
        assert example.steps <= 80


class TestRfPaPipeline:
    def test_coarse_training_then_fine_deployment(self):
        result = run_training_experiment(
            "rf_pa", "gcn_fc", scale=smoke_scale(), seed=0, track_accuracy=False
        )
        # Training used the coarse simulator (transfer-learning protocol).
        assert result.env.simulator.name == "rf_pa_coarse"
        fine_env = make_env("rf_pa-fine-v0", seed=0)
        evaluation = evaluate_deployment(fine_env, result.policy, num_targets=3, seed=2)
        assert evaluation.num_targets == 3
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_fom_training_produces_reasonable_fom(self):
        result = run_fom_training("baseline_a", scale=smoke_scale(), seed=0)
        # FoM = P + 3E; with P in (0, 3.3] and E in (0, 1) the value is bounded.
        assert 0.0 < result.best_fom < 3.3 + 3.0
        assert result.history.records
        assert set(result.final_specs) == {"output_power", "efficiency"}
