"""Fig. 3, last column — GA and BO optimization curves (reward vs simulations).

The paper observes the Genetic Algorithm needs on the order of 400 simulator
calls and Bayesian Optimization on the order of 100 to reach a given target
group, an order of magnitude above a trained RL policy's ~20 deployment
steps.  This bench runs both optimizers on one target group per circuit and
records the best-so-far reward curve statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_optimization_curves
from repro.experiments.evaluation import FIG5_OPAMP_TARGET, FIG5_RF_PA_TARGET

#: Budgets mirroring the paper's observation (GA ~400, BO ~100 simulations),
#: reduced for the op-amp/PA analytic substrate which converges faster.
GA_BUDGET = 120
BO_BUDGET = 40

_TARGETS = {
    "two_stage_opamp": FIG5_OPAMP_TARGET,
    "rf_pa": FIG5_RF_PA_TARGET,
}


@pytest.mark.parametrize("circuit", sorted(_TARGETS))
def test_fig3_optimizer_curves(benchmark, circuit):
    def run():
        return run_optimization_curves(
            circuit, target=_TARGETS[circuit], seed=0,
            ga_budget=GA_BUDGET, bo_budget=BO_BUDGET,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    ga = curves["genetic_algorithm"]
    bo = curves["bayesian_optimization"]

    # Best-so-far curves are monotone non-decreasing (they are "best" curves).
    assert np.all(np.diff(ga.curve()) >= -1e-12)
    assert np.all(np.diff(bo.curve()) >= -1e-12)
    # Both need well over an RL deployment's worth of simulations when they
    # do not terminate early on success.
    assert ga.num_simulations >= 20
    assert bo.num_simulations >= 10

    benchmark.extra_info.update(
        {
            "circuit": circuit,
            "ga_simulations": int(ga.num_simulations),
            "ga_success": bool(ga.success),
            "ga_best_reward": float(ga.curve()[-1]),
            "bo_simulations": int(bo.num_simulations),
            "bo_success": bool(bo.success),
            "bo_best_reward": float(bo.curve()[-1]),
        }
    )
