"""Memoizing simulator wrapper keyed on quantized parameter vectors.

Every optimizer in this codebase — PPO rollouts, the GA/BO/RS baselines, the
supervised sizer's dataset generation, deployment batches — spends its inner
loop asking a :class:`~repro.simulation.base.CircuitSimulator` the same
question for *recurring* parameter vectors: population elites are re-scored
each generation, every vector-env reset starts from the shared center sizing,
and search methods revisit grid points.  All simulators in this project are
deterministic functions of the netlist's device parameters, so those repeats
are pure waste.

:class:`SimulationCache` wraps any simulator behind the same ``simulate``
protocol and memoizes results in an LRU table keyed on the netlist's
parameter snapshot, quantized to a fixed number of significant digits so that
float noise below simulator resolution (e.g. ``1e-6`` vs ``1.0000000000001e-6``
from two different arithmetic paths) maps to the same entry.  Parameters that
the design space snaps onto a discrete grid are exactly representable well
above the default 12-digit quantization, so distinct design points never
collide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.simulation.base import CircuitSimulator, SimulationResult

#: Default maximum number of memoized simulation results.
DEFAULT_CACHE_SIZE = 4096

#: Default number of significant digits used to quantize cache keys.
DEFAULT_KEY_DIGITS = 12


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`SimulationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


def quantize_significant(values: np.ndarray, digits: int) -> np.ndarray:
    """Round each entry to ``digits`` significant (not decimal) digits."""
    values = np.asarray(values, dtype=np.float64)
    nonzero = values != 0.0
    exponents = np.zeros(values.shape)
    np.floor(np.log10(np.abs(values, where=nonzero, out=np.ones_like(values))),
             where=nonzero, out=exponents)
    scale = np.power(10.0, digits - 1 - exponents)
    return np.where(nonzero, np.round(values * scale) / scale, 0.0)


class SimulationCache:
    """LRU-memoizing :class:`CircuitSimulator` wrapper.

    Parameters
    ----------
    simulator:
        The simulator to wrap.  Must be deterministic: identical device
        parameters must produce identical results (true for every simulator
        in :mod:`repro.simulation`).
    max_entries:
        Capacity of the LRU table; the least-recently-used entry is evicted
        once it is exceeded.
    key_digits:
        Significant digits used when quantizing parameter values into the
        cache key.

    The wrapper satisfies the :class:`CircuitSimulator` protocol, so it can
    stand in anywhere a simulator is expected — a whole
    :class:`~repro.parallel.vector_env.VectorCircuitEnv` shares one instance
    across its sub-environments.
    """

    def __init__(
        self,
        simulator: CircuitSimulator,
        max_entries: int = DEFAULT_CACHE_SIZE,
        key_digits: int = DEFAULT_KEY_DIGITS,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if key_digits <= 0:
            raise ValueError("key_digits must be positive")
        self.simulator = simulator
        self.max_entries = int(max_entries)
        self.key_digits = int(key_digits)
        self.stats = CacheStats()
        self._entries: "OrderedDict[bytes, SimulationResult]" = OrderedDict()

    # ------------------------------------------------------------------
    # CircuitSimulator protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"cached({self.simulator.name})"

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Evaluate the netlist, serving repeats from the LRU table."""
        key = self._key(netlist)
        cached = self._entries.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._copy(cached)
        self.stats.misses += 1
        result = self.simulator.simulate(netlist)
        self._entries[key] = self._copy(result)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all memoized entries (the stats counters are kept)."""
        self._entries.clear()

    def _key(self, netlist: Netlist) -> bytes:
        # Device parameters in netlist insertion order fully determine a
        # deterministic simulator's output; the order is fixed per topology,
        # so the quantized value array (plus the circuit name) is the key.
        values = netlist.parameter_array()
        return netlist.name.encode() + quantize_significant(values, self.key_digits).tobytes()

    @staticmethod
    def _copy(result: SimulationResult) -> SimulationResult:
        # Environments and baselines mutate/keep the spec dicts they receive;
        # fresh copies keep the memoized entry immutable.
        return SimulationResult(
            specs=dict(result.specs), details=dict(result.details), valid=result.valid
        )
