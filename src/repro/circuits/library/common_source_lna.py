"""The 45 nm CMOS inductively degenerated common-source LNA benchmark.

Third entry of the topology zoo (PR 3): a narrow-band low-noise amplifier at
2.4 GHz.  It is the only zoo circuit with inductors in its graph, with a
noise specification, and with passive element values among its knobs — the
agent must trade noise figure against power through the device geometry
while the two inductors tune gain and input match.

Topology:

* NMOS common-source device ``M1`` with source-degeneration inductor ``LS``;
* NMOS cascode ``M2`` isolating the input from the load;
* gate matching inductor ``LG`` from the RF input to the gate, drain load
  inductor ``LD`` (finite Q) resonating the output;
* supply ``VP``, ground ``VGND`` and gate bias ``VBIAS`` as explicit graph
  nodes.

Design space: width ``[5, 100] µm`` (step 1 µm) and fingers ``[1, 16]`` for
both transistors, ``LS ∈ [0.1, 2] nH`` (step 0.1 nH) and
``LD ∈ [1, 10] nH`` (step 0.5 nH) — 6 tunable parameters.

Specification sampling space: gain ``[8, 35]`` (V/V), noise figure
``[4.8, 8] dB`` (smaller is better), power ``[1e-3, 1.5e-2] W`` (smaller is
better).
"""

from __future__ import annotations

from repro.circuits.devices import bias, ground, inductor, nmos, supply
from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

#: Transistor instance names: common-source device, cascode.
LNA_TRANSISTORS = ("M1", "M2")

#: Tunable inductors: source degeneration and drain load.
LNA_INDUCTORS = ("LS", "LD")

#: Supply voltage (volts).
LNA_SUPPLY_VOLTAGE = 1.2

#: Gate bias voltage (volts): 0.20 V of overdrive over the 0.4 V threshold.
LNA_GATE_BIAS = 0.60

#: Operating (carrier) frequency of the narrow-band design (Hz).
LNA_FREQUENCY = 2.4e9

#: Fixed gate matching inductance (henries); only LS and LD are tuned.
LNA_GATE_INDUCTANCE = 4.0e-9

# Design-space bounds.
WIDTH_MIN, WIDTH_MAX, WIDTH_STEP = 5e-6, 100e-6, 1e-6
FINGERS_MIN, FINGERS_MAX, FINGERS_STEP = 1, 16, 1
LS_MIN, LS_MAX, LS_STEP = 0.1e-9, 2.0e-9, 0.1e-9
LD_MIN, LD_MAX, LD_STEP = 1.0e-9, 10.0e-9, 0.5e-9


def _build_netlist(
    initial_width: float, initial_fingers: int, initial_ls: float, initial_ld: float
) -> Netlist:
    netlist = Netlist("common_source_lna")
    # Signal path: LG couples the input to the gate, M1 amplifies, M2 cascodes.
    netlist.add_device(inductor("LG", plus="vin", minus="gate", value=LNA_GATE_INDUCTANCE))
    netlist.add_device(nmos("M1", drain="casc", gate="gate", source="degen", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M2", drain="vout", gate="vdd", source="casc", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Degeneration and load inductors.
    netlist.add_device(inductor("LS", plus="degen", minus="vgnd", value=initial_ls))
    netlist.add_device(inductor("LD", plus="vdd", minus="vout", value=initial_ld))
    # Supply, ground and gate bias as explicit graph nodes.
    netlist.add_device(supply("VP", net="vdd", voltage=LNA_SUPPLY_VOLTAGE))
    netlist.add_device(ground("VGND", net="vgnd"))
    netlist.add_device(bias("VBIAS", net="gate", voltage=LNA_GATE_BIAS))
    return netlist


def _build_design_space() -> DesignSpace:
    parameters = []
    for name in LNA_TRANSISTORS:
        parameters.append(
            DesignParameter(
                name=f"{name}.width", device=name, attribute="width",
                minimum=WIDTH_MIN, maximum=WIDTH_MAX, step=WIDTH_STEP,
            )
        )
        parameters.append(
            DesignParameter(
                name=f"{name}.fingers", device=name, attribute="fingers",
                minimum=FINGERS_MIN, maximum=FINGERS_MAX, step=FINGERS_STEP, integer=True,
            )
        )
    parameters.append(
        DesignParameter(
            name="LS.value", device="LS", attribute="value",
            minimum=LS_MIN, maximum=LS_MAX, step=LS_STEP,
        )
    )
    parameters.append(
        DesignParameter(
            name="LD.value", device="LD", attribute="value",
            minimum=LD_MIN, maximum=LD_MAX, step=LD_STEP,
        )
    )
    return DesignSpace(parameters)


def _build_spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("gain", 8.0, 35.0, Objective.MAXIMIZE, unit="V/V"),
            Specification("noise_figure", 4.8, 8.0, Objective.MINIMIZE, unit="dB"),
            Specification("power", 1.0e-3, 1.5e-2, Objective.MINIMIZE, unit="W",
                          log_uniform=True),
        ]
    )


def build_common_source_lna(
    initial_width: float = 52e-6,
    initial_fingers: int = 8,
    initial_ls: float = 1.0e-9,
    initial_ld: float = 5.5e-9,
) -> CircuitBenchmark:
    """Construct the common-source LNA benchmark.

    Parameters
    ----------
    initial_width, initial_fingers:
        Starting sizing applied to both transistors.
    initial_ls, initial_ld:
        Starting degeneration / load inductances.  All defaults sit near the
        middle of the design space.
    """
    if not (WIDTH_MIN <= initial_width <= WIDTH_MAX):
        raise ValueError("initial_width outside the design space")
    if not (FINGERS_MIN <= initial_fingers <= FINGERS_MAX):
        raise ValueError("initial_fingers outside the design space")
    if not (LS_MIN <= initial_ls <= LS_MAX):
        raise ValueError("initial_ls outside the design space")
    if not (LD_MIN <= initial_ld <= LD_MAX):
        raise ValueError("initial_ld outside the design space")
    netlist = _build_netlist(initial_width, int(initial_fingers), initial_ls, initial_ld)
    return CircuitBenchmark(
        name="common_source_lna",
        technology="45nm CMOS",
        netlist=netlist,
        design_space=_build_design_space(),
        spec_space=_build_spec_space(),
        metadata={
            "supply_voltage": LNA_SUPPLY_VOLTAGE,
            "gate_bias": LNA_GATE_BIAS,
            "frequency": LNA_FREQUENCY,
            "gate_inductance": LNA_GATE_INDUCTANCE,
            "max_episode_steps": 30,
        },
    )
