"""``repro.serve`` — the policy deployment service.

The paper's headline claim is deployment: a trained policy automatically
finds device parameters for *given specifications* (Sec. 4, Table 2,
Figs. 5-6).  This package turns that into a train-once / serve-many
subsystem:

* :class:`DeploymentService` — holds checkpointed policies (one per
  environment/topology), accepts many specification targets, groups them by
  topology, and micro-batches the episodes through a shared cached simulator
  via the grad-free batched deployment engine
  (:func:`repro.agents.deploy_policy_batch`);
* :class:`ServeRequest` / :class:`ServeResponse` — the request/response
  records, carrying the designed device parameters back to the caller;
* :func:`load_spec_requests` — parse the ``specs.json`` documents consumed
  by the ``python -m repro.run deploy`` CLI (see :mod:`repro.serve.cli`).

Quickstart::

    import repro
    from repro.serve import DeploymentService

    service = DeploymentService.from_checkpoint("ckpt/latest.npz", batch_size=8)
    responses = service.serve([
        {"gain": 350.0, "bandwidth": 1.8e7, "phase_margin": 55.0, "power": 4e-3},
        {"gain": 400.0, "bandwidth": 1.2e7, "phase_margin": 60.0, "power": 3e-3},
    ])
    for response in responses:
        print(response.success, response.steps, response.final_parameters)
"""

from repro.serve.service import (
    DeploymentService,
    ServeRequest,
    ServeResponse,
    ServeStats,
)
from repro.serve.specs import load_spec_requests, parse_spec_requests

__all__ = [
    "DeploymentService",
    "ServeRequest",
    "ServeResponse",
    "ServeStats",
    "load_spec_requests",
    "parse_spec_requests",
]
