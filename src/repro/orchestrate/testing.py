"""Deterministic unit runners for exercising orchestrator failure paths.

Shipped inside the package (rather than under ``tests/``) so the dotted
``runner`` paths resolve in *worker processes* under every multiprocessing
start method — spawned workers import runners by module name and cannot see
test modules.
"""

from __future__ import annotations

import os
from typing import Any, Dict


def echo_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Succeed, echoing the payload tag and the executing process id."""
    return {"echo": arguments.get("tag"), "pid": os.getpid()}


def marker_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Fail while ``fail_while_exists`` names an existing file.

    The marker file lets a test flip a unit from failing to succeeding
    *without changing its payload* — exactly the situation a resumed sweep
    faces: the content key is unchanged, so resume must re-run the unit
    because its stored record is failed, not because its identity moved.
    """
    marker = arguments.get("fail_while_exists")
    if marker and os.path.exists(marker):
        raise RuntimeError(f"unit {arguments.get('tag', '?')} failed: marker present")
    if arguments.get("always_fail"):
        raise RuntimeError(f"unit {arguments.get('tag', '?')} failed: always_fail")
    return echo_unit(arguments)
