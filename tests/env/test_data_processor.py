"""Tests for the data-processing module (DPM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.data_processor import DataProcessor


@pytest.fixture
def processor(opamp_benchmark):
    return DataProcessor(opamp_benchmark, opamp_benchmark.fresh_netlist())


class TestParameterHandling:
    def test_set_and_read_parameters(self, processor, opamp_benchmark):
        center = opamp_benchmark.design_space.center()
        values = processor.set_parameters(center)
        np.testing.assert_allclose(values, center)
        np.testing.assert_allclose(processor.parameter_values, center)

    def test_apply_actions_moves_by_one_step(self, processor, opamp_benchmark):
        space = opamp_benchmark.design_space
        processor.set_parameters(space.center())
        before = processor.parameter_values
        increase_all = np.full(len(space), 2, dtype=np.int64)
        after = processor.apply_actions(increase_all)
        np.testing.assert_allclose(after, before + space.steps)

    def test_apply_actions_rewrites_netlist(self, processor, opamp_benchmark):
        processor.set_parameters(opamp_benchmark.design_space.center())
        before_width = processor.netlist.get_parameter("M1", "width")
        action = np.full(15, 1, dtype=np.int64)
        action[0] = 2  # increase M1.width only
        processor.apply_actions(action)
        assert processor.netlist.get_parameter("M1", "width") == pytest.approx(before_width + 1e-6)


class TestObservationConstruction:
    def test_spec_feature_vector_layout(self, processor, opamp_benchmark):
        measured = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 60.0, "power": 1e-3}
        targets = {"gain": 350.0, "bandwidth": 2e7, "phase_margin": 58.0, "power": 5e-3}
        vector = processor.spec_feature_vector(measured, targets)
        assert vector.shape == (processor.spec_feature_dimension,)
        assert processor.spec_feature_dimension == 3 * len(opamp_benchmark.spec_space)
        # Last block holds the clipped normalized errors, all in [-1, 0].
        errors = vector[-len(opamp_benchmark.spec_space):]
        assert np.all(errors <= 0.0) and np.all(errors >= -1.0)

    def test_observation_fields_consistent(self, processor, opamp_benchmark):
        measured = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 60.0, "power": 1e-3}
        targets = {"gain": 350.0, "bandwidth": 2e7, "phase_margin": 58.0, "power": 5e-3}
        observation = processor.observation(measured, targets)
        assert observation.node_features.shape == (
            processor.num_graph_nodes, processor.node_feature_dimension
        )
        assert observation.adjacency.shape == (
            processor.num_graph_nodes, processor.num_graph_nodes
        )
        assert observation.normalized_parameters.shape == (len(opamp_benchmark.design_space),)
        normalized = observation.normalized_parameters
        assert np.all((normalized >= 0) & (normalized <= 1))
        assert observation.measured_specs == measured
        assert observation.target_specs == targets

    def test_observation_tracks_parameter_changes(self, processor, opamp_benchmark):
        measured = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 60.0, "power": 1e-3}
        targets = dict(measured)
        processor.set_parameters(opamp_benchmark.design_space.center())
        first = processor.observation(measured, targets)
        processor.apply_actions(np.full(15, 2, dtype=np.int64))
        second = processor.observation(measured, targets)
        assert not np.allclose(first.node_features, second.node_features)
        assert not np.allclose(first.normalized_parameters, second.normalized_parameters)
        # Static features and topology do not change with sizing.
        np.testing.assert_allclose(first.static_node_features, second.static_node_features)
        np.testing.assert_allclose(first.adjacency, second.adjacency)
