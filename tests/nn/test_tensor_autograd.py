"""Finite-difference verification of the autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, maximum, minimum, stack, where

EPS = 1e-6
TOL = 1e-4


def numerical_gradient(func, array: np.ndarray) -> np.ndarray:
    """Central-difference gradient of a scalar function of one array."""
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.ravel()
    grad_flat = gradient.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPS
        upper = func(array)
        flat[index] = original - EPS
        lower = func(array)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * EPS)
    return gradient


def check_gradient(op, shape, positive=False, seed=0):
    """Compare analytic and numerical gradients for a unary scalar-valued op."""
    rng = np.random.default_rng(seed)
    data = rng.normal(0.5, 1.0, size=shape)
    if positive:
        data = np.abs(data) + 0.5
    tensor = Tensor(data.copy(), requires_grad=True)
    output = op(tensor)
    output.backward()
    numeric = numerical_gradient(lambda arr: float(op(Tensor(arr)).data), data)
    np.testing.assert_allclose(tensor.grad, numeric, rtol=TOL, atol=TOL)


class TestElementwiseGradients:
    def test_add_mul_chain(self):
        check_gradient(lambda t: ((t * 3.0 + 2.0) * t).sum(), (3, 4))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 1.5) / (t + 5.0)).sum(), (2, 5), positive=True)

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (4,))

    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (3, 3))

    def test_log(self):
        check_gradient(lambda t: t.log().sum(), (6,), positive=True)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (2, 3))

    def test_relu(self):
        check_gradient(lambda t: t.relu().sum(), (10,), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), (10,), seed=4)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (5,))

    def test_abs(self):
        check_gradient(lambda t: t.abs().sum(), (7,), seed=5)

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt().sum(), (4,), positive=True)

    def test_clip(self):
        check_gradient(lambda t: t.clip(-0.5, 0.8).sum(), (9,), seed=6)


class TestMatmulAndReductions:
    def test_matmul_left(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        (ta @ Tensor(b)).sum().backward()
        numeric = numerical_gradient(lambda arr: float((Tensor(arr) @ Tensor(b)).sum().data), a)
        np.testing.assert_allclose(ta.grad, numeric, rtol=TOL, atol=TOL)

    def test_matmul_right(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        tb = Tensor(b.copy(), requires_grad=True)
        (Tensor(a) @ tb).sum().backward()
        numeric = numerical_gradient(lambda arr: float((Tensor(a) @ Tensor(arr)).sum().data), b)
        np.testing.assert_allclose(tb.grad, numeric, rtol=TOL, atol=TOL)

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 5))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (4, 6))

    def test_max_reduction(self):
        check_gradient(lambda t: t.max(axis=1).sum(), (4, 5), seed=7)

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6, 2).T ** 2).sum(), (3, 4))

    def test_getitem(self):
        check_gradient(lambda t: (t[1:3, :2] ** 2).sum(), (4, 4))


class TestSoftmaxFamily:
    def test_softmax_gradient(self):
        check_gradient(lambda t: (t.softmax(axis=-1) * np.arange(4)).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * np.arange(5)).sum(), (2, 5))

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(6, 3)))
        rows = t.softmax(axis=-1).data.sum(axis=-1)
        np.testing.assert_allclose(rows, np.ones(6), atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self):
        t = Tensor(np.random.default_rng(1).normal(size=(4, 7)))
        np.testing.assert_allclose(
            t.log_softmax(axis=-1).data, np.log(t.softmax(axis=-1).data), atol=1e-12
        )


class TestCombinators:
    def test_concatenate_gradient(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (concatenate([ta, tb], axis=1) ** 2).sum().backward()
        np.testing.assert_allclose(ta.grad, 2 * a, rtol=TOL)
        np.testing.assert_allclose(tb.grad, 2 * b, rtol=TOL)

    def test_stack_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (stack([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_minimum_maximum_route_gradients(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])
        a.zero_grad(), b.zero_grad()
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_where(self):
        condition = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        out = where(condition, a, b)
        np.testing.assert_allclose(out.data, [1.0, 5.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestBroadcasting:
    def test_bias_broadcast(self):
        w = Tensor(np.ones((1, 4)), requires_grad=True)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        (x + w).sum().backward()
        np.testing.assert_allclose(w.grad, np.full((1, 4), 5.0))

    def test_scalar_broadcast(self):
        s = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.ones((3, 3)))
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 9.0)


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        detached = x.detach()
        assert not detached.requires_grad
        (detached * 2.0).sum()
        assert x.grad is None

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_item_and_shape_helpers(self):
        x = Tensor(np.array([[3.0]]))
        assert x.item() == 3.0
        assert x.shape == (1, 1)
        assert x.ndim == 2
        assert x.size == 1
        assert len(Tensor(np.zeros(4))) == 4


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-5, 5), min_size=2, max_size=8),
    scale=st.floats(0.1, 3.0),
)
def test_property_linear_chain_gradient(values, scale):
    """d/dx of sum(scale * tanh(x)) equals scale * (1 - tanh(x)^2) elementwise."""
    data = np.array(values, dtype=np.float64)
    x = Tensor(data.copy(), requires_grad=True)
    (x.tanh() * scale).sum().backward()
    expected = scale * (1.0 - np.tanh(data) ** 2)
    np.testing.assert_allclose(x.grad, expected, rtol=1e-8, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=2, max_size=6))
def test_property_softmax_probabilities(values):
    """Softmax output is a probability vector for any finite logits."""
    probs = Tensor(np.array(values)).softmax(axis=-1).data
    assert np.all(probs >= 0.0)
    assert abs(probs.sum() - 1.0) < 1e-9
