"""Tests for circuit-graph node-feature encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.devices import DEVICE_TYPE_ORDER, DeviceType, bias, capacitor, nmos, supply
from repro.graph.features import (
    PARAMETER_SLOTS,
    device_feature_vector,
    device_parameter_vector,
    feature_dimension,
    node_type_one_hot,
    static_feature_vector,
)


class TestOneHot:
    def test_each_type_unique(self):
        encodings = [node_type_one_hot(dtype) for dtype in DEVICE_TYPE_ORDER]
        stacked = np.stack(encodings)
        np.testing.assert_allclose(stacked.sum(axis=1), np.ones(len(DEVICE_TYPE_ORDER)))
        np.testing.assert_allclose(stacked, np.eye(len(DEVICE_TYPE_ORDER)))


class TestParameterVector:
    def test_transistor_uses_width_and_fingers(self):
        device = nmos("M1", "d", "g", "s", width=50e-6, fingers=16)
        vector = device_parameter_vector(device)
        assert vector.shape == (PARAMETER_SLOTS,)
        assert vector[0] == pytest.approx(0.5)   # 50 um / 100 um
        assert vector[1] == pytest.approx(0.5)   # 16 / 32

    def test_capacitor_uses_value_with_zero_padding(self):
        device = capacitor("CC", "a", "b", 5e-12)
        vector = device_parameter_vector(device)
        assert vector[0] == pytest.approx(0.5)   # 5 pF / 10 pF
        assert vector[1] == 0.0

    def test_supply_and_bias_use_voltage(self):
        assert device_parameter_vector(supply("VP", "vdd", 1.2))[0] == pytest.approx(1.2 / 30.0)
        assert device_parameter_vector(bias("VB", "vb", 0.6))[0] == pytest.approx(0.6 / 30.0)

    def test_features_change_with_parameters(self):
        """The node features are *dynamic*: editing the device changes them."""
        device = nmos("M1", "d", "g", "s", width=10e-6, fingers=4)
        before = device_feature_vector(device).copy()
        device.set_parameter("width", 80e-6)
        after = device_feature_vector(device)
        assert not np.allclose(before, after)


class TestFullFeatureVector:
    def test_dimension(self):
        device = nmos("M1", "d", "g", "s")
        assert device_feature_vector(device).shape == (feature_dimension(),)
        assert feature_dimension() == len(DEVICE_TYPE_ORDER) + PARAMETER_SLOTS

    def test_type_prefix_matches_one_hot(self):
        device = capacitor("C1", "a", "b", 1e-12)
        vector = device_feature_vector(device)
        np.testing.assert_allclose(
            vector[: len(DEVICE_TYPE_ORDER)], node_type_one_hot(DeviceType.CAPACITOR)
        )

    def test_features_are_order_unity(self):
        """Scaled features stay O(1), so tanh GNN layers do not saturate."""
        devices = [
            nmos("M1", "d", "g", "s", width=100e-6, fingers=32),
            capacitor("CC", "a", "b", 10e-12),
            supply("VP", "vdd", 28.0),
        ]
        for device in devices:
            assert np.all(np.abs(device_feature_vector(device)) <= 1.5)


class TestStaticFeatures:
    def test_static_features_ignore_device_parameters(self):
        constants = {"threshold_voltage": 0.4, "mobility_scale": 1.0}
        small = nmos("M1", "d", "g", "s", width=1e-6, fingers=2)
        large = nmos("M1", "d", "g", "s", width=100e-6, fingers=32)
        np.testing.assert_allclose(
            static_feature_vector(small, constants), static_feature_vector(large, constants)
        )

    def test_static_features_same_length_as_dynamic(self):
        device = nmos("M1", "d", "g", "s")
        assert static_feature_vector(device, {}).shape == device_feature_vector(device).shape
