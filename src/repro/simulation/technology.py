"""Technology constants for the two implementation technologies in Table 1.

The paper sizes the two-stage op-amp in a 45 nm CMOS process and the RF PA in
a 150 nm GaN process, characterized with Cadence Spectre / Keysight ADS
foundry models.  Those models are proprietary, so this module defines
behavioural process constants (square-law CMOS, saturating GaN HEMT) that are
calibrated so the Table 1 specification sampling spaces are reachable inside
the Table 1 design spaces.  Absolute accuracy is not the goal — preserving
the monotone parameter→specification relationships that the RL agent must
learn is.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CmosTechnology:
    """Square-law CMOS process constants.

    Attributes
    ----------
    name:
        Process label.
    kp_n, kp_p:
        Process transconductance ``µ Cox`` of NMOS/PMOS devices (A/V²).
    vth_n, vth_p:
        Threshold voltages (V); ``vth_p`` is the magnitude.
    lambda_n, lambda_p:
        Channel-length-modulation coefficients (1/V).  Deliberately large to
        reflect the low intrinsic gain of a short-channel process, which is
        what makes the 300–500 V/V gain spec of Table 1 a binding constraint.
    l_ref:
        Effective channel length used in the W/L strength ratio (m).
    supply_voltage:
        Nominal supply (V).
    cox_per_area:
        Gate-oxide capacitance per unit area (F/m²), used for parasitic
        estimates.
    """

    name: str
    kp_n: float
    kp_p: float
    vth_n: float
    vth_p: float
    lambda_n: float
    lambda_p: float
    l_ref: float
    supply_voltage: float
    cox_per_area: float

    def strength(self, width: float, fingers: float) -> float:
        """Device strength ``W_total / L_ref`` (dimensionless W/L ratio)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return (width * fingers) / self.l_ref


@dataclass(frozen=True)
class GanTechnology:
    """Behavioural GaN HEMT process constants for the RF PA.

    Attributes
    ----------
    name:
        Process label.
    vth:
        Threshold (pinch-off) voltage (V), negative for a depletion-mode HEMT.
    imax_per_width:
        Saturated drain-current density (A per metre of total gate width).
    gm_per_width:
        Transconductance density (S per metre of total gate width).
    knee_voltage:
        Knee voltage below which the drain swing is lost (V).
    drain_supply:
        Nominal drain supply of the power stage (V).
    driver_supply:
        Supply of the driver chain (V).
    driver_load_resistance:
        Drain pull-up resistance of each driver stage (ohm).
    cgs_per_width:
        Gate-source capacitance density (F per metre of total gate width);
        determines how hard each stage must drive the next.
    rf_frequency:
        Operating frequency of the PA (Hz) used for drive-impedance
        calculations.
    """

    name: str
    vth: float
    imax_per_width: float
    gm_per_width: float
    knee_voltage: float
    drain_supply: float
    driver_supply: float
    driver_load_resistance: float
    cgs_per_width: float
    rf_frequency: float

    def imax(self, width: float, fingers: float) -> float:
        """Saturation current of a device with the given geometry (A)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return self.imax_per_width * width * fingers

    def gm(self, width: float, fingers: float) -> float:
        """Peak transconductance of a device with the given geometry (S)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return self.gm_per_width * width * fingers


#: 45 nm CMOS constants used by the two-stage op-amp benchmark.
CMOS_45NM = CmosTechnology(
    name="45nm CMOS",
    kp_n=300e-6,
    kp_p=150e-6,
    vth_n=0.40,
    vth_p=0.40,
    lambda_n=0.40,
    lambda_p=0.50,
    l_ref=0.45e-6,
    supply_voltage=1.2,
    cox_per_area=8e-3,
)

#: 150 nm GaN constants used by the RF power-amplifier benchmark.
GAN_150NM = GanTechnology(
    name="150nm GaN",
    vth=-3.0,
    imax_per_width=1000.0,   # 1 A/mm expressed in A/m
    gm_per_width=350.0,      # 350 mS/mm expressed in S/m
    knee_voltage=2.0,
    drain_supply=28.0,
    driver_supply=8.0,
    driver_load_resistance=200.0,
    cgs_per_width=1.0e-9,    # 1 pF/mm expressed in F/m
    rf_frequency=1.0e9,
)
