"""Tests for the supervised-learning sizing baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.supervised import SupervisedSizer, SupervisedSizerConfig
from repro.simulation.opamp_sim import OpAmpSimulator


@pytest.fixture
def sizer(opamp_benchmark):
    config = SupervisedSizerConfig(num_training_samples=120, epochs=15, hidden_sizes=(24, 24))
    return SupervisedSizer(opamp_benchmark, OpAmpSimulator(), config, seed=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedSizerConfig(num_training_samples=5)
        with pytest.raises(ValueError):
            SupervisedSizerConfig(epochs=0)


class TestTraining:
    def test_dataset_generation_shapes(self, sizer, opamp_benchmark):
        specs, parameters = sizer.generate_dataset(num_samples=50)
        assert specs.shape[1] == len(opamp_benchmark.spec_space)
        assert parameters.shape[1] == opamp_benchmark.num_parameters
        assert specs.shape[0] == parameters.shape[0] <= 50
        assert np.all((parameters >= 0.0) & (parameters <= 1.0))

    def test_training_loss_decreases(self, sizer):
        sizer.fit()
        losses = sizer.training_losses
        assert len(losses) == 15
        assert losses[-1] < losses[0]

    def test_design_before_fit_raises(self, sizer):
        with pytest.raises(RuntimeError):
            sizer.design({"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3})


class TestOneShotDesign:
    def test_design_returns_in_space_parameters(self, sizer, opamp_benchmark):
        sizer.fit()
        result = sizer.design(
            {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        )
        space = opamp_benchmark.design_space
        assert np.all(result.parameters >= space.lower_bounds - 1e-12)
        assert np.all(result.parameters <= space.upper_bounds + 1e-12)
        assert result.num_simulations == 1
        assert set(result.predicted_specs) == set(opamp_benchmark.spec_space.names)

    def test_accuracy_between_zero_and_one(self, sizer, opamp_benchmark, rng):
        sizer.fit()
        targets = opamp_benchmark.spec_space.sample_batch(rng, 10)
        accuracy = sizer.evaluate_accuracy(targets)
        assert 0.0 <= accuracy <= 1.0

    def test_accuracy_requires_targets(self, sizer):
        sizer.fit()
        with pytest.raises(ValueError):
            sizer.evaluate_accuracy([])
