"""Benchmark circuit library: the two evaluation circuits from the paper."""

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.library.rf_pa import build_rf_pa
from repro.circuits.library.two_stage_opamp import build_two_stage_opamp

__all__ = ["CircuitBenchmark", "build_rf_pa", "build_two_stage_opamp"]
