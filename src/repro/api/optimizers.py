"""Adapters giving every sizing method the common ``Optimizer`` protocol.

Five adapters wrap the method implementations in :mod:`repro.agents` and
:mod:`repro.baselines` behind the single signature
``optimize(env, budget=None, seed=None, callbacks=(), target_specs=None)``:

* :class:`PPOOptimizer` (``"ppo"``) — trains a policy with PPO for
  ``budget`` episodes, then deploys it toward the target group;
* :class:`GeneticOptimizer` (``"genetic"``), :class:`BayesianOptimizer`
  (``"bayesian"``), :class:`RandomSearchOptimizer` (``"random"``) — search
  the design space directly under a ``budget`` of simulator calls;
* :class:`SupervisedOptimizer` (``"supervised"``) — trains the inverse
  spec-to-parameter regressor on ``budget`` random designs and produces a
  one-shot design.

Constructor keyword arguments are plain JSON-serializable values so a whole
run is reconstructable from :class:`repro.api.configs.RunConfig`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.api.protocol import (
    Callbacks,
    NotifyingTrace,
    OptimizationResult,
    OptimizationTrace,
    notify,
    resolve_target,
)
from repro.baselines.base import SizingOptimizer, SizingProblem
from repro.baselines.bayesian import BayesianOptimization, BayesianOptimizationConfig
from repro.baselines.genetic import GeneticAlgorithm, GeneticAlgorithmConfig
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.baselines.supervised import SupervisedSizer, SupervisedSizerConfig
from repro.env.circuit_env import CircuitDesignEnv
from repro.parallel.cache import DEFAULT_CACHE_SIZE, SimulationCache
from repro.parallel.vector_env import VectorCircuitEnv


def _unwrap_env(env) -> tuple:
    """Accept either a sequential env or a front-door :class:`VectorCircuitEnv`.

    ``make_env(id, num_envs=k)`` hands back a vector env; optimizers define
    their objective on a single environment, so they work on the first
    sub-environment (whose simulator already shares the batch's cache) and
    reuse the whole vector env for RL rollout collection when present.
    Returns ``(sequential_env, vector_env_or_None)``.
    """
    if isinstance(env, VectorCircuitEnv):
        return env.envs[0], env
    return env, None


def _resolve_simulator(
    env: CircuitDesignEnv, vectorize: int, cache_size: Optional[int]
) -> tuple:
    """Pick the (possibly cache-wrapped) simulator for an optimization run.

    Returns ``(simulator, cache)`` where ``cache`` is the freshly created
    :class:`SimulationCache` (None when caching is off or the environment's
    simulator is already cached).
    """
    if vectorize < 1:
        raise ValueError("vectorize must be >= 1")
    simulator = env.simulator
    if isinstance(simulator, SimulationCache) or (vectorize == 1 and cache_size is None):
        return simulator, None
    cache = SimulationCache(
        simulator,
        max_entries=cache_size if cache_size is not None else DEFAULT_CACHE_SIZE,
    )
    return cache, cache


def build_problem(
    env: CircuitDesignEnv,
    target_specs: Optional[Mapping[str, float]],
    simulator=None,
    prescreener=None,
) -> SizingProblem:
    """Wrap an environment's benchmark/simulator/reward into a :class:`SizingProblem`.

    ``simulator`` overrides the environment's simulator — how the vector path
    substitutes a shared :class:`repro.parallel.SimulationCache`.
    ``prescreener`` attaches a :class:`repro.surrogate.SurrogatePrescreener`
    so population batches are surrogate-ranked and only the top candidates
    exactly verified.
    """
    env, _ = _unwrap_env(env)
    simulator = simulator if simulator is not None else env.simulator
    if env.is_fom_mode:
        return SizingProblem(
            env.benchmark, simulator, fom_reward=env.reward_fn, prescreener=prescreener
        )
    if target_specs is None:
        raise ValueError("a P2S environment needs target_specs to define the objective")
    return SizingProblem(env.benchmark, simulator, targets=target_specs, prescreener=prescreener)


def resolve_prescreener(prescreen):
    """Coerce the ``prescreen`` knob into a live ``SurrogatePrescreener``.

    Accepts ``None`` (off), a ready prescreener, a checkpoint path saved by
    :func:`repro.surrogate.save_surrogate`, or a JSON-friendly mapping
    ``{"surrogate": <path>, "top_fraction": ..., "min_exact": ...}`` (the
    form an :class:`~repro.api.configs.OptimizerConfig` carries).
    """
    if prescreen is None:
        return None
    from repro.surrogate.prescreen import SurrogatePrescreener

    if isinstance(prescreen, SurrogatePrescreener):
        return prescreen
    if isinstance(prescreen, Mapping):
        options = dict(prescreen)
        try:
            surrogate = options.pop("surrogate")
        except KeyError:
            raise ValueError(
                "a prescreen mapping needs a 'surrogate' key (checkpoint path)"
            ) from None
        return SurrogatePrescreener(surrogate, **options)
    return SurrogatePrescreener(prescreen)


class _SearchOptimizer:
    """Shared scaffolding for the direct-search baselines (GA / BO / RS).

    All three score candidate populations through the batched
    :meth:`SizingProblem.objective_from_unit_batch` vector path;
    ``vectorize > 1`` (or an explicit ``cache_size``) additionally wraps the
    environment's simulator in a shared :class:`repro.parallel.SimulationCache`
    so duplicate candidates across a population cost one simulation.

    ``prescreen`` enables surrogate pre-screening of those populations: a
    trained :mod:`repro.surrogate` model ranks every candidate and only the
    top fraction is verified with the exact simulator (the final answer is
    always exactly verified; see :func:`resolve_prescreener` for the
    accepted forms).
    """

    id = "search"

    def __init__(
        self,
        seed: Optional[int] = None,
        budget: Optional[int] = None,
        vectorize: int = 1,
        cache_size: Optional[int] = None,
        prescreen: Any = None,
        **overrides: Any,
    ) -> None:
        self.seed = seed
        self.budget = budget
        self.vectorize = int(vectorize)
        self.cache_size = cache_size
        self.prescreen = prescreen
        self.overrides = overrides
        if self.vectorize < 1:
            raise ValueError("vectorize must be >= 1")
        self._make_config(**overrides)  # fail fast on bad hyper-parameters

    # Subclass hooks ----------------------------------------------------
    def _make_config(self, **overrides: Any):
        raise NotImplementedError

    def _apply_budget(self, config, budget: Optional[int]) -> None:
        raise NotImplementedError

    def _make_search(self, config, seed: Optional[int]) -> SizingOptimizer:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def build_search(
        self, budget: Optional[int] = None, seed: Optional[int] = None
    ) -> SizingOptimizer:
        """Instantiate the underlying :class:`SizingOptimizer` for one run."""
        config = self._make_config(**self.overrides)
        self._apply_budget(config, budget if budget is not None else self.budget)
        return self._make_search(config, seed if seed is not None else self.seed)

    def optimize(
        self,
        env: CircuitDesignEnv,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        callbacks: Callbacks = (),
        target_specs: Optional[Mapping[str, float]] = None,
    ) -> OptimizationResult:
        env, _ = _unwrap_env(env)
        budget = budget if budget is not None else self.budget
        seed = seed if seed is not None else self.seed
        target = resolve_target(env, target_specs, seed)
        simulator, cache = _resolve_simulator(env, self.vectorize, self.cache_size)
        prescreener = resolve_prescreener(self.prescreen)
        problem = build_problem(env, target, simulator=simulator, prescreener=prescreener)
        problem.trace = NotifyingTrace(callbacks)
        notify(callbacks, "on_start", self.id, env, budget)
        search = self.build_search(budget, seed)
        result = search.optimize(problem)
        result.method = self.id
        result.seed = seed
        result.budget = budget
        if target is not None:
            result.metadata.setdefault("target_specs", dict(target))
        if cache is not None:
            result.metadata["simulation_cache"] = cache.stats
        if prescreener is not None:
            result.metadata["prescreen"] = prescreener.describe()
        notify(callbacks, "on_result", result)
        return result


class GeneticOptimizer(_SearchOptimizer):
    """Genetic-algorithm search.

    ``budget`` is a simulator-call target rounded down to whole populations:
    the initial population costs one population of calls, each generation
    another.  Budgets below two populations are floored at one generation,
    so very small budgets overshoot — shrink ``population_size`` to match.
    """

    id = "genetic"

    def _make_config(self, **overrides: Any) -> GeneticAlgorithmConfig:
        return GeneticAlgorithmConfig(**overrides)

    def _apply_budget(self, config: GeneticAlgorithmConfig, budget: Optional[int]) -> None:
        if budget is not None:
            # One population of calls goes to the initial evaluation.
            config.num_generations = max(1, budget // config.population_size - 1)

    def _make_search(self, config, seed):
        return GeneticAlgorithm(config, seed=seed)


class BayesianOptimizer(_SearchOptimizer):
    """Gaussian-process Bayesian optimization; ``budget`` caps simulator calls."""

    id = "bayesian"

    def _make_config(self, **overrides: Any) -> BayesianOptimizationConfig:
        return BayesianOptimizationConfig(**overrides)

    def _apply_budget(self, config: BayesianOptimizationConfig, budget: Optional[int]) -> None:
        if budget is not None:
            config.num_iterations = max(2, budget - config.num_initial)

    def _make_search(self, config, seed):
        return BayesianOptimization(config, seed=seed)


class RandomSearchOptimizer(_SearchOptimizer):
    """Uniform random search; ``budget`` is the number of samples."""

    id = "random"

    def _make_config(self, **overrides: Any) -> RandomSearchConfig:
        return RandomSearchConfig(**overrides)

    def _apply_budget(self, config: RandomSearchConfig, budget: Optional[int]) -> None:
        if budget is not None:
            config.num_samples = budget

    def _make_search(self, config, seed):
        return RandomSearch(config, seed=seed)


class PPOOptimizer:
    """PPO-trained RL policy behind the common protocol.

    ``budget`` is the *training-episode* budget (the paper uses 35 000 for
    the op-amp and 3 500 for the RF PA; the default here is a bench-friendly
    200).  ``num_simulations`` of the returned result counts only the
    deployment steps, matching the paper's accounting where the one-off
    training cost is amortized over every future target group.  The trained
    policy and full training history ride along in ``result.metadata``.

    ``vectorize`` sets the training rollout width: with ``vectorize=k > 1``
    episodes are collected from a ``k``-wide
    :class:`repro.parallel.VectorCircuitEnv` (shared simulation cache,
    batched policy forward); ``vectorize=1`` is the sequential path.

    ``checkpoint_dir`` (a plain path string, so it serializes through
    :class:`repro.OptimizerConfig` and sweep documents) makes the underlying
    :class:`~repro.agents.ppo.PPOTrainer` emit on-disk policy checkpoints
    every ``checkpoint_interval`` updates plus a final ``latest.npz`` — the
    train-once half of the ``repro.serve`` deployment workflow.  Each run
    writes into a ``<policy>-seed<seed>-<digest>`` subdirectory (digest over
    the optimizer's serializable knobs), so sweep units sharing one
    configured directory — other seeds, or a differently-tuned PPO with the
    same policy — never clobber each other's files.
    """

    id = "ppo"
    DEFAULT_BUDGET = 200

    def __init__(
        self,
        policy: str = "gcn_fc",
        seed: Optional[int] = None,
        budget: Optional[int] = None,
        episodes_per_update: int = 10,
        deployment_max_steps: Optional[int] = None,
        fom_episodes: int = 3,
        ppo: Optional[Mapping[str, Any]] = None,
        policy_overrides: Optional[Mapping[str, Any]] = None,
        vectorize: int = 1,
        cache_size: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 10,
        env_id: Optional[str] = None,
    ) -> None:
        from repro.agents.ppo import PPOConfig

        self.policy_id = policy
        self.seed = seed
        self.budget = budget
        self.episodes_per_update = episodes_per_update
        self.deployment_max_steps = deployment_max_steps
        self.fom_episodes = fom_episodes
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = int(checkpoint_interval)
        self.env_id = env_id
        if isinstance(ppo, PPOConfig):
            self.ppo_config = ppo
        else:
            self.ppo_config = PPOConfig(**dict(ppo)) if ppo else PPOConfig(learning_rate=1e-3)
        self.policy_overrides = dict(policy_overrides or {})
        self.vectorize = int(vectorize)
        self.cache_size = cache_size
        if self.vectorize < 1:
            raise ValueError("vectorize must be >= 1")

    # ------------------------------------------------------------------
    def optimize(
        self,
        env: CircuitDesignEnv,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        callbacks: Callbacks = (),
        target_specs: Optional[Mapping[str, float]] = None,
    ) -> OptimizationResult:
        """Train a policy for ``budget`` episodes, then deploy it greedily.

        Unlike the search baselines, ``budget`` counts *training episodes*
        (the paper's budget semantics for RL); ``result.num_simulations``
        counts only the deployment steps against the resolved target group.
        """
        from repro.agents.deployment import deploy_policy
        from repro.agents.ppo import PPOTrainer
        from repro.api.catalog import make_policy

        env, provided_vector_env = _unwrap_env(env)
        budget = budget if budget is not None else (self.budget or self.DEFAULT_BUDGET)
        seed = seed if seed is not None else self.seed
        target = resolve_target(env, target_specs, seed)

        notify(callbacks, "on_start", self.id, env, budget)
        policy = make_policy(
            self.policy_id, env, np.random.default_rng(seed), **self.policy_overrides
        )
        train_env: Any = env
        train_cache = None
        if provided_vector_env is not None:
            # make_env(id, num_envs=k) front door: collect rollouts from the
            # vector env the caller already built.
            train_env = provided_vector_env
            train_cache = provided_vector_env.cache
        elif self.vectorize > 1:
            train_env = VectorCircuitEnv.from_env(
                env,
                num_envs=self.vectorize,
                seed=seed,
                cache_size=self.cache_size if self.cache_size is not None else DEFAULT_CACHE_SIZE,
            )
            train_cache = train_env.cache
        checkpoint_dir = None
        if self.checkpoint_dir is not None:
            # Per-run subdirectory: parallel sweep units sharing one
            # configured directory must not overwrite each other, including
            # same-policy same-seed units that differ only in hyperparameters
            # — hence the digest over the run-defining knobs.
            fingerprint = json.dumps(
                {
                    "policy": self.policy_id,
                    "ppo": dataclasses.asdict(self.ppo_config),
                    "overrides": self.policy_overrides,
                    "episodes_per_update": self.episodes_per_update,
                    "budget": budget,
                    "env": env.benchmark.name,
                },
                sort_keys=True, default=str,
            )
            digest = hashlib.sha256(fingerprint.encode()).hexdigest()[:8]
            checkpoint_dir = (
                Path(self.checkpoint_dir) / f"{self.policy_id}-seed{seed}-{digest}"
            )
        trainer = PPOTrainer(
            train_env, policy, config=self.ppo_config, seed=seed, method_name=self.policy_id,
            checkpoint_dir=checkpoint_dir, checkpoint_interval=self.checkpoint_interval,
            env_id=self.env_id,
        )
        history = trainer.train(
            total_episodes=budget,
            episodes_per_update=min(self.episodes_per_update, budget),
            eval_interval=None,
        )
        best_reward = -np.inf
        for index, record in enumerate(history.records):
            best_reward = max(best_reward, record.mean_episode_reward)
            notify(callbacks, "on_evaluation", index + 1, record.mean_episode_reward, best_reward)

        if env.is_fom_mode:
            result = self._fom_result(env, policy, seed)
        else:
            assert target is not None
            deployment = deploy_policy(
                env,
                policy,
                target,
                deterministic=True,
                rng=np.random.default_rng(seed),
                max_steps=self.deployment_max_steps,
            )
            trace = OptimizationTrace()
            for record in deployment.trajectory.records:
                trace.record(record.reward)
            best_index = int(np.argmax([r.reward for r in deployment.trajectory.records]))
            best_record = deployment.trajectory.records[best_index]
            result = OptimizationResult(
                best_parameters=best_record.parameters.copy(),
                best_objective=float(best_record.reward),
                best_specs=dict(best_record.specs),
                success=deployment.success,
                num_simulations=deployment.steps,
                trace=trace,
                metadata={"deployment": deployment, "target_specs": dict(target)},
            )
        result.method = self.id
        result.seed = seed
        result.budget = budget
        num_envs = train_env.num_envs if isinstance(train_env, VectorCircuitEnv) else 1
        result.metadata.update(
            {"policy": policy, "policy_id": self.policy_id, "training_history": history,
             "training_episodes": budget, "num_envs": num_envs}
        )
        if train_cache is not None:
            result.metadata["simulation_cache"] = train_cache.stats
        notify(callbacks, "on_result", result)
        return result

    def _fom_result(self, env: CircuitDesignEnv, policy, seed: Optional[int]) -> OptimizationResult:
        """Greedy roll-outs on the FoM environment; keep the best FoM seen."""
        rng = np.random.default_rng(seed)
        trace = OptimizationTrace()
        best = -np.inf
        best_specs: Dict[str, float] = {}
        best_parameters: Optional[np.ndarray] = None
        steps = 0
        for _ in range(self.fom_episodes):
            observation = env.reset()
            done = False
            while not done:
                action, _, _ = policy.act(observation, rng, deterministic=True)
                observation, _, done, info = env.step(action)
                steps += 1
                fom = float(info["figure_of_merit"])
                trace.record(fom)
                if fom > best:
                    best = fom
                    best_specs = dict(info["specs"])
                    best_parameters = env.parameter_values.copy()
        assert best_parameters is not None
        return OptimizationResult(
            best_parameters=best_parameters,
            best_objective=float(best),
            best_specs=best_specs,
            success=True,
            num_simulations=steps,
            trace=trace,
            metadata={"fom_episodes": self.fom_episodes},
        )


class SupervisedOptimizer:
    """Supervised inverse-regression sizer behind the common protocol.

    ``budget`` is the number of random designs simulated for the training
    dataset; the one-shot design itself costs a single simulator call, which
    is what ``num_simulations`` reports ("1 design step" in Table 2).
    """

    id = "supervised"

    def __init__(
        self,
        seed: Optional[int] = None,
        budget: Optional[int] = None,
        vectorize: int = 1,
        cache_size: Optional[int] = None,
        **overrides: Any,
    ) -> None:
        self.seed = seed
        self.budget = budget
        self.vectorize = int(vectorize)
        self.cache_size = cache_size
        self.overrides = overrides
        if self.vectorize < 1:
            raise ValueError("vectorize must be >= 1")
        SupervisedSizerConfig(**overrides)  # fail fast on bad hyper-parameters

    def optimize(
        self,
        env: CircuitDesignEnv,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        callbacks: Callbacks = (),
        target_specs: Optional[Mapping[str, float]] = None,
    ) -> OptimizationResult:
        """Fit the supervised sizer on ``budget`` simulated samples, then
        regress device parameters for the resolved target group (P2S only:
        FoM-mode environments raise ``ValueError``)."""
        env, _ = _unwrap_env(env)
        if env.is_fom_mode:
            raise ValueError(
                "the supervised sizer regresses parameters from a target specification "
                "group and does not support FoM-mode environments"
            )
        budget = budget if budget is not None else self.budget
        seed = seed if seed is not None else self.seed
        target = resolve_target(env, target_specs, seed)
        assert target is not None

        config = SupervisedSizerConfig(**self.overrides)
        if budget is not None:
            config.num_training_samples = max(10, budget)
        notify(callbacks, "on_start", self.id, env, budget)
        simulator, cache = _resolve_simulator(env, self.vectorize, self.cache_size)
        sizer = SupervisedSizer(env.benchmark, simulator, config, seed=seed)
        sizer.fit()
        design = sizer.design(target)

        objective = float(
            env.benchmark.spec_space.normalized_errors(design.predicted_specs, target).sum()
        )
        trace = NotifyingTrace(callbacks)
        trace.record(objective)
        result = OptimizationResult(
            best_parameters=design.parameters,
            best_objective=objective,
            best_specs=dict(design.predicted_specs),
            success=design.success,
            num_simulations=design.num_simulations,
            trace=trace,
            method=self.id,
            seed=seed,
            budget=budget,
            metadata={
                "sizer": sizer,
                "target_specs": dict(target),
                "training_simulations": config.num_training_samples,
            },
        )
        if cache is not None:
            result.metadata["simulation_cache"] = cache.stats
        notify(callbacks, "on_result", result)
        return result
