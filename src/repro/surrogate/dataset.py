"""Harvesting (parameters -> specs) training pairs from the disk cache.

Every sweep, serve session, or optimization run that points a
:class:`~repro.parallel.DiskSimulationCache` (or a
:class:`~repro.surrogate.TieredSimulator`) at a directory leaves behind one
JSON entry per exactly-simulated design point — the netlist name, the full
device-parameter vector, and the measured specifications.  That directory
*is* the surrogate's training corpus: :func:`harvest_corpus` decodes it into
dense arrays, skipping (and counting) corrupt files through the same
:func:`~repro.parallel.disk_cache.read_disk_entry` decoder the cache lookup
path uses, so the two consumers can never disagree about what is readable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.parallel.disk_cache import iter_disk_entries


@dataclass
class CorpusReport:
    """What a harvest saw in the directory (returned on every dataset)."""

    #: Entry files decoded into training rows.
    harvested: int = 0
    #: Unreadable/torn/hand-edited files (skipped; the cache heals them).
    corrupt: int = 0
    #: Readable entries written before the corpus fields existed (no
    #: parameter vector recorded) — servable by the cache, not trainable.
    legacy: int = 0
    #: Readable entries for other circuits than the requested one.
    foreign: int = 0
    #: Entries whose simulation was degenerate (``valid=False``) — excluded
    #: so the surrogate only learns the physical operating region.
    invalid: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "harvested": self.harvested,
            "corrupt": self.corrupt,
            "legacy": self.legacy,
            "foreign": self.foreign,
            "invalid": self.invalid,
        }


@dataclass
class SurrogateDataset:
    """A dense (parameters -> specs) corpus for one circuit topology.

    ``parameters`` is ``(N, D)`` over the netlist's full
    ``parameter_array()`` layout; ``specs`` is ``(N, S)`` with columns in
    ``spec_names`` order (sorted, so the layout is a pure function of the
    spec set and survives dict-ordering differences between writers).
    """

    circuit: str
    spec_names: Tuple[str, ...]
    parameters: np.ndarray
    specs: np.ndarray
    report: CorpusReport = field(default_factory=CorpusReport)

    def __post_init__(self) -> None:
        self.parameters = np.asarray(self.parameters, dtype=np.float64)
        self.specs = np.asarray(self.specs, dtype=np.float64)
        if self.parameters.ndim != 2 or self.specs.ndim != 2:
            raise ValueError("parameters and specs must be 2-D arrays")
        if self.parameters.shape[0] != self.specs.shape[0]:
            raise ValueError(
                f"row mismatch: {self.parameters.shape[0]} parameter rows vs "
                f"{self.specs.shape[0]} spec rows"
            )
        if self.specs.shape[1] != len(self.spec_names):
            raise ValueError(
                f"spec column mismatch: {self.specs.shape[1]} columns vs "
                f"{len(self.spec_names)} names"
            )
        self.spec_names = tuple(str(name) for name in self.spec_names)

    def __len__(self) -> int:
        return int(self.parameters.shape[0])

    @property
    def num_inputs(self) -> int:
        return int(self.parameters.shape[1])

    @property
    def num_specs(self) -> int:
        return int(self.specs.shape[1])

    def spec_dict(self, row: int) -> Dict[str, float]:
        """One row's specifications as a name-keyed mapping."""
        return {name: float(value) for name, value in zip(self.spec_names, self.specs[row])}


def corpus_circuits(directory: Union[str, os.PathLike]) -> Dict[str, int]:
    """Harvestable circuit name -> entry count for a cache directory."""
    counts: Dict[str, int] = {}
    for _, entry in iter_disk_entries(directory):
        if entry is None or entry.circuit is None or entry.parameters is None:
            continue
        counts[entry.circuit] = counts.get(entry.circuit, 0) + 1
    return counts


def harvest_corpus(
    directory: Union[str, os.PathLike],
    circuit: Optional[str] = None,
    include_invalid: bool = False,
) -> SurrogateDataset:
    """Decode a cache directory into a :class:`SurrogateDataset`.

    ``circuit`` selects the topology when the directory mixes several; when
    omitted, the directory must contain entries for exactly one circuit
    (the error message lists what it found otherwise).  Corrupt files are
    skipped and counted in the returned dataset's ``report`` — never raised,
    matching the cache's own heal-on-miss policy.
    """
    if circuit is None:
        counts = corpus_circuits(directory)
        if len(counts) > 1:
            inventory = ", ".join(f"{name} ({count})" for name, count in sorted(counts.items()))
            raise ValueError(
                f"corpus {os.fspath(directory)!r} holds several circuits ({inventory}); "
                "pass circuit=... to pick one"
            )
        circuit = next(iter(counts)) if counts else None

    report = CorpusReport()
    rows: List[Tuple[np.ndarray, Dict[str, float]]] = []
    spec_names: Optional[Tuple[str, ...]] = None
    num_inputs: Optional[int] = None
    for _, entry in iter_disk_entries(directory):
        if entry is None:
            report.corrupt += 1
            continue
        if entry.circuit is None or entry.parameters is None:
            report.legacy += 1
            continue
        if circuit is not None and entry.circuit != circuit:
            report.foreign += 1
            continue
        if not entry.result.valid and not include_invalid:
            report.invalid += 1
            continue
        names = tuple(sorted(entry.result.specs))
        if spec_names is None:
            spec_names, num_inputs = names, entry.parameters.size
        if names != spec_names or entry.parameters.size != num_inputs:
            # A stale entry from an older benchmark revision with a different
            # spec set or parameter layout: unusable for this corpus.
            report.foreign += 1
            continue
        rows.append((entry.parameters, entry.result.specs))
        report.harvested += 1

    if spec_names is None:
        spec_names = ()
        parameters = np.zeros((0, 0))
        specs = np.zeros((0, 0))
    else:
        parameters = np.stack([row for row, _ in rows])
        specs = np.array([[values[name] for name in spec_names] for _, values in rows])
    return SurrogateDataset(
        circuit=circuit if circuit is not None else "",
        spec_names=spec_names,
        parameters=parameters,
        specs=specs,
        report=report,
    )
