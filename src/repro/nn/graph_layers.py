"""Graph neural network layers operating on circuit-topology graphs.

The paper infuses circuit domain knowledge into the policy by processing the
full circuit graph (devices + supply/ground/bias nodes, dynamic device
parameters as node features) with either of two GNNs:

* :class:`GCNLayer` — graph convolution per Eq. (2) of the paper
  (Kipf & Welling, 2017): ``H^{l+1} = sigma(A* H^l W^l)`` with the
  symmetrically normalized adjacency ``A* = D^{-1/2} (A + I) D^{-1/2}``.
* :class:`GATLayer` — multi-head graph attention (Veličković et al., 2018),
  which the paper reports as modelling circuit-node interactions better than
  GCN (GAT-FC beats GCN-FC in Fig. 3 / Table 2).

Both operate on dense ``(n_nodes, features)`` tensors since analog circuit
graphs are tiny (tens of nodes), and both are differentiated end-to-end by the
autograd engine in :mod:`repro.nn.tensor`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.nn.layers import get_activation, get_array_activation, softmax_array
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Return ``A* = D^{-1/2} (A + I) D^{-1/2}`` used by GCN aggregation.

    Parameters
    ----------
    adjacency:
        Symmetric ``(n, n)`` adjacency matrix of the circuit graph (binary or
        weighted).
    add_self_loops:
        Whether to add the identity before normalizing, per Eq. (2).
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
    if not np.allclose(adjacency, adjacency.T):
        raise ValueError("adjacency must be symmetric for an undirected circuit graph")
    a_hat = adjacency + np.eye(adjacency.shape[0]) if add_self_loops else adjacency.copy()
    degrees = a_hat.sum(axis=1)
    if np.any(degrees <= 0):
        raise ValueError("graph contains an isolated node with zero degree after self-loops")
    d_inv_sqrt = 1.0 / np.sqrt(degrees)
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCNLayer(Module):
    """A single graph-convolution layer implementing Eq. (2) of the paper."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: str = "tanh",
        init: str = "xavier",
        bias: bool = True,
    ) -> None:
        super().__init__()
        initializer = get_initializer(init)
        if init == "he":
            self.weight = initializer(in_features, out_features, rng)
        else:
            self.weight = initializer(in_features, out_features, rng, gain=1.0)
        self.use_bias = bias
        if bias:
            self.bias = zeros(out_features)
        self.activation = get_activation(activation)
        self._activation_array = get_array_activation(activation)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, node_features: Tensor, norm_adjacency: np.ndarray) -> Tensor:
        """Apply ``sigma(A* H W)``.

        ``norm_adjacency`` is a constant (already-normalized) numpy matrix —
        the circuit topology does not change during an episode, so it carries
        no gradient.
        """
        aggregated = Tensor(norm_adjacency) @ node_features
        out = aggregated @ self.weight
        if self.use_bias:
            out = out + self.bias
        return self.activation(out)

    def forward_array(self, node_features: np.ndarray, norm_adjacency: np.ndarray) -> np.ndarray:
        """Grad-free forward over plain arrays (same arithmetic as ``forward``)."""
        out = (norm_adjacency @ node_features) @ self.weight.data
        if self.use_bias:
            out = out + self.bias.data
        return self._activation_array(out)


class GATLayer(Module):
    """Multi-head graph attention layer (GAT, Veličković et al. 2018).

    Attention coefficients between connected nodes *i* and *j* are computed
    as ``softmax_j(LeakyReLU(a^T [W h_i || W h_j]))`` per head, restricted to
    the 1-hop neighbourhood (including a self loop).  Head outputs are
    concatenated (hidden layers) or averaged (output layers).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        num_heads: int = 2,
        concat_heads: bool = True,
        activation: str = "tanh",
        negative_slope: float = 0.2,
        init: str = "xavier",
    ) -> None:
        super().__init__()
        if out_features % num_heads != 0 and concat_heads:
            raise ValueError(
                f"out_features ({out_features}) must be divisible by num_heads ({num_heads}) "
                "when heads are concatenated"
            )
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.head_dim = out_features // num_heads if concat_heads else out_features
        self.negative_slope = negative_slope
        self.activation = get_activation(activation)
        self._activation_array = get_array_activation(activation)
        self.in_features = in_features
        self.out_features = out_features

        initializer = get_initializer(init)
        self.head_weights: list[Tensor] = []
        self.attn_src: list[Tensor] = []
        self.attn_dst: list[Tensor] = []
        for head in range(num_heads):
            weight = initializer(in_features, self.head_dim, rng, gain=1.0)
            attn_src = initializer(self.head_dim, 1, rng, gain=1.0)
            attn_dst = initializer(self.head_dim, 1, rng, gain=1.0)
            # Register each parameter via attribute assignment so Module
            # traversal finds them.
            setattr(self, f"weight_head_{head}", weight)
            setattr(self, f"attn_src_head_{head}", attn_src)
            setattr(self, f"attn_dst_head_{head}", attn_dst)
            self.head_weights.append(weight)
            self.attn_src.append(attn_src)
            self.attn_dst.append(attn_dst)

    @staticmethod
    def attention_mask(adjacency: np.ndarray) -> np.ndarray:
        """Binary attention mask (adjacency + self-loops) used by every head.

        Exposed so the compiled-plan tracer (:mod:`repro.compile`) can bake
        the mask once per topology; both forwards derive it through this
        helper so the baked constant is bitwise-identical by construction.
        """
        adjacency = np.asarray(adjacency, dtype=np.float64)
        return ((adjacency + np.eye(adjacency.shape[0])) > 0).astype(np.float64)

    def _head_forward(self, node_features: Tensor, mask: np.ndarray, head: int) -> Tensor:
        transformed = node_features @ self.head_weights[head]  # (..., n, d)
        # e_ij = LeakyReLU(a_src . h_i + a_dst . h_j), dense (..., n, n) matrix.
        src_scores = transformed @ self.attn_src[head]  # (..., n, 1)
        dst_scores = transformed @ self.attn_dst[head]  # (..., n, 1)
        scores = (src_scores + dst_scores.swapaxes(-1, -2)).leaky_relu(self.negative_slope)
        # Mask non-edges with a large negative constant before the softmax.
        neg_inf = Tensor(np.full(mask.shape, -1e9))
        masked = scores * Tensor(mask) + neg_inf * Tensor(1.0 - mask)
        attention = masked.softmax(axis=-1)
        return Tensor(mask) * attention @ transformed

    def _head_forward_array(
        self, node_features: np.ndarray, mask: np.ndarray, head: int
    ) -> np.ndarray:
        """Pure-numpy twin of :meth:`_head_forward` (bitwise-equal arithmetic)."""
        transformed = node_features @ self.head_weights[head].data
        src_scores = transformed @ self.attn_src[head].data
        dst_scores = transformed @ self.attn_dst[head].data
        scores = src_scores + np.swapaxes(dst_scores, -1, -2)
        scores = scores * np.where(scores > 0, 1.0, self.negative_slope)
        masked = scores * mask + np.full(mask.shape, -1e9) * (1.0 - mask)
        attention = softmax_array(masked, axis=-1)
        return mask * attention @ transformed

    def forward(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        """Apply multi-head attention over the (unnormalized) adjacency.

        Self-loops are added so every node attends to itself, matching the
        usual GAT formulation.
        """
        mask = self.attention_mask(adjacency)
        head_outputs = [self._head_forward(node_features, mask, h) for h in range(self.num_heads)]
        if self.concat_heads:
            combined = concatenate(head_outputs, axis=-1)
        else:
            combined = head_outputs[0]
            for other in head_outputs[1:]:
                combined = combined + other
            combined = combined * (1.0 / self.num_heads)
        return self.activation(combined)

    def forward_array(self, node_features: np.ndarray, adjacency: np.ndarray) -> np.ndarray:
        """Grad-free forward over plain arrays (same arithmetic as ``forward``)."""
        mask = self.attention_mask(adjacency)
        head_outputs = [
            self._head_forward_array(node_features, mask, h) for h in range(self.num_heads)
        ]
        if self.concat_heads:
            combined = np.concatenate(head_outputs, axis=-1)
        else:
            combined = head_outputs[0]
            for other in head_outputs[1:]:
                combined = combined + other
            combined = combined * (1.0 / self.num_heads)
        return self._activation_array(combined)


class GraphReadout(Module):
    """Pool node embeddings into a fixed-size graph embedding.

    Four modes are supported:

    * ``mean`` / ``sum`` / ``max`` — permutation-invariant pooling; the
      embedding size is independent of the number of circuit nodes.
    * ``concat`` — concatenate the node embeddings in netlist order.  A
      circuit topology is *fixed* during training and deployment, so the
      ordering is well defined; this readout preserves per-device identity
      (which device's parameters produced which embedding), which speeds up
      credit assignment for the per-parameter action head.
    """

    def __init__(self, mode: str = "mean") -> None:
        super().__init__()
        if mode not in {"mean", "sum", "max", "concat"}:
            raise ValueError(f"unknown readout mode '{mode}'")
        self.mode = mode

    def forward(self, node_embeddings: Tensor) -> Tensor:
        """Pool ``(n, f)`` into ``(1, n_out)`` or batched ``(B, n, f)`` into ``(B, n_out)``."""
        if node_embeddings.ndim == 3:
            batch = node_embeddings.shape[0]
            if self.mode == "mean":
                return node_embeddings.mean(axis=1)
            if self.mode == "sum":
                return node_embeddings.sum(axis=1)
            if self.mode == "max":
                return node_embeddings.max(axis=1)
            return node_embeddings.reshape(batch, -1)
        if self.mode == "mean":
            pooled = node_embeddings.mean(axis=0, keepdims=True)
        elif self.mode == "sum":
            pooled = node_embeddings.sum(axis=0, keepdims=True)
        elif self.mode == "max":
            pooled = node_embeddings.max(axis=0, keepdims=True)
        else:
            pooled = node_embeddings.reshape(1, -1)
        return pooled

    def forward_array(self, node_embeddings: np.ndarray) -> np.ndarray:
        """Grad-free pooling over a plain array (same arithmetic as ``forward``).

        ``mean`` mirrors ``Tensor.mean`` — ``sum * (1 / count)`` — rather than
        ``ndarray.mean`` so the result is bitwise equal to the graded path.
        """
        if node_embeddings.ndim == 3:
            if self.mode == "mean":
                return node_embeddings.sum(axis=1) * (1.0 / node_embeddings.shape[1])
            if self.mode == "sum":
                return node_embeddings.sum(axis=1)
            if self.mode == "max":
                return node_embeddings.max(axis=1)
            return node_embeddings.reshape(node_embeddings.shape[0], -1)
        if self.mode == "mean":
            return node_embeddings.sum(axis=0, keepdims=True) * (1.0 / node_embeddings.shape[0])
        if self.mode == "sum":
            return node_embeddings.sum(axis=0, keepdims=True)
        if self.mode == "max":
            return node_embeddings.max(axis=0, keepdims=True)
        return node_embeddings.reshape(1, -1)


class GraphEncoder(Module):
    """Stack of GCN or GAT layers followed by a readout.

    This is the "Graph Embedding" branch of the multimodal policy network in
    Fig. 2 of the paper.

    Parameters
    ----------
    layer_sizes:
        Node-feature widths, ``[in, h1, ..., out]``.
    kind:
        ``"gcn"`` or ``"gat"``.
    num_heads:
        Attention heads for the GAT variant.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: np.random.Generator,
        kind: str = "gcn",
        num_heads: int = 2,
        activation: str = "tanh",
        readout: str = "mean",
        num_nodes: Optional[int] = None,
    ) -> None:
        super().__init__()
        kind = kind.lower()
        if kind not in {"gcn", "gat"}:
            raise ValueError(f"unknown graph encoder kind '{kind}', expected 'gcn' or 'gat'")
        if len(layer_sizes) < 2:
            raise ValueError("GraphEncoder requires at least input and output sizes")
        if readout == "concat" and (num_nodes is None or num_nodes <= 0):
            raise ValueError("concat readout requires num_nodes")
        self.kind = kind
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.num_nodes = num_nodes
        # One-entry operator cache: policies are driven by one environment
        # whose adjacency array is a stable object, so re-deriving the
        # normalized operator (GCN) every forward is pure overhead.  The
        # source reference is held strongly, which also guards against a
        # recycled ``id``.
        self._operator_source: Optional[np.ndarray] = None
        self._operator: Optional[np.ndarray] = None
        self.layers: list[Module] = []
        for index, (fan_in, fan_out) in enumerate(zip(self.layer_sizes[:-1], self.layer_sizes[1:])):
            if kind == "gcn":
                layer: Module = GCNLayer(fan_in, fan_out, rng, activation=activation)
            else:
                layer = GATLayer(fan_in, fan_out, rng, num_heads=num_heads, activation=activation)
            self.layers.append(layer)
            self.register_module(f"graph_layer_{index}", layer)
        self.readout = GraphReadout(readout)

    @property
    def out_features(self) -> int:
        if self.readout.mode == "concat":
            assert self.num_nodes is not None
            return self.layer_sizes[-1] * self.num_nodes
        return self.layer_sizes[-1]

    def bake_operator(self, adjacency: np.ndarray) -> np.ndarray:
        """Derive the layer-ready operator for ``adjacency`` (no caching).

        GCN layers consume the symmetrically normalized adjacency, GAT layers
        the raw float adjacency.  Exposed so the compiled-plan tracer
        (:mod:`repro.compile`) bakes exactly the operator the interpreted
        forward would derive.
        """
        if self.kind == "gcn":
            return normalized_adjacency(adjacency)
        return np.asarray(adjacency, dtype=np.float64)

    def _resolve_operator(self, adjacency: np.ndarray) -> np.ndarray:
        """The layer-ready operator for ``adjacency``, via the one-entry cache.

        Shared by the graded and grad-free forwards so both always derive
        (and cache) the operator identically.
        """
        if self._operator_source is not adjacency or self._operator is None:
            operator = self.bake_operator(adjacency)
            self._operator_source = adjacency if isinstance(adjacency, np.ndarray) else None
            self._operator = operator
        return self._operator

    def forward(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        """Return a ``(1, out_features)`` graph embedding.

        ``adjacency`` is the raw symmetric adjacency matrix; normalization
        (GCN) or masking (GAT) is handled internally.  A batched
        ``(B, n, features)`` input produces a ``(B, out_features)`` embedding
        — the topology (one adjacency) is shared across the batch, which is
        exactly the :class:`~repro.parallel.VectorCircuitEnv` situation.
        """
        operator = self._resolve_operator(adjacency)
        hidden = node_features
        for layer in self.layers:
            hidden = layer(hidden, operator)
        return self.readout(hidden)

    def forward_array(self, node_features: np.ndarray, adjacency: np.ndarray) -> np.ndarray:
        """Grad-free encoder forward over plain arrays (inference fast path).

        Shares the one-entry normalized-operator cache with :meth:`forward`,
        and produces bitwise-identical embeddings (every layer mirrors its
        graded arithmetic exactly).
        """
        operator = self._resolve_operator(adjacency)
        hidden = np.asarray(node_features, dtype=np.float64)
        for layer in self.layers:
            hidden = layer.forward_array(hidden, operator)
        return self.readout.forward_array(hidden)
