"""Engine mechanics: suppressions, fingerprints, baselines, file discovery."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    analyze_paths,
    analyze_source,
    baseline_document,
    load_baseline,
    split_baseline,
)
from repro.analysis.engine import BASELINE_VERSION, iter_python_files

FLAGGED = """
def check(x):
    return x == 0.5
"""


def analyze(source, path="src/pkg/module.py"):
    return analyze_source(textwrap.dedent(source), path)


class TestSuppressions:
    def test_same_line_noqa_with_reason_suppresses(self):
        findings = analyze(
            """
            def check(x):
                return x == 0.5  # repro: noqa[REP-FLT01] exact sentinel by construction
            """
        )
        assert findings == []

    def test_standalone_noqa_above_suppresses_next_code_line(self):
        findings = analyze(
            """
            def check(x):
                # repro: noqa[REP-FLT01] exact sentinel by construction
                return x == 0.5
            """
        )
        assert findings == []

    def test_standalone_noqa_skips_blank_and_comment_lines(self):
        findings = analyze(
            """
            def check(x):
                # repro: noqa[REP-FLT01] exact sentinel by construction

                # unrelated comment
                return x == 0.5
            """
        )
        assert findings == []

    def test_noqa_without_reason_leaves_finding_live(self):
        findings = analyze(
            """
            def check(x):
                return x == 0.5  # repro: noqa[REP-FLT01]
            """
        )
        assert len(findings) == 1
        assert "missing a reason" in findings[0].message

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        findings = analyze(
            """
            def check(x):
                return x == 0.5  # repro: noqa[REP-DET01] wrong rule entirely
            """
        )
        assert len(findings) == 1
        assert "missing a reason" not in findings[0].message

    def test_multi_rule_noqa_suppresses_both(self):
        findings = analyze(
            """
            import time

            def cache_key(x):
                return (x, time.time() == 0.5)  # repro: noqa[REP-DET02, REP-FLT01] fixture
            """,
            path="src/pkg/parallel/cache.py",
        )
        assert findings == []

    def test_noqa_only_covers_its_own_line(self):
        findings = analyze(
            """
            def check(x):
                a = x == 0.5  # repro: noqa[REP-FLT01] documented sentinel
                b = x == 0.5
                return a or b
            """
        )
        assert len(findings) == 1
        assert findings[0].line == 4


class TestFingerprints:
    def test_stable_under_line_drift(self):
        before = analyze(FLAGGED)
        after = analyze("\n# a new comment pushing everything down\n" + FLAGGED)
        assert len(before) == len(after) == 1
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_changes_when_flagged_line_changes(self):
        a = analyze(FLAGGED)
        b = analyze(FLAGGED.replace("0.5", "0.25"))
        assert a[0].fingerprint != b[0].fingerprint

    def test_changes_with_path(self):
        a = analyze(FLAGGED, path="src/pkg/a.py")
        b = analyze(FLAGGED, path="src/pkg/b.py")
        assert a[0].fingerprint != b[0].fingerprint

    def test_finding_dict_and_render_shape(self):
        (finding,) = analyze(FLAGGED)
        payload = finding.to_dict()
        assert payload["rule"] == "REP-FLT01"
        assert payload["fingerprint"] == finding.fingerprint
        assert set(payload) == {
            "rule", "path", "line", "col", "message", "hint", "fingerprint"
        }
        assert finding.render().startswith("src/pkg/module.py:3:")


class TestBaseline:
    def test_roundtrip_document_absorbs_findings(self, tmp_path):
        findings = analyze(FLAGGED)
        document = baseline_document(findings)
        assert document["version"] == BASELINE_VERSION
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        new, matched, stale = split_baseline(findings, load_baseline(path))
        assert new == [] and stale == []
        assert [f.fingerprint for f in matched] == [f.fingerprint for f in findings]

    def test_each_entry_absorbs_at_most_one_finding(self):
        findings = analyze(
            """
            def check(x, y):
                a = x == 0.5
                b = y == 0.5
                return a or b
            """
        )
        assert len(findings) == 2
        # Both findings share neither line nor text, so grandfather only one.
        entries = baseline_document(findings[:1])["findings"]
        new, matched, stale = split_baseline(findings, entries)
        assert len(matched) == 1 and len(new) == 1 and stale == []
        # A duplicated pattern (identical source text) needs two entries.
        twice = analyze(
            """
            def check(x):
                return x == 0.5

            def check_again(x):
                return x == 0.5
            """
        )
        assert len(twice) == 2
        assert twice[0].fingerprint == twice[1].fingerprint
        one_entry = baseline_document(twice[:1])["findings"]
        new, matched, _ = split_baseline(twice, one_entry)
        assert len(matched) == 1 and len(new) == 1

    def test_fixed_finding_reports_stale_entry(self):
        findings = analyze(FLAGGED)
        entries = baseline_document(findings)["findings"]
        new, matched, stale = split_baseline([], entries)
        assert new == [] and matched == []
        assert len(stale) == 1

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 999, "findings": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_load_rejects_non_list_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": BASELINE_VERSION, "findings": {}}), encoding="utf-8"
        )
        with pytest.raises(ValueError):
            load_baseline(path)


class TestPathAnalysis:
    def test_iter_python_files_recurses_and_skips_hidden(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "pkg" / "b.txt").write_text("not python\n", encoding="utf-8")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "c.py").write_text("y = 2\n", encoding="utf-8")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py"]

    def test_iter_python_files_rejects_non_python_file(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello\n", encoding="utf-8")
        with pytest.raises(FileNotFoundError):
            iter_python_files([target])

    def test_analyze_paths_collects_findings_and_syntax_errors(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def check(x):\n    return x == 0.5\n", encoding="utf-8")
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = analyze_paths([tmp_path])
        assert report.files == 2
        assert [f.rule for f in report.findings] == ["REP-FLT01"]
        assert len(report.errors) == 1 and "syntax error" in report.errors[0]
        assert report.by_rule() == {"REP-FLT01": 1}
