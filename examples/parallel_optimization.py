"""The parallel API: every optimizer on the num_envs=8 vector path.

This example is the batched twin of ``baselines_comparison.py``.  Every
registered optimizer runs against the same op-amp target group through the
identical ``optimize()`` protocol, but the evaluation goes through the
``repro.parallel`` subsystem:

* the RL row trains on a ``VectorCircuitEnv`` — 8 environment instances
  stepped as one batch through the policy's batched forward pass
  (``vectorize=8``);
* the search baselines (GA / BO / random) score candidate populations through
  the batched ``SizingProblem`` path with a shared ``SimulationCache``, so
  duplicate candidates (population elites, revisited grid points) are
  simulated once;
* the supervised sizer generates its training dataset with batched design
  sampling behind the same cache.

Search-baseline results are *identical* to the sequential path —
vectorization batches the bookkeeping and the policy math, never the physics
(see ``tests/parallel/test_vector_env_parity.py``) — so those rows match
``baselines_comparison.py`` at equal budgets and seeds, just faster, with a
cache column showing where the simulations went.  The RL row is the one
documented exception: batched rollout collection consumes the RNG in batch
order across ``num_envs`` sub-environments, so its trained policy differs
from the sequential run (deterministic *deployment* of any given policy
still matches exactly).

Run with:  python examples/parallel_optimization.py [--num-envs N] [--episodes N]
"""

from __future__ import annotations

import argparse

import repro

TARGET = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}


def method_table(args: argparse.Namespace):
    """(optimizer id, label, budget, constructor params) for every method."""
    return (
        ("genetic", "Genetic Algorithm", args.search_budget, {}),
        ("bayesian", "Bayesian Optimization", max(12, args.search_budget // 4), {}),
        ("random", "Random Search", args.search_budget, {}),
        ("supervised", "Supervised Learning", args.sl_samples, {"epochs": args.sl_epochs}),
        ("ppo", "GCN-FC RL deployment", args.episodes, {"policy": "gcn_fc"}),
    )


def cache_column(result) -> str:
    """Render the simulation-cache statistics of one run, if it kept any."""
    stats = result.metadata.get("simulation_cache")
    if stats is None or stats.lookups == 0:
        return "-"
    return f"{stats.hits}/{stats.lookups} ({100.0 * stats.hit_rate:.0f}%)"


def main(args: argparse.Namespace) -> None:
    repro.seed_everything(args.seed)
    env = repro.make_env("opamp-p2s-v0", seed=args.seed)
    rows = []

    print(f"Vector path: every optimizer with vectorize={args.num_envs}")
    print(f"Target specification group: {TARGET}\n")
    for index, (method, label, budget, params) in enumerate(method_table(args), start=1):
        print(f"[{index}/5] {label} (budget {budget}, vectorize {args.num_envs}) ...")
        optimizer = repro.make_optimizer(method, vectorize=args.num_envs, **params)
        result = optimizer.optimize(env, budget=budget, seed=args.seed, target_specs=TARGET)
        rows.append((label, result.num_simulations, result.success, cache_column(result)))

    print("\nPer-design comparison through the num_envs=%d vector path:" % args.num_envs)
    print(f"  {'method':<26s} {'evaluations':>12s} {'all specs met':>14s} {'cache hits':>16s}")
    for name, calls, success, cache in rows:
        print(f"  {name:<26s} {calls:>12d} {str(bool(success)):>14s} {cache:>16s}")
    print(
        "\nThe search-baseline rows match examples/baselines_comparison.py at equal"
        "\nbudgets/seeds — the vector path changes their throughput, never their"
        "\nresults (parity is enforced by tests/parallel/).  The RL row trains on"
        "\nbatched rollouts (different RNG consumption), so its policy differs from"
        "\nthe sequential run.  'evaluations' counts objective queries; the cache"
        "\ncolumn shows how many were answered without a simulation."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-envs", type=int, default=8,
                        help="vector-path width: parallel envs for RL, shared-cache "
                             "population evaluation for the baselines (default 8)")
    parser.add_argument("--episodes", type=int, default=200,
                        help="RL training episodes (default 200; paper uses 35000)")
    parser.add_argument("--search-budget", type=int, default=400,
                        help="simulator-call budget for the search baselines")
    parser.add_argument("--sl-samples", type=int, default=600,
                        help="training designs for the supervised sizer")
    parser.add_argument("--sl-epochs", type=int, default=60,
                        help="training epochs for the supervised sizer")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    main(parser.parse_args())
