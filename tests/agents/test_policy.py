"""Tests for the multimodal policy and the baseline policy variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_policy
from repro.agents.policy import ActorCriticPolicy, PolicyConfig
from repro.env.spaces import NUM_ACTION_CHOICES


@pytest.fixture
def observation(opamp_env):
    return opamp_env.reset(
        target_specs={"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
    )


class TestConfigValidation:
    def test_requires_positive_dims(self):
        with pytest.raises(ValueError):
            PolicyConfig(num_parameters=0, spec_feature_dim=4)
        with pytest.raises(ValueError):
            PolicyConfig(num_parameters=3, spec_feature_dim=0)
        with pytest.raises(ValueError):
            PolicyConfig(num_parameters=3, spec_feature_dim=4, use_graph=True, node_feature_dim=0)

    def test_concat_readout_needs_num_nodes(self):
        with pytest.raises(ValueError):
            PolicyConfig(
                num_parameters=3, spec_feature_dim=4, node_feature_dim=5,
                num_graph_nodes=0, graph_readout="concat",
            )

    def test_unknown_graph_kind(self):
        with pytest.raises(ValueError):
            PolicyConfig(
                num_parameters=3, spec_feature_dim=4, node_feature_dim=5,
                num_graph_nodes=6, graph_kind="sage",
            )


class TestForwardPasses:
    @pytest.mark.parametrize("policy_id", ["gcn_fc", "gat_fc", "baseline_a", "baseline_b"])
    def test_distribution_shape(self, opamp_env, observation, policy_id, rng):
        policy = make_policy(policy_id, opamp_env, rng)
        distribution = policy.action_distribution(observation)
        assert distribution.probs.shape == (opamp_env.num_parameters, NUM_ACTION_CHOICES)
        np.testing.assert_allclose(distribution.probs.sum(axis=1), 1.0)

    def test_value_is_scalar(self, opamp_env, observation, rng):
        policy = make_policy("gcn_fc", opamp_env, rng)
        value = policy.value(observation)
        assert value.size == 1
        assert np.isfinite(value.item())

    def test_act_returns_valid_action(self, opamp_env, observation, rng):
        policy = make_policy("gat_fc", opamp_env, rng)
        action, log_prob, value = policy.act(observation, rng)
        assert opamp_env.action_space.contains(action)
        assert np.isfinite(log_prob) and np.isfinite(value)

    def test_deterministic_act_is_mode(self, opamp_env, observation, rng):
        policy = make_policy("gcn_fc", opamp_env, rng)
        action_a, _, _ = policy.act(observation, rng, deterministic=True)
        action_b, _, _ = policy.act(observation, np.random.default_rng(999), deterministic=True)
        np.testing.assert_array_equal(action_a, action_b)

    def test_evaluate_actions_consistent_with_act(self, opamp_env, observation, rng):
        policy = make_policy("gcn_fc", opamp_env, rng)
        action, log_prob, value = policy.act(observation, rng)
        log_prob_eval, value_eval, entropy = policy.evaluate_actions(observation, action)
        assert float(log_prob_eval.item()) == pytest.approx(log_prob)
        assert float(value_eval.item()) == pytest.approx(value)
        assert float(entropy.item()) >= 0.0

    def test_gradients_reach_both_branches(self, opamp_env, observation, rng):
        policy = make_policy("gcn_fc", opamp_env, rng)
        action, _, _ = policy.act(observation, rng)
        log_prob, value, entropy = policy.evaluate_actions(observation, action)
        (log_prob + value + entropy).backward()
        grads = [name for name, p in policy.named_parameters() if p.grad is not None]
        assert any("graph_encoder" in name for name in grads)
        assert any("spec_encoder" in name for name in grads)
        assert any("actor_head" in name for name in grads)
        assert any("critic_head" in name for name in grads)


class TestArchitectureDifferences:
    def test_baseline_a_has_no_graph_branch(self, opamp_env, rng):
        policy = make_policy("baseline_a", opamp_env, rng)
        names = [name for name, _ in policy.named_parameters()]
        assert not any("graph_encoder" in name for name in names)

    def test_baseline_b_has_no_spec_encoder(self, opamp_env, rng):
        policy = make_policy("baseline_b", opamp_env, rng)
        names = [name for name, _ in policy.named_parameters()]
        assert any("graph_encoder" in name for name in names)
        assert not any("spec_encoder" in name for name in names)

    def test_gat_uses_attention_parameters(self, opamp_env, rng):
        policy = make_policy("gat_fc", opamp_env, rng)
        names = [name for name, _ in policy.named_parameters()]
        assert any("attn_src" in name for name in names)

    def test_baseline_b_static_features_ignore_sizing(self, opamp_env, rng):
        """With static node features, only the raw spec block reacts to sizing."""
        policy = make_policy("baseline_b", opamp_env, rng, use_dynamic_node_features=False,
                             include_parameters=False)
        observation = opamp_env.reset(
            target_specs={"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        )
        before = policy.action_distribution(observation).probs.copy()
        # Change only the netlist-derived dynamic features.
        modified = observation
        modified.node_features[:, -2:] += 0.3
        after = policy.action_distribution(modified).probs
        np.testing.assert_allclose(before, after)

    def test_make_policy_by_name(self, opamp_env, rng):
        for name in ("gcn_fc", "gat_fc", "baseline_a", "baseline_b"):
            assert isinstance(make_policy(name, opamp_env, rng), ActorCriticPolicy)
        with pytest.raises(ValueError):
            make_policy("alphazero", opamp_env, rng)


class TestTransferability:
    def test_state_dict_roundtrip_preserves_behaviour(self, opamp_env, observation, rng):
        source = make_policy("gcn_fc", opamp_env, np.random.default_rng(0))
        target = make_policy("gcn_fc", opamp_env, np.random.default_rng(1))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(
            source.action_distribution(observation).probs,
            target.action_distribution(observation).probs,
        )

    def test_policy_works_on_rf_pa_env(self, rf_pa_env, rng):
        policy = make_policy("gcn_fc", rf_pa_env, rng)
        observation = rf_pa_env.reset()
        action, _, _ = policy.act(observation, rng)
        assert action.shape == (14,)
