"""Circuit substrate: devices, netlists, tunable parameters, specifications.

The modules in this package describe *what* is being designed — the circuit
topology, the Table 1 design space of device parameters, and the Table 1
sampling space of desired specifications — independently of *how* it is
simulated (:mod:`repro.simulation`) or optimized (:mod:`repro.agents`,
:mod:`repro.baselines`).
"""

from repro.circuits.devices import (
    Device,
    DeviceType,
    DEVICE_TYPE_ORDER,
    bias,
    capacitor,
    current_source,
    gan_hemt,
    ground,
    inductor,
    nmos,
    pmos,
    resistor,
    supply,
)
from repro.circuits.library import (
    BENCHMARK_BUILDERS,
    CircuitBenchmark,
    build_common_source_lna,
    build_current_mirror_ota,
    build_folded_cascode,
    build_rf_pa,
    build_two_stage_opamp,
)
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import ACTION_DELTAS, DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

__all__ = [
    "ACTION_DELTAS",
    "BENCHMARK_BUILDERS",
    "CircuitBenchmark",
    "DEVICE_TYPE_ORDER",
    "Device",
    "DeviceType",
    "DesignParameter",
    "DesignSpace",
    "Netlist",
    "Objective",
    "Specification",
    "SpecificationSpace",
    "bias",
    "build_common_source_lna",
    "build_current_mirror_ota",
    "build_folded_cascode",
    "build_rf_pa",
    "build_two_stage_opamp",
    "capacitor",
    "current_source",
    "gan_hemt",
    "ground",
    "inductor",
    "nmos",
    "pmos",
    "resistor",
    "supply",
]
