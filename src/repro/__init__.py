"""repro — domain knowledge-infused RL for analog/RF circuit sizing.

A from-scratch reproduction of "Domain Knowledge-Infused Deep Learning for
Automated Analog/Radio-Frequency Circuit Parameter Optimization" (DAC 2022).

Package map
-----------
``repro.nn``          numpy autograd, dense/graph layers, Adam, distributions
``repro.circuits``    devices, netlists, design spaces, spec spaces, benchmarks
``repro.graph``       circuit-topology graphs and node features
``repro.simulation``  technology models, MNA mini-SPICE, op-amp / PA evaluators
``repro.env``         the P2S / FoM circuit design environment
``repro.agents``      GNN-FC multimodal policy, baselines, PPO, deployment
``repro.baselines``   genetic algorithm, Bayesian optimization, SL sizer
``repro.experiments`` harnesses regenerating every paper table and figure
"""

from repro.agents import (
    PPOConfig,
    PPOTrainer,
    deploy_policy,
    evaluate_deployment,
    make_baseline_a_policy,
    make_baseline_b_policy,
    make_gat_fc_policy,
    make_gcn_fc_policy,
    make_policy,
)
from repro.circuits import build_rf_pa, build_two_stage_opamp
from repro.env import make_opamp_env, make_rf_pa_env, make_rf_pa_fom_env

__version__ = "1.0.0"

__all__ = [
    "PPOConfig",
    "PPOTrainer",
    "__version__",
    "build_rf_pa",
    "build_two_stage_opamp",
    "deploy_policy",
    "evaluate_deployment",
    "make_baseline_a_policy",
    "make_baseline_b_policy",
    "make_gat_fc_policy",
    "make_gcn_fc_policy",
    "make_opamp_env",
    "make_policy",
    "make_rf_pa_env",
    "make_rf_pa_fom_env",
]
