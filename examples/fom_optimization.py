"""Figure-of-merit optimization of the RF PA (Fig. 7 / Table 2, last column).

Maximizes FoM = Pout + 3 * efficiency three ways and compares the outcomes:

* the GCN-FC RL agent retrained with the FoM reward (coarse simulator,
  scored on the fine simulator),
* the Genetic Algorithm, and
* Bayesian Optimization,

mirroring the comparison of Fig. 7.

Run with:  python examples/fom_optimization.py [--episodes N]
"""

from __future__ import annotations

import argparse

from repro.api import seed_everything
from repro.experiments import run_fom_optimizer, run_fom_training
from repro.experiments.configs import bench_scale


def main(episodes: int, ga_budget: int, bo_budget: int, seed: int = 0) -> None:
    seed_everything(seed)
    scale = bench_scale()
    print(f"FoM definition: P + 3*E (paper Sec. 4); upper bound with this substrate ~6.1")

    print(f"\n[1/3] Training GCN-FC with the FoM reward for {episodes} episodes ...")
    rl_result = run_fom_training("gcn_fc", scale=scale, seed=seed, total_episodes=episodes)
    print(f"  best FoM (fine simulator)   : {rl_result.best_fom:.3f}")
    print(f"  at Pout = {rl_result.final_specs.get('output_power', float('nan')):.2f} W, "
          f"efficiency = {rl_result.final_specs.get('efficiency', float('nan')):.1%}")

    print("\n[2/3] Genetic Algorithm maximizing the FoM ...")
    ga = run_fom_optimizer("genetic_algorithm", seed=seed, budget=ga_budget)
    print(f"  best FoM: {ga.best_fom:.3f}   ({ga.num_simulations} simulations)")

    print("\n[3/3] Bayesian Optimization maximizing the FoM ...")
    bo = run_fom_optimizer("bayesian_optimization", seed=seed, budget=bo_budget)
    print(f"  best FoM: {bo.best_fom:.3f}   ({bo.num_simulations} simulations)")

    print("\nSummary (paper-scale reference values: GAT-FC 3.25, GCN-FC 3.18, "
          "Baselines ~2.8-2.9, BO 2.61, GA 2.53):")
    for name, value in (
        ("GCN-FC (RL)", rl_result.best_fom),
        ("Bayesian Optimization", bo.best_fom),
        ("Genetic Algorithm", ga.best_fom),
    ):
        print(f"  {name:<24s} FoM = {value:.3f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=120,
                        help="RL training episodes for the FoM reward (paper uses 3500)")
    parser.add_argument("--ga-budget", type=int, default=150,
                        help="simulator-call budget for the genetic algorithm")
    parser.add_argument("--bo-budget", type=int, default=60,
                        help="simulator-call budget for Bayesian optimization")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    args = parser.parse_args()
    main(args.episodes, args.ga_budget, args.bo_budget, args.seed)
