"""Tests for the action space and observation container."""

from __future__ import annotations

import numpy as np

from repro.env.spaces import (
    ACTION_DECREASE,
    ACTION_INCREASE,
    ACTION_KEEP,
    NUM_ACTION_CHOICES,
    ActionSpace,
    Observation,
)


class TestActionSpace:
    def test_shape(self):
        space = ActionSpace(15)
        assert space.shape == (15, 3)
        assert NUM_ACTION_CHOICES == 3

    def test_sample_and_contains(self, rng):
        space = ActionSpace(14)
        for _ in range(20):
            action = space.sample(rng)
            assert space.contains(action)

    def test_no_op(self):
        space = ActionSpace(5)
        np.testing.assert_array_equal(space.no_op(), np.full(5, ACTION_KEEP))

    def test_contains_rejects_bad_shapes_and_values(self):
        space = ActionSpace(4)
        assert not space.contains(np.zeros(3, dtype=np.int64))
        assert not space.contains(np.full(4, 3, dtype=np.int64))
        assert not space.contains(np.full(4, -1, dtype=np.int64))
        assert not space.contains(np.zeros(4))  # floats rejected

    def test_action_index_constants(self):
        assert (ACTION_DECREASE, ACTION_KEEP, ACTION_INCREASE) == (0, 1, 2)


class TestObservation:
    def test_flat_vector_concatenates_spec_and_parameters(self):
        observation = Observation(
            node_features=np.zeros((5, 12)),
            static_node_features=np.zeros((5, 12)),
            adjacency=np.eye(5),
            spec_features=np.array([0.1, 0.2, 0.3]),
            normalized_parameters=np.array([0.5, 0.6]),
            measured_specs={"gain": 100.0},
            target_specs={"gain": 400.0},
        )
        np.testing.assert_allclose(observation.flat_vector(), [0.1, 0.2, 0.3, 0.5, 0.6])
        assert observation.num_nodes == 5
        assert observation.num_parameters == 2
