"""Every example script runs end-to-end with a tiny budget.

Each example is executed as a subprocess exactly as a user would run it,
with budgets shrunk far below the defaults so the whole module stays in the
tens of seconds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"

#: script -> tiny-budget CLI arguments
EXAMPLE_ARGS = {
    "quickstart.py": ["--budget", "8"],
    "baselines_comparison.py": [
        "--episodes", "4", "--search-budget", "12", "--sl-samples", "40", "--sl-epochs", "2",
    ],
    "opamp_design.py": ["--episodes", "4", "--eval-targets", "2"],
    "rf_pa_design.py": ["--episodes", "4", "--eval-targets", "2", "--fidelity-samples", "6"],
    "fom_optimization.py": ["--episodes", "4", "--ga-budget", "12", "--bo-budget", "8"],
    "parallel_optimization.py": [
        "--num-envs", "4", "--episodes", "4", "--search-budget", "12",
        "--sl-samples", "40", "--sl-epochs", "2",
    ],
    "topology_zoo.py": [
        "--episodes", "4", "--search-budget", "8",
        "--circuits", "two_stage_opamp", "common_source_lna",
    ],
    "sweep_orchestration.py": ["--budget", "6", "--workers", "2"],
    "serve_gateway.py": ["--requests", "6", "--batch-size", "3"],
    "serve_policy.py": ["--episodes", "4", "--targets", "3", "--batch-size", "2"],
    "surrogate_prescreen.py": ["--budget", "60", "--epochs", "120", "--tier-points", "120"],
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), "new examples must be added to EXAMPLE_ARGS"


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *EXAMPLE_ARGS[script]],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script} failed\n--- stdout ---\n{completed.stdout[-2000:]}"
        f"\n--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
