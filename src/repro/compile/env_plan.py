"""Compiled per-topology episode plan for the vectorized environment.

:class:`CompiledEpisodePlan` replaces ``VectorCircuitEnv.step``'s per-env
Python loop (``K`` × [action snap → netlist rewrite → simulate → reward →
observation]) with a handful of batched array operations plus one slim
sequential bookkeeping pass, while producing **bitwise-identical** episode
trajectories — observations, rewards, done flags, info dicts, trajectory
records, and shared-cache statistics all match the interpreted path exactly.

How the parity is kept
----------------------
* **Physics**: the per-env scalar simulator is replaced by a vectorized twin
  from :mod:`repro.compile.sim_kernels` whose every expression mirrors the
  scalar association; the build probes the kernel against the real simulator
  on a spread of snapped design points and refuses (raises
  :class:`UntraceableError`) on any bit mismatch.
* **Action math**: :class:`~repro.circuits.parameters.DesignSpace`'s vector
  methods are already elementwise-equal to the scalar path, so the batched
  double-snap (``snap_vector(apply_actions(...))``) reproduces the
  interpreted ``apply_actions`` → ``apply_to_netlist`` sequence.
* **Cache semantics**: the shared :class:`SimulationCache` is replayed
  entry-for-entry in env order — hit/miss/eviction counters, LRU order and
  the *cached* spec dicts (which may be quantized-equal but not bitwise-equal
  to the kernel's row) are exactly what the interpreted loop would produce.
  Keys are computed vectorized with the cache's own binary-mantissa
  quantization.
* **Interleaving**: the interpreted loop fully processes env ``i`` —
  including an autoreset's simulator/cache traffic — before env ``i+1``.
  The compiled step therefore does all *pure* math batched up front, then
  runs one sequential bookkeeping loop in env order for everything that is
  order-sensitive (cache ops, trajectory records, inline interpreted
  resets).
* **Degrades gracefully, never wrongly**: any precondition the batched path
  cannot honor exactly — a finished episode in the batch, malformed or
  out-of-range actions, an incomplete target group — routes the *whole* step
  to the interpreted implementation, which reproduces the exact partial
  mutations and exceptions of the sequential contract.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.specs import Objective
from repro.compile.errors import UntraceableError
from repro.compile.sim_kernels import build_simulator_kernel
from repro.env.circuit_env import StepRecord
from repro.env.reward import P2SReward, RewardOutcome
from repro.env.spaces import BatchedObservation, Observation
from repro.parallel.cache import SimulationCache
from repro.simulation.base import SimulationResult

#: Number of probe points the build-time bitwise check evaluates (beyond the
#: three deterministic ones: center, lower bound, upper bound).
_PROBE_RANDOM_POINTS = 5

#: numpy's add.reduce is strictly left-to-right only below its 8-wide unroll;
#: the inlined scalar reward replica relies on that to match
#: ``np.array(errors).sum()`` bitwise, so wider spec spaces take the
#: interpreted reward call instead.
_MAX_SEQUENTIAL_SUM = 8


def _bitwise_equal(a: float, b: float) -> bool:
    return np.float64(a).tobytes() == np.float64(b).tobytes()


class _SpecMath:
    """Baked per-spec constants for the vectorized observation/reward math."""

    def __init__(self, spec_space) -> None:
        self.space = spec_space
        self.names: List[str] = list(spec_space.names)
        self.minimize = np.array(
            [spec.objective is Objective.MINIMIZE for spec in spec_space]
        )
        self.mins = np.array([spec.minimum for spec in spec_space])
        self.spans = np.array([spec.maximum - spec.minimum for spec in spec_space])

    def matrix(self, dicts: List[Dict[str, float]]) -> np.ndarray:
        return np.array([[float(values[name]) for name in self.names] for values in dicts])

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        """Twin of ``SpecificationSpace.normalize`` over stacked rows."""
        return (matrix - self.mins) / self.spans

    def raw_errors(self, measured: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Twin of ``SpecificationSpace.normalized_errors`` (non-defensive)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            denominator = np.abs(measured) + np.abs(targets)
            difference = (measured - targets) / denominator
        difference = np.where(self.minimize, -difference, difference)
        clipped = np.where(difference > 0.0, 0.0, difference)
        return np.where(denominator <= 0.0, 0.0, clipped)


class CompiledEpisodePlan:
    """One vector env's compiled step, bound to its sub-environments.

    Raises :class:`UntraceableError` from the constructor when any part of
    the configuration has no exact batched twin; the caller (the
    :class:`~repro.compile.plan_cache.PlanCache` inside
    ``VectorCircuitEnv``) then falls back to the interpreted step for good.
    """

    def __init__(self, vector_env) -> None:
        envs = list(vector_env.envs)
        self._vector_env = vector_env
        self._envs = envs
        self.num_envs = len(envs)
        self.steps_compiled = 0
        self.fallback_steps = 0
        self.last_fallback_reason: Optional[str] = None

        first = envs[0]
        benchmark = first.benchmark
        for env in envs:
            if env.benchmark is not benchmark:
                raise UntraceableError("sub-environments must share one benchmark object")
            if env.simulator is not first.simulator:
                raise UntraceableError("sub-environments must share one simulator object")
            if env.reward_fn is not first.reward_fn:
                raise UntraceableError("sub-environments must share one reward function")
        self._design_space = benchmark.design_space
        self._parameters = list(self._design_space)
        self.num_parameters = len(self._parameters)

        # --- simulator / cache resolution -----------------------------
        simulator = first.simulator
        if type(simulator) is SimulationCache:
            self._cache: Optional[SimulationCache] = simulator
            inner = simulator.simulator
        elif isinstance(simulator, SimulationCache):
            raise UntraceableError(
                f"cannot replay cache subclass {type(simulator).__name__} exactly"
            )
        else:
            self._cache = None
            inner = simulator
        self._simulator = inner

        # --- parameter layout -----------------------------------------
        base_netlist = first.data_processor.netlist
        self._name_bytes = base_netlist.name.encode()
        base_row = base_netlist.parameter_array()
        from repro.compile.sim_kernels import param_flat_index

        self._knob_cols = np.array(
            [
                param_flat_index(base_netlist, p.device, p.attribute)
                for p in self._parameters
            ]
        )
        knob_mask = np.zeros(base_row.shape[0], dtype=bool)
        knob_mask[self._knob_cols] = True
        fixed = base_row[~knob_mask]
        for env in envs:
            row = env.data_processor.netlist.parameter_array()
            if row[~knob_mask].tobytes() != fixed.tobytes():
                raise UntraceableError(
                    "sub-environments disagree on non-tunable netlist parameters"
                )
            if env.data_processor.netlist.name != base_netlist.name:
                raise UntraceableError("sub-environments disagree on the netlist name")
        self._base_row = base_row
        self._full = np.tile(base_row, (self.num_envs, 1))
        # Per-env (device-parameter dict, key) pairs for the knob writes —
        # Device.set_parameter is a key check plus ``dict[key] = float(v)``,
        # so with keys validated here a direct dict store is identical.
        self._knob_writes = []
        for env in envs:
            writes = []
            for parameter in self._parameters:
                device = env.data_processor.netlist.device(parameter.device)
                if parameter.attribute not in device.parameters:
                    raise UntraceableError(
                        f"device '{parameter.device}' has no parameter "
                        f"'{parameter.attribute}'"
                    )
                writes.append((device.parameters, parameter.attribute))
            self._knob_writes.append(writes)

        # --- simulator kernel + build-time bitwise probe ---------------
        self._kernel = build_simulator_kernel(inner, base_netlist, self.num_envs)
        self._obs_specs = _SpecMath(benchmark.spec_space)
        kernel_names = set(self._kernel_probe_names())
        missing = [n for n in self._obs_specs.names if n not in kernel_names]
        if missing:
            raise UntraceableError(f"kernel does not produce specs {missing}")

        # --- reward path ----------------------------------------------
        reward_fn = first.reward_fn
        self._reward_fn = reward_fn
        self._is_fom_mode = first.is_fom_mode
        self._p2s_inline = (
            type(reward_fn) is P2SReward
            and len(reward_fn.spec_space) < _MAX_SEQUENTIAL_SUM
        )
        if self._p2s_inline:
            self._reward_specs = [
                (spec.name, spec.objective is Objective.MINIMIZE)
                for spec in reward_fn.spec_space
            ]
            missing = [n for n, _ in self._reward_specs if n not in kernel_names]
            if missing:
                raise UntraceableError(f"kernel does not produce reward specs {missing}")

        # --- graph feature scatter -------------------------------------
        graph = first.data_processor.graph
        self._node_base = graph._base_features
        self._feature_rows = graph._feature_rows
        self._feature_cols = graph._feature_cols
        self._feature_scales = graph._feature_scales
        from repro.graph.features import dynamic_parameter_reads

        read_cols: List[int] = []
        for name in graph.node_names:
            device = base_netlist.device(name)
            for key, _scale, _slot in dynamic_parameter_reads(device):
                read_cols.append(param_flat_index(base_netlist, name, key))
        if len(read_cols) != len(self._feature_rows):
            raise UntraceableError("node-feature read plan does not match the graph")
        self._feature_read_cols = np.array(read_cols)
        for env in envs[1:]:
            other = env.data_processor.graph
            if (
                other.node_names != graph.node_names
                or other._base_features.tobytes() != self._node_base.tobytes()
                or not np.array_equal(other._feature_rows, self._feature_rows)
                or not np.array_equal(other._feature_cols, self._feature_cols)
                or other._feature_scales.tobytes() != self._feature_scales.tobytes()
            ):
                raise UntraceableError("sub-environments disagree on the circuit graph")

        self._adjacency = first.data_processor.adjacency
        self._static_stack = np.stack(
            [env.data_processor._static_features for env in envs]
        )

        self._probe_kernel()

    # ------------------------------------------------------------------
    # Build-time verification
    # ------------------------------------------------------------------
    def _kernel_probe_names(self) -> List[str]:
        """Spec names the kernel produces (probed on the base parameters)."""
        result = self._kernel.evaluate(self._full)
        return list(result.specs)

    def _probe_points(self) -> np.ndarray:
        space = self._design_space
        points = [
            space.center(),
            space.snap_vector(space.lower_bounds),
            space.snap_vector(space.upper_bounds),
        ]
        rng = np.random.default_rng(0)
        for _ in range(_PROBE_RANDOM_POINTS):
            points.append(space.sample(rng))
        return np.stack(points)

    def _probe_kernel(self) -> None:
        """Bitwise-compare the kernel against the scalar simulator.

        Evaluates a spread of snapped design points through both paths; any
        difference in spec values, detail values, or validity makes the whole
        plan untraceable — "degrades gracefully, never wrongly".
        """
        points = self._probe_points()
        scratch = self._envs[0].data_processor.netlist.copy()
        full = np.tile(self._base_row, (self.num_envs, 1))
        for start in range(0, points.shape[0], self.num_envs):
            chunk = points[start:start + self.num_envs]
            for slot in range(self.num_envs):
                row = chunk[min(slot, chunk.shape[0] - 1)]
                full[slot] = self._base_row
                full[slot, self._knob_cols] = row
            result = self._kernel.evaluate(full)
            for slot in range(chunk.shape[0]):
                row = chunk[slot]
                for parameter, value in zip(self._parameters, row):
                    scratch.set_parameter(parameter.device, parameter.attribute, value)
                reference = self._simulator.simulate(scratch)
                batched_specs = result.spec_dict(slot)
                batched_details = result.detail_dict(slot)
                if set(batched_specs) != set(reference.specs) or any(
                    not _bitwise_equal(batched_specs[k], reference.specs[k])
                    for k in reference.specs
                ):
                    raise UntraceableError(
                        f"kernel spec mismatch on probe point {start + slot}"
                    )
                if set(batched_details) != set(reference.details) or any(
                    not _bitwise_equal(batched_details[k], reference.details[k])
                    for k in reference.details
                ):
                    raise UntraceableError(
                        f"kernel detail mismatch on probe point {start + slot}"
                    )
                if bool(result.valid[slot]) != bool(reference.valid):
                    raise UntraceableError(
                        f"kernel validity mismatch on probe point {start + slot}"
                    )

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def _fallback(self, actions, reason: str):
        self.fallback_steps += 1
        self.last_fallback_reason = reason
        return self._vector_env._step_interpreted(actions)

    def step(
        self, actions: np.ndarray
    ) -> Tuple[BatchedObservation, np.ndarray, np.ndarray, List[Dict[str, object]]]:
        envs = self._envs
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.num_envs, self.num_parameters):
            return self._fallback(actions, "actions have the wrong shape")
        if bool(np.any(actions < 0)) or bool(np.any(actions > 2)):
            return self._fallback(actions, "action index out of range")
        if any(env._done for env in envs):
            return self._fallback(actions, "a sub-environment episode is finished")
        if type(self._reward_fn) is P2SReward:
            names = self._reward_fn.spec_space.names
            if any(any(name not in env._targets for name in names) for env in envs):
                return self._fallback(actions, "incomplete target specification group")

        # --- batched pure math ----------------------------------------
        # _values is the processor's own cache of the last written vector
        # (always set once the episode has been reset); np.stack copies, so
        # reading it directly skips one defensive copy per env.
        current = np.stack(
            [
                env.data_processor._values
                if env.data_processor._values is not None
                else env.data_processor.parameter_values
                for env in envs
            ]
        )
        space = self._design_space
        snapped = space.snap_vector(space.apply_actions(current, actions))
        full = self._full
        full[:] = self._base_row
        full[:, self._knob_cols] = snapped
        kernel_result = self._kernel.evaluate(full)
        if self._cache is not None:
            keys: Optional[List[bytes]] = self._cache_keys(full)
            fresh_results: Optional[List[SimulationResult]] = None
        else:
            # No cache: every row's result is the kernel row itself, so all
            # result dicts can be materialized for the whole batch at once.
            keys = None
            fresh_results = self._fresh_results(kernel_result)

        # --- sequential bookkeeping (order-sensitive state) -----------
        measured_dicts: List[Dict[str, float]] = []
        target_dicts: List[Dict[str, float]] = []
        outcomes: List[RewardOutcome] = []
        goals: List[bool] = []
        step_numbers: List[int] = []
        valid_flags: List[bool] = []
        reset_observations: List[Optional[Observation]] = []
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        autoreset = self._vector_env.autoreset
        for index, env in enumerate(envs):
            env._step_count += 1
            row = snapped[index].copy()
            for (device_parameters, attribute), value in zip(
                self._knob_writes[index], row.tolist()
            ):
                device_parameters[attribute] = value
            env.data_processor._values = row

            if fresh_results is not None:
                result = fresh_results[index]
            else:
                result = self._simulate_row(index, kernel_result, keys)
            env._measured = dict(result.specs)
            measured = env._measured
            outcome = self._reward_outcome(measured, env._targets, result.valid)
            goal_reached = outcome.goal_reached and not self._is_fom_mode
            env._done = bool(goal_reached or env._step_count >= env.max_steps)

            record = StepRecord(
                step=env._step_count,
                parameters=row.copy(),
                specs=dict(measured),
                reward=outcome.reward,
                goal_reached=goal_reached,
            )
            assert env._trajectory is not None
            env._trajectory.records.append(record)

            measured_dicts.append(dict(measured))
            target_dicts.append(dict(env._targets))
            outcomes.append(outcome)
            goals.append(goal_reached)
            step_numbers.append(env._step_count)
            valid_flags.append(result.valid)
            rewards[index] = float(outcome.reward)
            dones[index] = env._done
            if env._done and autoreset:
                reset_observations.append(env.reset())
            else:
                reset_observations.append(None)

        # --- batched observation assembly -----------------------------
        node_features = np.broadcast_to(
            self._node_base, (self.num_envs,) + self._node_base.shape
        ).copy()
        node_features[:, self._feature_rows, self._feature_cols] = (
            full[:, self._feature_read_cols] * self._feature_scales
        )
        obs = self._obs_specs
        measured_matrix = obs.matrix(measured_dicts)
        target_matrix = obs.matrix(target_dicts)
        spec_features = np.concatenate(
            [
                obs.normalize(target_matrix),
                obs.normalize(measured_matrix),
                obs.raw_errors(measured_matrix, target_matrix),
            ],
            axis=-1,
        )
        normalized_parameters = space.normalize(snapped)

        infos: List[Dict[str, object]] = []
        for index, env in enumerate(envs):
            outcome = outcomes[index]
            info: Dict[str, object] = {
                "step": step_numbers[index],
                "specs": dict(measured_dicts[index]),
                "goal_reached": goals[index],
                "met_fraction": outcome.met_fraction,
                "normalized_errors": outcome.normalized_errors,
                "simulation_valid": valid_flags[index],
            }
            if self._is_fom_mode:
                info["figure_of_merit"] = self._reward_fn.figure_of_merit(
                    measured_dicts[index]
                )
            reset_observation = reset_observations[index]
            if reset_observation is not None:
                info["terminal_observation"] = Observation(
                    node_features=node_features[index].copy(),
                    static_node_features=env.data_processor._static_features,
                    adjacency=env.data_processor.adjacency,
                    spec_features=spec_features[index].copy(),
                    normalized_parameters=normalized_parameters[index].copy(),
                    measured_specs=dict(measured_dicts[index]),
                    target_specs=dict(target_dicts[index]),
                )
                node_features[index] = reset_observation.node_features
                spec_features[index] = reset_observation.spec_features
                normalized_parameters[index] = reset_observation.normalized_parameters
                measured_dicts[index] = dict(reset_observation.measured_specs)
                target_dicts[index] = dict(reset_observation.target_specs)
            infos.append(info)

        batched = BatchedObservation(
            node_features=node_features,
            static_node_features=self._static_stack,
            adjacency=self._adjacency,
            spec_features=spec_features,
            normalized_parameters=normalized_parameters,
            measured_specs=measured_dicts,
            target_specs=target_dicts,
        )
        self.steps_compiled += 1
        return batched, rewards, dones, infos

    # ------------------------------------------------------------------
    # Simulation replay
    # ------------------------------------------------------------------
    def _cache_keys(self, full: np.ndarray) -> List[bytes]:
        """Vectorized twin of ``SimulationCache._key`` over all rows."""
        cache = self._cache
        assert cache is not None
        mantissas, exponents = np.frexp(full)
        scaled = np.round(mantissas * cache._mantissa_scale)
        carry = np.abs(scaled) >= cache._mantissa_scale
        scaled = np.where(carry, scaled * 0.5, scaled)
        exponents = exponents + carry
        name = self._name_bytes
        return [
            name + scaled[k].tobytes() + exponents[k].tobytes()
            for k in range(self.num_envs)
        ]

    def _fresh_results(self, kernel_result) -> List[SimulationResult]:
        """All rows as fresh :class:`SimulationResult`\\ s (cache-off path)."""
        spec_rows = kernel_result.spec_rows()
        detail_rows = kernel_result.detail_rows()
        valid = kernel_result.valid.tolist()
        return [
            SimulationResult(specs=specs, details=details, valid=flag)
            for specs, details, flag in zip(spec_rows, detail_rows, valid)
        ]

    def _simulate_row(
        self, index: int, kernel_result, keys: Optional[List[bytes]]
    ) -> SimulationResult:
        """Row ``index``'s simulation result with exact cache bookkeeping."""
        fresh = lambda: SimulationResult(  # noqa: E731 - built lazily, misses only
            specs=kernel_result.spec_dict(index),
            details=kernel_result.detail_dict(index),
            valid=bool(kernel_result.valid[index]),
        )
        cache = self._cache
        if cache is None or keys is None:
            return fresh()
        key = keys[index]
        cached = cache._entries.get(key)
        if cached is not None:
            cache.stats.hits += 1
            cache._entries.move_to_end(key)
            return cache._copy(cached)
        cache.stats.misses += 1
        result = fresh()
        cache._entries[key] = cache._copy(result)
        if len(cache._entries) > cache.max_entries:
            cache._entries.popitem(last=False)
            cache.stats.evictions += 1
        return result

    # ------------------------------------------------------------------
    # Reward replay
    # ------------------------------------------------------------------
    def _reward_outcome(
        self, measured: Dict[str, float], targets: Dict[str, float], valid: bool
    ) -> RewardOutcome:
        if not self._p2s_inline:
            return self._reward_fn(measured, targets, valid=valid)
        # Inlined scalar twin of P2SReward.__call__ / _defensive_errors /
        # met_fraction — identical Python-float arithmetic without the
        # per-call numpy array construction.
        reward_fn = self._reward_fn
        errors: Dict[str, float] = {}
        complete = True
        for name, minimize in self._reward_specs:
            measured_value = measured.get(name)
            target_value = float(targets[name])
            if (
                measured_value is None
                or not math.isfinite(float(measured_value))
                or not math.isfinite(target_value)
            ):
                errors[name] = -1.0
                complete = False
                continue
            m = float(measured_value)
            denominator = abs(m) + abs(target_value)
            if denominator <= 0.0:
                errors[name] = 0.0
                continue
            difference = (m - target_value) / denominator
            if minimize:
                difference = -difference
            errors[name] = float(min(difference, 0.0))
        if not valid or not complete:
            return RewardOutcome(
                reward=reward_fn.invalid_penalty,
                goal_reached=False,
                normalized_errors=errors,
                met_fraction=0.0,
            )
        # np.array([...]).sum() folds left-to-right starting from the FIRST
        # element (never a 0.0 seed — that would turn a leading -0.0 into
        # +0.0), so the replica folds the same way.
        raw: Optional[float] = None
        goal_reached = True
        met = 0
        for name, minimize in self._reward_specs:
            error = errors[name]
            raw = error if raw is None else raw + error
            if not error >= 0.0:
                goal_reached = False
            m = float(measured[name])
            t = float(targets[name])
            if (m <= t + 0.0) if minimize else (m >= t - 0.0):
                met += 1
        reward = reward_fn.goal_bonus if goal_reached else float(raw)
        return RewardOutcome(
            reward=reward,
            goal_reached=goal_reached,
            normalized_errors=errors,
            met_fraction=met / len(self._reward_specs),
        )


__all__ = ["CompiledEpisodePlan"]
