"""LockAudit wired into the gateway: serve traffic must never touch
shared stats unlocked — and the audit must catch it loudly when it does."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import LockAudit, LockAuditError
from repro.serve import DeploymentService, Gateway, ServeRequest
from repro.serve.service import ServeStats

MAX_STEPS = 6


@pytest.fixture(scope="module")
def policy():
    env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
    return repro.make_policy("gcn_fc", env, np.random.default_rng(0))


@pytest.fixture(scope="module")
def targets():
    env = repro.make_env("opamp-p2s-v0", seed=0)
    return [dict(t) for t in env.benchmark.spec_space.sample_batch(
        np.random.default_rng(11), 4
    )]


@pytest.fixture
def service(policy):
    service = DeploymentService(batch_size=2)
    service.register_policy("opamp-p2s-v0", policy)
    return service


def make_requests(targets):
    return [
        ServeRequest(target_specs=dict(target), max_steps=MAX_STEPS,
                     request_id=f"r{i}")
        for i, target in enumerate(targets)
    ]


def test_gateway_traffic_mutates_stats_only_under_lock(service, targets):
    """The shipped stats path is audit-clean under concurrent workers."""
    with Gateway(service, num_workers=2, max_batch_delay_ms=10.0) as gw:
        with LockAudit(gw.stats, record_reads=False) as gateway_audit, \
                LockAudit(service.stats, record_reads=False) as service_audit:
            responses = gw.serve(make_requests(targets), timeout=120)
    assert all(response.ok for response in responses)
    gateway_audit.assert_clean()
    service_audit.assert_clean()


def test_audit_catches_unlocked_mutation_in_gateway_worker(
    service, targets, monkeypatch
):
    """Reintroduce an unlocked ServeStats fold (the pre-gateway bug shape)
    and assert the audit pins it to a worker thread."""

    def unlocked_record_batch(self, size, trigger):
        # Deliberately skips `with self._lock:` — the audited instance's
        # dynamic subclass inherits this and must record every write.
        self.batches += 1
        self.coalesce_sum += size
        self.max_coalesce = max(self.max_coalesce, size)

    monkeypatch.setattr(ServeStats, "record_batch", unlocked_record_batch)
    with Gateway(service, num_workers=2, max_batch_delay_ms=10.0) as gw:
        with LockAudit(gw.stats, record_reads=False) as audit:
            responses = gw.serve(make_requests(targets), timeout=120)
    assert all(response.ok for response in responses)
    violations = audit.violations
    assert violations, "unlocked stats fold went undetected"
    assert {v.attribute for v in violations} <= {
        "batches", "coalesce_sum", "max_coalesce"
    }
    assert all(v.operation == "write" for v in violations)
    assert any(v.thread.startswith("gateway-worker-") for v in violations)
    assert any("unlocked_record_batch" in v.location for v in violations)
    with pytest.raises(LockAuditError, match="unlocked guarded-state"):
        audit.assert_clean()
