"""Tunable design parameters and the discrete design space.

The paper's action space is discrete: each tunable parameter ``x`` moves by
``+Δx``, ``0`` or ``-Δx`` within ``[x_min, x_max]`` at every step
(Sec. 3, Action Representation).  :class:`DesignParameter` describes one such
knob (bound to a device attribute in the netlist) and :class:`DesignSpace`
manages the full vector of them — Table 1's "design space of device
parameters":

* the two-stage op-amp has ``2·7 + 1 = 15`` parameters (width and finger
  count of 7 transistors plus the compensation capacitor), and
* the RF PA has ``2·7 = 14`` parameters (width and finger count of the five
  driver devices, the final driver and the power device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.netlist import Netlist

#: Action encoding shared with the environment: index into this tuple is the
#: per-parameter categorical choice produced by the policy.
ACTION_DELTAS: Tuple[int, int, int] = (-1, 0, +1)


@dataclass(frozen=True)
class DesignParameter:
    """One tunable device attribute.

    Parameters
    ----------
    name:
        Unique knob name, e.g. ``"M1.width"``.
    device:
        Device instance name in the netlist.
    attribute:
        Parameter key on that device (``"width"``, ``"fingers"``, ``"value"``).
    minimum, maximum:
        Inclusive bounds in SI units.
    step:
        The smallest tuning unit ``Δx``.
    integer:
        Whether the parameter is integral (finger counts).
    """

    name: str
    device: str
    attribute: str
    minimum: float
    maximum: float
    step: float
    integer: bool = False

    def __post_init__(self) -> None:
        if self.minimum >= self.maximum:
            raise ValueError(f"{self.name}: minimum must be < maximum")
        if self.step <= 0:
            raise ValueError(f"{self.name}: step must be positive")
        if self.step > (self.maximum - self.minimum):
            raise ValueError(f"{self.name}: step larger than the parameter range")

    @property
    def num_levels(self) -> int:
        """Number of grid points between the bounds (inclusive)."""
        return int(np.floor((self.maximum - self.minimum) / self.step + 1e-9)) + 1

    def clip(self, value: float) -> float:
        """Clamp ``value`` into the bounds (and round integers)."""
        clipped = float(np.clip(value, self.minimum, self.maximum))
        if self.integer:
            clipped = float(round(clipped))
        return clipped

    def snap(self, value: float) -> float:
        """Snap ``value`` onto the discrete grid defined by ``step``."""
        levels = round((value - self.minimum) / self.step)
        levels = int(np.clip(levels, 0, self.num_levels - 1))
        return self.clip(self.minimum + levels * self.step)

    def apply_delta(self, value: float, direction: int) -> float:
        """Move ``value`` by ``direction`` steps (−1, 0, +1) within bounds."""
        if direction not in (-1, 0, 1):
            raise ValueError(f"direction must be -1, 0 or +1, got {direction}")
        return self.snap(value + direction * self.step)

    def normalize(self, value: float) -> float:
        """Map a value into [0, 1] relative to the bounds."""
        return (self.clip(value) - self.minimum) / (self.maximum - self.minimum)

    def denormalize(self, unit_value: float) -> float:
        """Inverse of :meth:`normalize` (clipped to [0, 1] first)."""
        unit_value = float(np.clip(unit_value, 0.0, 1.0))
        return self.snap(self.minimum + unit_value * (self.maximum - self.minimum))


class DesignSpace:
    """Ordered collection of design parameters with vector conversions.

    The ordering defines the row ordering of the policy's ``M × 3`` action
    matrix, so it must stay stable for a trained policy to remain valid.
    """

    def __init__(self, parameters: Sequence[DesignParameter]) -> None:
        if not parameters:
            raise ValueError("design space must contain at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("design parameter names must be unique")
        self._parameters: List[DesignParameter] = list(parameters)
        self._index: Dict[str, int] = {p.name: i for i, p in enumerate(self._parameters)}
        # Pre-stacked per-parameter constants so the hot vector operations
        # (snapping, action application, normalization) run as single numpy
        # expressions instead of per-parameter Python loops.  All vector
        # methods are elementwise, so they produce bitwise-identical results
        # to the scalar DesignParameter methods.
        self._mins = np.array([p.minimum for p in self._parameters])
        self._maxs = np.array([p.maximum for p in self._parameters])
        self._steps = np.array([p.step for p in self._parameters])
        self._integer_mask = np.array([p.integer for p in self._parameters])
        self._max_levels = np.array([float(p.num_levels - 1) for p in self._parameters])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self):
        return iter(self._parameters)

    def __getitem__(self, key) -> DesignParameter:
        if isinstance(key, str):
            return self._parameters[self._index[key]]
        return self._parameters[key]

    @property
    def names(self) -> List[str]:
        return [p.name for p in self._parameters]

    @property
    def num_parameters(self) -> int:
        return len(self._parameters)

    @property
    def lower_bounds(self) -> np.ndarray:
        return np.array([p.minimum for p in self._parameters])

    @property
    def upper_bounds(self) -> np.ndarray:
        return np.array([p.maximum for p in self._parameters])

    @property
    def steps(self) -> np.ndarray:
        return np.array([p.step for p in self._parameters])

    def cardinality(self) -> float:
        """Total number of grid points in the discrete design space."""
        return float(np.prod([float(p.num_levels) for p in self._parameters]))

    # ------------------------------------------------------------------
    # Vector <-> netlist conversions
    # ------------------------------------------------------------------
    def vector_from_netlist(self, netlist: Netlist) -> np.ndarray:
        """Read the current value of every knob out of a netlist."""
        return np.array(
            [netlist.get_parameter(p.device, p.attribute) for p in self._parameters]
        )

    def apply_to_netlist(self, netlist: Netlist, values: np.ndarray) -> np.ndarray:
        """Write a parameter vector into a netlist (with clipping/snapping).

        Returns the snapped vector actually written, so callers can track the
        netlist state without re-reading it device by device.
        """
        values = self.clip_vector(values)
        for parameter, value in zip(self._parameters, values):
            netlist.set_parameter(parameter.device, parameter.attribute, value)
        return values

    def _check_last_axis(self, values: np.ndarray, what: str) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0 or values.shape[-1] != len(self):
            raise ValueError(
                f"expected {what} with last axis of length {len(self)}, got shape {values.shape}"
            )
        return values

    def snap_vector(self, values: np.ndarray) -> np.ndarray:
        """Snap values onto the parameter grids; accepts any ``(..., M)`` batch.

        Equivalent to applying :meth:`DesignParameter.snap` per entry — both
        use the same float64 elementwise operations (round-half-even level
        rounding, bound clipping, integer rounding), so results are bitwise
        identical to the scalar path.
        """
        values = self._check_last_axis(values, "parameter values")
        levels = np.clip(np.rint((values - self._mins) / self._steps), 0.0, self._max_levels)
        snapped = np.clip(self._mins + levels * self._steps, self._mins, self._maxs)
        return np.where(self._integer_mask, np.rint(snapped), snapped)

    def clip_vector(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(self),):
            raise ValueError(f"expected vector of length {len(self)}, got shape {values.shape}")
        return self.snap_vector(values)

    def apply_actions(self, values: np.ndarray, action_indices: np.ndarray) -> np.ndarray:
        """Apply categorical actions (0=−Δx, 1=keep, 2=+Δx); accepts ``(..., M)``."""
        action_indices = np.asarray(action_indices, dtype=np.int64)
        if action_indices.ndim == 0 or action_indices.shape[-1] != len(self):
            raise ValueError(
                f"expected {len(self)} actions along the last axis, "
                f"got shape {action_indices.shape}"
            )
        if np.any(action_indices < 0) or np.any(action_indices >= len(ACTION_DELTAS)):
            raise ValueError("action index out of range [0, 2]")
        values = np.asarray(values, dtype=np.float64)
        deltas = np.asarray(ACTION_DELTAS, dtype=np.float64)[action_indices]
        return self.snap_vector(values + deltas * self._steps)

    # ------------------------------------------------------------------
    # Normalization and sampling
    # ------------------------------------------------------------------
    def normalize(self, values: np.ndarray) -> np.ndarray:
        """Map values into ``[0, 1]^M``; accepts any ``(..., M)`` batch."""
        values = self._check_last_axis(values, "parameter values")
        clipped = np.clip(values, self._mins, self._maxs)
        clipped = np.where(self._integer_mask, np.rint(clipped), clipped)
        return (clipped - self._mins) / (self._maxs - self._mins)

    def denormalize(self, unit_values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`; accepts any ``(..., M)`` batch."""
        unit_values = self._check_last_axis(unit_values, "unit values")
        unit_values = np.clip(unit_values, 0.0, 1.0)
        return self.snap_vector(self._mins + unit_values * (self._maxs - self._mins))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample a grid point per parameter."""
        return np.array(
            [p.snap(rng.uniform(p.minimum, p.maximum)) for p in self._parameters]
        )

    def sample_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` grid points as a ``(count, M)`` population.

        Draws the underlying uniforms in the same C order as ``count``
        successive :meth:`sample` calls, so the sampled designs (and the
        generator state afterwards) are identical to the sequential path.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        raw = rng.uniform(self._mins, self._maxs, size=(count, len(self)))
        return self.snap_vector(raw)

    def center(self) -> np.ndarray:
        """Mid-range starting point used as the default initial state."""
        return np.array([p.snap(0.5 * (p.minimum + p.maximum)) for p in self._parameters])

    def as_dict(self, values: np.ndarray) -> Dict[str, float]:
        """Human-readable mapping of knob name to value."""
        values = np.asarray(values, dtype=np.float64)
        return {p.name: float(v) for p, v in zip(self._parameters, values)}
