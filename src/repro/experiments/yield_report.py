"""Monte-Carlo yield report over the behavioural process/temperature space.

The corner environments train against a worst-case five-corner sweep; this
harness answers the complementary statistical question — *what fraction of
process/temperature space does a sizing actually satisfy its targets in?*
For each circuit it draws ``samples`` Monte-Carlo process points (threshold
and mobility scale factors uniform over the corner-kit ±10 % range, junction
temperature uniform over −40…125 °C), evaluates the benchmark's center
sizing at every point, and reports the pass fraction overall and per
specification.

Each Monte-Carlo point is a :class:`~repro.corners.model.Corner`, so a
whole shard is just a :class:`~repro.corners.simulator.CornerSimulator`
over a ``samples``-corner :class:`CornerSet` — the kernel-batched corner
lanes evaluate an entire shard in a handful of stacked array operations for
the topologies with a compiled twin.

Orchestration mirrors :mod:`repro.experiments.transfer_matrix`: the report
shards by (circuit, shard-index) into :class:`~repro.orchestrate.units.WorkUnit`
objects executed through :func:`repro.orchestrate.runner.execute_with_store`,
so ``workers=k`` fans shards over the process pool and a ``store=...``
directory makes the report resumable through the
:class:`~repro.orchestrate.store.ArtifactStore`.  The CLI front end is
``python -m repro.run yield`` (:mod:`repro.experiments.yield_cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.circuits.library import BENCHMARK_BUILDERS
from repro.circuits.specs import Objective
from repro.corners.model import (
    COLD_TEMPERATURE_C,
    Corner,
    CornerSet,
    FAST_VTH_SCALE,
    HOT_TEMPERATURE_C,
    SLOW_VTH_SCALE,
)
from repro.corners.simulator import CornerSimulator
from repro.orchestrate.runner import execute_with_store
from repro.orchestrate.units import WorkUnit
from repro.simulation.folded_cascode_sim import FoldedCascodeSimulator
from repro.simulation.lna_sim import LnaSimulator
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator
from repro.simulation.pa_sim import RfPaFineSimulator

#: Circuits swept by default: the full five-topology zoo.
ZOO_YIELD_CIRCUITS = (
    "two_stage_opamp",
    "folded_cascode",
    "current_mirror_ota",
    "common_source_lna",
    "rf_pa",
)

#: Nominal simulator per circuit (the ``*-corners-v0`` fidelity choices).
_SIMULATOR_FACTORIES = {
    "two_stage_opamp": OpAmpSimulator,
    "folded_cascode": FoldedCascodeSimulator,
    "current_mirror_ota": CmOtaSimulator,
    "common_source_lna": LnaSimulator,
    "rf_pa": RfPaFineSimulator,
}


def default_targets(circuit: str) -> Dict[str, float]:
    """The least demanding end of each specification's Table-1 sampling range.

    The mildest target group the benchmark would ever sample.  With such
    targets a failed Monte-Carlo point is attributable to process and
    temperature variation rather than to a nominally unreachable goal —
    which is the question a yield report asks.
    """
    benchmark = BENCHMARK_BUILDERS[circuit]()
    return {
        spec.name: (
            spec.minimum if spec.objective is Objective.MAXIMIZE else spec.maximum
        )
        for spec in benchmark.spec_space
    }


@dataclass
class CircuitYield:
    """Monte-Carlo yield of one circuit's center sizing."""

    circuit: str
    samples: int
    passed: int
    per_spec_passed: Dict[str, int]
    targets: Dict[str, float]

    @property
    def yield_fraction(self) -> float:
        return self.passed / self.samples if self.samples else 0.0

    def per_spec_fraction(self) -> Dict[str, float]:
        if not self.samples:
            return {name: 0.0 for name in self.per_spec_passed}
        return {
            name: count / self.samples for name, count in self.per_spec_passed.items()
        }


@dataclass
class YieldReport:
    """Aggregated Monte-Carlo yield across circuits."""

    seed: int
    samples_per_circuit: int
    results: List[CircuitYield] = field(default_factory=list)

    def result(self, circuit: str) -> CircuitYield:
        for entry in self.results:
            if entry.circuit == circuit:
                return entry
        raise KeyError(f"no yield result for circuit {circuit!r}")

    def as_text(self) -> str:
        """Render the report as a fixed-width terminal table."""
        width = max(len(entry.circuit) for entry in self.results) + 2
        lines = [f"{'circuit':<{width}s}{'samples':>9s}{'yield':>9s}  binding specs"]
        for entry in self.results:
            fractions = entry.per_spec_fraction()
            binding = ", ".join(
                f"{name} {fraction:.0%}"
                for name, fraction in sorted(fractions.items(), key=lambda kv: kv[1])[:2]
            )
            lines.append(
                f"{entry.circuit:<{width}s}{entry.samples:>9d}"
                f"{entry.yield_fraction:>9.1%}  {binding}"
            )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "samples_per_circuit": self.samples_per_circuit,
            "circuits": [
                {
                    "circuit": entry.circuit,
                    "samples": entry.samples,
                    "passed": entry.passed,
                    "yield_fraction": entry.yield_fraction,
                    "per_spec_passed": dict(entry.per_spec_passed),
                    "targets": dict(entry.targets),
                }
                for entry in self.results
            ],
        }


def monte_carlo_corner_set(samples: int, seed: int) -> CornerSet:
    """``samples`` process/temperature points as a (deterministic) CornerSet."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    rng = np.random.default_rng(seed)
    corners = []
    for index in range(samples):
        corners.append(
            Corner(
                name=f"mc{index}",
                vth_scale=float(rng.uniform(FAST_VTH_SCALE, SLOW_VTH_SCALE)),
                mobility_scale=float(rng.uniform(FAST_VTH_SCALE, SLOW_VTH_SCALE)),
                temperature_c=float(
                    rng.uniform(COLD_TEMPERATURE_C, HOT_TEMPERATURE_C)
                ),
            )
        )
    return CornerSet(corners=tuple(corners))


def yield_report_units(
    circuits: Sequence[str],
    samples: int,
    shards: int,
    seed: int,
    targets: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> List[WorkUnit]:
    """One work unit per (circuit, shard); shards split ``samples`` evenly."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    units = []
    for circuit in circuits:
        if circuit not in _SIMULATOR_FACTORIES:
            raise ValueError(
                f"unknown circuit {circuit!r} (choose from {sorted(_SIMULATOR_FACTORIES)})"
            )
        circuit_targets = dict(
            targets[circuit] if targets and circuit in targets else default_targets(circuit)
        )
        base, remainder = divmod(samples, shards)
        for shard in range(shards):
            shard_samples = base + (1 if shard < remainder else 0)
            if shard_samples == 0:
                continue
            units.append(
                WorkUnit(
                    unit_id=f"yield+{circuit}+shard{shard}",
                    runner="repro.experiments.yield_report:yield_shard_unit",
                    payload={
                        "circuit": circuit,
                        "samples": shard_samples,
                        "seed": seed + 7919 * shard,
                        "targets": circuit_targets,
                    },
                )
            )
    return units


def yield_shard_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one Monte-Carlo shard (the orchestrator's worker contract).

    Pure function of its JSON payload; the shard's process points ride the
    corner-lane batched path as one big CornerSet.
    """
    circuit = arguments["circuit"]
    samples = int(arguments["samples"])
    targets = {name: float(value) for name, value in arguments["targets"].items()}
    benchmark = BENCHMARK_BUILDERS[circuit]()
    corner_set = monte_carlo_corner_set(samples, int(arguments["seed"]))
    simulator = CornerSimulator(
        _SIMULATOR_FACTORIES[circuit](),
        corner_set=corner_set,
        spec_space=benchmark.spec_space,
    )
    results = simulator.corner_results(benchmark.fresh_netlist())

    passed = 0
    per_spec_passed = {spec.name: 0 for spec in benchmark.spec_space}
    for result in results:
        sample_pass = bool(result.valid)
        for spec in benchmark.spec_space:
            spec_met = result.valid and spec.is_met(
                result.specs[spec.name], targets[spec.name]
            )
            per_spec_passed[spec.name] += int(spec_met)
            sample_pass = sample_pass and spec_met
        passed += int(sample_pass)
    return {
        "circuit": circuit,
        "samples": samples,
        "passed": passed,
        "per_spec_passed": per_spec_passed,
        "targets": targets,
    }


def run_yield_report(
    circuits: Sequence[str] = ZOO_YIELD_CIRCUITS,
    samples: int = 128,
    shards: int = 2,
    seed: int = 0,
    targets: Optional[Mapping[str, Mapping[str, float]]] = None,
    workers: int = 1,
    store: Optional[Union[str, "object"]] = None,
    resume: bool = True,
) -> YieldReport:
    """Monte-Carlo yield of every circuit's center sizing.

    Parameters
    ----------
    circuits:
        Circuits to sweep (defaults to the whole zoo).
    samples:
        Monte-Carlo process points per circuit, split across ``shards``.
    shards:
        Work units per circuit (the parallelism grain).
    seed:
        Root seed; shard seeds derive deterministically, so the report is
        identical for any ``workers``/``shards`` split of the same counts.
    targets:
        Optional ``{circuit: {spec: target}}`` override of
        :func:`default_targets`.
    workers, store, resume:
        Process-pool width and artifact-store resumability, exactly as in
        :func:`repro.experiments.transfer_matrix.run_transfer_matrix`.
    """
    units = yield_report_units(circuits, samples, shards, seed, targets)
    report = execute_with_store(units, store=store, workers=workers, resume=resume)
    report.raise_on_failure()

    by_circuit: Dict[str, CircuitYield] = {}
    for record in report.records:
        row = record.result
        entry = by_circuit.get(row["circuit"])
        if entry is None:
            by_circuit[row["circuit"]] = CircuitYield(
                circuit=row["circuit"],
                samples=int(row["samples"]),
                passed=int(row["passed"]),
                per_spec_passed={k: int(v) for k, v in row["per_spec_passed"].items()},
                targets={k: float(v) for k, v in row["targets"].items()},
            )
        else:
            entry.samples += int(row["samples"])
            entry.passed += int(row["passed"])
            for name, count in row["per_spec_passed"].items():
                entry.per_spec_passed[name] += int(count)
    ordered = [by_circuit[circuit] for circuit in circuits if circuit in by_circuit]
    return YieldReport(seed=seed, samples_per_circuit=samples, results=ordered)
