"""BatchedMNAPlan: stacked AC/DC solves bitwise-identical to per-circuit MNA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import BatchedMNAPlan, UntraceableError, solve_chunk_rows
from repro.simulation.mna import ConvergenceError, MnaCircuit
from repro.simulation.mosfet import MosfetModel
from repro.simulation.technology import CMOS_45NM

FREQUENCIES = np.logspace(1, 9, 57)


def _two_pole_circuit(gm=1e-3, r1=5e4, c1=2e-12, r2=2e5, c2=1e-12) -> MnaCircuit:
    """Linear two-stage small-signal circuit (vsource, VCCS, RC loads)."""
    circuit = MnaCircuit("two_pole")
    circuit.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    circuit.add_vccs("GM1", "mid", "0", "in", "0", gm=-gm)
    circuit.add_resistor("R1", "mid", "0", r1)
    circuit.add_capacitor("C1", "mid", "0", c1)
    circuit.add_vccs("GM2", "out", "0", "mid", "0", gm=2.0 * gm)
    circuit.add_resistor("R2", "out", "0", r2)
    circuit.add_capacitor("C2", "out", "0", c2)
    return circuit


def _mosfet_amplifier(width=2e-6, vg=0.7) -> MnaCircuit:
    """Nonlinear common-source stage: DC Newton + linearized AC."""
    circuit = MnaCircuit("cs_amp")
    circuit.add_voltage_source("VDD", "vdd", "0", dc=1.1)
    circuit.add_voltage_source("VG", "g", "0", dc=vg, ac=1.0)
    circuit.add_resistor("RD", "vdd", "d", 2e4)
    circuit.add_capacitor("CL", "d", "0", 1e-13)
    circuit.add_mosfet("M1", "d", "g", "0", MosfetModel(CMOS_45NM, "nmos", width, 2))
    return circuit


def _variants(build, key, values):
    return [build(**{key: value}) for value in values]


class TestAcParity:
    def test_linear_ac_sweep_is_bitwise_per_circuit(self):
        circuits = _variants(_two_pole_circuit, "gm", [5e-4, 1e-3, 2.5e-3, 8e-3])
        plan = BatchedMNAPlan.from_circuits(circuits)
        stacked = plan.ac_sweep(FREQUENCIES)
        for circuit, solution in zip(circuits, stacked):
            reference = circuit.ac_analysis(FREQUENCIES)
            for node in ("in", "mid", "out"):
                assert solution.voltage(node).tobytes() == reference.voltage(node).tobytes()

    def test_mosfet_ac_sweep_is_bitwise_per_circuit(self):
        circuits = _variants(_mosfet_amplifier, "width", [1e-6, 2e-6, 4e-6])
        plan = BatchedMNAPlan.from_circuits(circuits)
        stacked = plan.ac_sweep(FREQUENCIES)
        for circuit, solution in zip(circuits, stacked):
            reference = circuit.ac_analysis(FREQUENCIES)
            assert solution.voltage("d").tobytes() == reference.voltage("d").tobytes()

    def test_chunking_is_bitwise_invariant(self):
        circuits = _variants(_two_pole_circuit, "r2", [1e5, 2e5, 4e5])
        small = BatchedMNAPlan.from_circuits(circuits)
        small._chunk = 7  # force many partial chunks over K * F rows
        large = BatchedMNAPlan.from_circuits(circuits)
        large._chunk = 10**9
        for a, b in zip(small.ac_sweep(FREQUENCIES), large.ac_sweep(FREQUENCIES)):
            for node in ("mid", "out"):
                assert a.voltage(node).tobytes() == b.voltage(node).tobytes()

    def test_stacked_rhs_stays_a_column_stack(self):
        """Regression: a (B, n) RHS is read as ONE matrix by the solve gufunc.

        With a chunk size differing from the matrix dimension, a plain 2-D
        right-hand side makes ``np.linalg.solve`` raise a core-dimension
        mismatch instead of solving B independent systems.
        """
        circuits = _variants(_two_pole_circuit, "gm", [1e-3] * 5)
        plan = BatchedMNAPlan.from_circuits(circuits)
        assert plan._chunk != plan.size
        solutions = plan.ac_sweep(FREQUENCIES)  # raised ValueError before the fix
        assert len(solutions) == 5

    def test_ac_input_validation(self):
        plan = BatchedMNAPlan.from_circuits([_two_pole_circuit()])
        with pytest.raises(ValueError):
            plan.ac_sweep([])
        with pytest.raises(ValueError):
            plan.ac_sweep([0.0, 10.0])

    def test_singular_system_reports_circuit_and_frequency(self):
        # Node "a" sees only the current source: its matrix row is all
        # zeros, so every frequency's system is singular.
        circuit = MnaCircuit("floating")
        circuit.add_current_source("I1", "a", "0", ac=1.0)
        circuit.add_resistor("R1", "b", "0", 1e3)
        plan = BatchedMNAPlan.from_circuits([circuit])
        with pytest.raises(ConvergenceError) as planned:
            plan.ac_sweep([10.0, 100.0])
        with pytest.raises(ConvergenceError) as interpreted:
            circuit.ac_analysis([10.0, 100.0])
        # The stacked path reports the same circuit and frequency the
        # interpreted per-circuit loop would have reported.
        assert str(planned.value) == str(interpreted.value)


class TestDcParity:
    def test_linear_dc_is_bitwise_per_circuit(self):
        circuits = _variants(_two_pole_circuit, "r1", [1e4, 5e4, 9e4])
        plan = BatchedMNAPlan.from_circuits(circuits)
        for circuit, solution in zip(circuits, plan.dc_operating_points()):
            reference = circuit.dc_operating_point()
            assert solution.node_voltages == reference.node_voltages
            assert solution.source_currents == reference.source_currents
            assert solution.iterations == reference.iterations

    def test_newton_dc_is_bitwise_per_circuit(self):
        """MOSFET circuits converge per-slice exactly like the scalar Newton."""
        circuits = _variants(_mosfet_amplifier, "vg", [0.5, 0.7, 0.9, 1.05])
        plan = BatchedMNAPlan.from_circuits(circuits)
        for circuit, solution in zip(circuits, plan.dc_operating_points()):
            reference = circuit.dc_operating_point()
            assert solution.node_voltages == reference.node_voltages
            assert solution.source_currents == reference.source_currents
            # Converging circuits at different iteration counts exercises the
            # not-yet-converged active-slice bookkeeping.
            assert solution.iterations == reference.iterations


class TestPlanConstruction:
    def test_set_values_restamps_one_element(self):
        plan = BatchedMNAPlan.from_template(_two_pole_circuit(), 3)
        plan.set_values("R2", np.array([1e5, 2e5, 4e5]))
        reference = [_two_pole_circuit(r2=r) for r in (1e5, 2e5, 4e5)]
        for circuit, solution in zip(reference, plan.ac_sweep(FREQUENCIES)):
            expected = circuit.ac_analysis(FREQUENCIES)
            assert solution.voltage("out").tobytes() == expected.voltage("out").tobytes()

    def test_set_values_unknown_element(self):
        plan = BatchedMNAPlan.from_template(_two_pole_circuit(), 2)
        with pytest.raises(KeyError):
            plan.set_values("R99", np.zeros(2))

    def test_topology_mismatch_is_untraceable(self):
        other = _two_pole_circuit()
        other.add_resistor("REXTRA", "out", "0", 1e6)
        with pytest.raises(UntraceableError):
            BatchedMNAPlan.from_circuits([_two_pole_circuit(), other])

    def test_template_mode_rejects_mosfets(self):
        with pytest.raises(UntraceableError):
            BatchedMNAPlan.from_template(_mosfet_amplifier(), 2)

    def test_empty_batch_is_untraceable(self):
        with pytest.raises(UntraceableError):
            BatchedMNAPlan.from_circuits([])

    def test_chunk_rows_bounded_on_single_core(self):
        assert solve_chunk_rows(1) == 128
        assert solve_chunk_rows(8) == 1024
