"""Table builders: Table 1 (design/sampling spaces) and Table 2 (comparison).

Table 1 is purely descriptive — it enumerates the design space of device
parameters and the sampling space of desired specifications for both
benchmark circuits — and is regenerated directly from the circuit library.

Table 2 is the paper's headline comparison: for every method it reports
whether key domain knowledge is used, the P2S design accuracy, the mean
number of design steps on both circuits, and the RF PA FoM value.  The
builder below regenerates every row from the same harnesses the figures use;
at bench scale the RL rows are trained with reduced budgets, so their
absolute accuracy is below the paper's 98–99 % while the relative ordering
(GNN-FC ≥ baselines ≫ optimizers in accuracy, RL ≪ GA/BO in simulation
count) is preserved.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.deployment import evaluate_deployment
from repro.api.catalog import ENVS, make_env, make_optimizer
from repro.circuits.library import BENCHMARK_BUILDERS
from repro.experiments.configs import ExperimentScale, METHOD_LABELS, RL_METHODS, bench_scale
from repro.experiments.figures import evaluate_optimizer_accuracy
from repro.experiments.fom import run_fom_optimizer, run_fom_training
from repro.experiments.training import run_training_experiment
from repro.orchestrate.runner import execute_with_store
from repro.orchestrate.units import WorkUnit

#: Episodes deployed lock-step per Table 2 deployment evaluation.  The
#: batched engine is episode-level identical to sequential deployment for
#: the deterministic Table 2 setting, so this only changes wall-clock (see
#: ``repro.agents.deploy_policy_batch``).
DEPLOYMENT_BATCH_SIZE = 8


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def build_table1() -> Dict[str, Dict[str, object]]:
    """Regenerate Table 1 from the circuit library definitions.

    Covers every circuit in :data:`repro.circuits.BENCHMARK_BUILDERS` — the
    paper's two benchmarks plus the topology zoo.
    """
    return {name: build().summary() for name, build in BENCHMARK_BUILDERS.items()}


def format_table1(table: Optional[Dict[str, Dict[str, object]]] = None) -> str:
    """Human-readable rendering of Table 1 (used by the quickstart example)."""
    table = table or build_table1()
    lines: List[str] = []
    for circuit, summary in table.items():
        lines.append(f"Circuit: {circuit} ({summary['technology']})")
        lines.append(f"  device parameters: {summary['num_device_parameters']}")
        lines.append("  design space:")
        for name, bounds in summary["parameters"].items():
            lines.append(
                f"    {name:<12s} [{bounds['min']:.3g}, {bounds['max']:.3g}] "
                f"step {bounds['step']:.3g}"
            )
        lines.append("  specification sampling space:")
        for name, bounds in summary["specifications"].items():
            lines.append(
                f"    {name:<14s} [{bounds['min']:.3g}, {bounds['max']:.3g}] "
                f"({bounds['objective']})"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Circuit-zoo table (README)
# ----------------------------------------------------------------------
def build_circuit_zoo() -> List[Dict[str, object]]:
    """One row per library circuit: summary counts plus its registered env IDs.

    The registered-ID column is derived from the environment registry's
    ``circuit`` metadata, so a circuit registered through
    :func:`repro.register_env` with that metadata shows up automatically.
    """
    ids_by_circuit: Dict[str, List[str]] = {}
    for env_id in ENVS.ids():
        circuit = ENVS.get(env_id).metadata.get("circuit")
        if circuit is not None:
            ids_by_circuit.setdefault(circuit, []).append(env_id)
    rows: List[Dict[str, object]] = []
    for name, build in BENCHMARK_BUILDERS.items():
        summary = build().summary()
        rows.append(
            {
                "circuit": name,
                "technology": summary["technology"],
                "num_device_parameters": summary["num_device_parameters"],
                "num_specifications": summary["num_specifications"],
                "specifications": list(summary["specifications"]),
                "env_ids": sorted(ids_by_circuit.get(name, [])),
            }
        )
    return rows


def format_circuit_zoo(rows: Optional[List[Dict[str, object]]] = None) -> str:
    """Render :func:`build_circuit_zoo` as the README's markdown table."""
    rows = rows if rows is not None else build_circuit_zoo()
    lines = [
        "| circuit | technology | params | specs | registered IDs |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        specs = ", ".join(row["specifications"])
        ids = ", ".join(f"`{env_id}`" for env_id in row["env_ids"])
        lines.append(
            f"| {row['circuit']} | {row['technology']} "
            f"| {row['num_device_parameters']} "
            f"| {row['num_specifications']} ({specs}) | {ids} |"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One row of the comparison summary."""

    method: str
    label: str
    uses_domain_knowledge: bool
    opamp_accuracy: Optional[float] = None
    opamp_mean_steps: Optional[float] = None
    rf_pa_accuracy: Optional[float] = None
    rf_pa_mean_steps: Optional[float] = None
    fom_value: Optional[float] = None


@dataclass
class Table2:
    """The regenerated comparison table."""

    rows: List[Table2Row] = field(default_factory=list)
    scale_name: str = "bench"

    def row(self, method: str) -> Table2Row:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no Table 2 row for method '{method}'")

    def as_text(self) -> str:
        header = (
            f"{'method':<28s} {'domain':>6s} {'acc(opamp)':>11s} {'steps(opamp)':>13s} "
            f"{'acc(pa)':>8s} {'steps(pa)':>10s} {'FoM':>6s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            def fmt(value, pattern="{:.2f}"):
                return pattern.format(value) if value is not None and not np.isnan(value) else "-"
            lines.append(
                f"{row.label:<28s} {('YES' if row.uses_domain_knowledge else 'NO'):>6s} "
                f"{fmt(row.opamp_accuracy):>11s} {fmt(row.opamp_mean_steps, '{:.1f}'):>13s} "
                f"{fmt(row.rf_pa_accuracy):>8s} {fmt(row.rf_pa_mean_steps, '{:.1f}'):>10s} "
                f"{fmt(row.fom_value):>6s}"
            )
        return "\n".join(lines)


def _rl_row(
    method: str,
    scale: ExperimentScale,
    seed: int,
    circuits: Sequence[str],
    include_fom: bool,
) -> Table2Row:
    row = Table2Row(
        method=method,
        label=METHOD_LABELS.get(method, method),
        uses_domain_knowledge=method in ("gcn_fc", "gat_fc"),
    )
    if "two_stage_opamp" in circuits:
        training = run_training_experiment(
            "two_stage_opamp", method, scale=scale, seed=seed, track_accuracy=False
        )
        evaluation = evaluate_deployment(
            training.env, training.policy, num_targets=scale.deployment_specs,
            seed=seed + 1000, batch_size=DEPLOYMENT_BATCH_SIZE,
        )
        row.opamp_accuracy = evaluation.accuracy
        row.opamp_mean_steps = evaluation.mean_steps
    if "rf_pa" in circuits:
        training = run_training_experiment(
            "rf_pa", method, scale=scale, seed=seed, track_accuracy=False
        )
        # Deployment on the fine simulator, per the transfer-learning protocol.
        fine_env = make_env("rf_pa-fine-v0", seed=seed)
        evaluation = evaluate_deployment(
            fine_env, training.policy, num_targets=scale.deployment_specs,
            seed=seed + 1000, batch_size=DEPLOYMENT_BATCH_SIZE,
        )
        row.rf_pa_accuracy = evaluation.accuracy
        row.rf_pa_mean_steps = evaluation.mean_steps
    if include_fom:
        row.fom_value = run_fom_training(method, scale=scale, seed=seed).best_fom
    return row


def _optimizer_row(
    method: str,
    scale: ExperimentScale,
    seed: int,
    circuits: Sequence[str],
    include_fom: bool,
) -> Table2Row:
    row = Table2Row(
        method=method,
        label=METHOD_LABELS.get(method, method),
        uses_domain_knowledge=False,
    )
    if "two_stage_opamp" in circuits:
        accuracy = evaluate_optimizer_accuracy("two_stage_opamp", method, scale=scale, seed=seed)
        row.opamp_accuracy = accuracy.accuracy
        row.opamp_mean_steps = accuracy.mean_simulations
    if "rf_pa" in circuits:
        accuracy = evaluate_optimizer_accuracy("rf_pa", method, scale=scale, seed=seed)
        row.rf_pa_accuracy = accuracy.accuracy
        row.rf_pa_mean_steps = accuracy.mean_simulations
    if include_fom:
        row.fom_value = run_fom_optimizer(method, seed=seed).best_fom
    return row


def _supervised_row(scale: ExperimentScale, seed: int, circuits: Sequence[str]) -> Table2Row:
    row = Table2Row(
        method="supervised_learning",
        label=METHOD_LABELS["supervised_learning"],
        uses_domain_knowledge=False,
    )
    if "two_stage_opamp" in circuits:
        env = make_env("opamp-p2s-v0", seed=seed)
        optimizer = make_optimizer(
            "supervised",
            num_training_samples=scale.supervised_samples,
            epochs=scale.supervised_epochs,
        )
        # Train once, then reuse the fitted sizer for the whole target batch
        # (one optimize() call fits and designs; the sizer rides along in
        # result.metadata).
        rng = np.random.default_rng(seed + 1000)
        targets = env.benchmark.spec_space.sample_batch(rng, scale.deployment_specs)
        result = optimizer.optimize(env, seed=seed, target_specs=targets[0])
        sizer = result.metadata["sizer"]
        row.opamp_accuracy = sizer.evaluate_accuracy(targets)
        row.opamp_mean_steps = 1.0
    return row


#: Row-kind dispatch used by :func:`table2_row_unit`.
_ROW_BUILDERS = {
    "optimizer": lambda a, scale: _optimizer_row(
        a["method"], scale, a["seed"], a["circuits"], a["include_fom"]
    ),
    "supervised": lambda a, scale: _supervised_row(scale, a["seed"], a["circuits"]),
    "rl": lambda a, scale: _rl_row(
        a["method"], scale, a["seed"], a["circuits"], a["include_fom"]
    ),
}


def table2_row_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Regenerate one Table 2 row from its JSON payload (worker contract)."""
    kind = arguments["kind"]
    if kind not in _ROW_BUILDERS:
        raise ValueError(f"unknown Table 2 row kind {kind!r}")
    scale = ExperimentScale(**arguments["scale"])
    return asdict(_ROW_BUILDERS[kind](arguments, scale))


def table2_units(
    scale: ExperimentScale,
    seed: int,
    circuits: Sequence[str],
    rl_methods: Sequence[str],
    optimizer_methods: Sequence[str],
    include_supervised: bool,
    include_fom: bool,
) -> List[WorkUnit]:
    """One independent work unit per Table 2 row, in presentation order."""
    base: Dict[str, Any] = {
        "scale": asdict(scale),
        "seed": seed,
        "circuits": list(circuits),
        "include_fom": include_fom,
    }
    rows = [("optimizer", method) for method in optimizer_methods]
    if include_supervised:
        rows.append(("supervised", "supervised_learning"))
    rows.extend(("rl", method) for method in rl_methods)
    return [
        WorkUnit(
            unit_id=f"table2+{method}",
            runner="repro.experiments.tables:table2_row_unit",
            payload={**base, "kind": kind, "method": method},
        )
        for kind, method in rows
    ]


def build_table2(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    circuits: Sequence[str] = ("two_stage_opamp",),
    rl_methods: Sequence[str] = RL_METHODS,
    optimizer_methods: Sequence[str] = ("genetic_algorithm", "bayesian_optimization"),
    include_supervised: bool = True,
    include_fom: bool = False,
    workers: int = 1,
    store: Optional[Union[str, "object"]] = None,
    resume: bool = True,
) -> Table2:
    """Regenerate Table 2 (or a subset of its columns/rows).

    At bench scale the defaults restrict the expensive columns (RF PA and
    FoM) — pass ``circuits=("two_stage_opamp", "rf_pa")`` and
    ``include_fom=True`` to regenerate the full table.

    Each row is an independent work unit executed through the orchestrator:
    ``workers=k`` regenerates rows across ``k`` processes, and ``store=...``
    (an :class:`repro.orchestrate.ArtifactStore` or directory) persists rows
    so an interrupted regeneration resumes where it stopped.  Row values are
    identical for any worker count.
    """
    scale = scale or bench_scale()
    units = table2_units(
        scale, seed, circuits, rl_methods, optimizer_methods,
        include_supervised, include_fom,
    )
    report = execute_with_store(units, store=store, workers=workers, resume=resume)
    report.raise_on_failure()
    table = Table2(scale_name=scale.name)
    table.rows.extend(Table2Row(**record.result) for record in report.records)
    return table
