"""The async serving gateway: deadline-batched queueing over the service.

:class:`Gateway` is the traffic-facing front door of ``repro.serve``.  It
accepts *individual* sizing requests (:meth:`Gateway.submit` returns a
:class:`concurrent.futures.Future` per request), coalesces them per
``(env_id, max_steps)`` group in a :class:`RequestQueue` until either the
batch is full or the oldest request's deadline budget expires
(deadline-based dynamic batching), executes each coalesced batch on a
sharded worker pool, and fans the results back out to the per-request
futures.

Two execution backends plug in behind the same duck type
(``serve_group`` / ``resolve_env_id`` / ``stats`` / ``batch_size``):

* :class:`~repro.serve.service.DeploymentService` — worker *threads* drive
  the service's persistent per-topology vector environments directly.
  Topologies are sharded over the workers by a stable hash, so each
  environment is only ever touched by one worker and batches for different
  topologies execute genuinely in parallel.
* :class:`ProcessShardPool` — worker threads dispatch batches to persistent
  ``multiprocessing`` shard processes (the same fork-preferring pool context
  as :mod:`repro.orchestrate`), each holding its own
  :class:`DeploymentService`; a shared on-disk simulation corpus
  (``cache_dir`` → :class:`repro.surrogate.TieredSimulator` /
  :class:`repro.parallel.DiskSimulationCache` entry format) lets the shards
  reuse each other's exact simulations.

Because the batched deployment engine is episode-level identical to
sequential :func:`repro.agents.deploy_policy`, gateway responses are
bitwise-identical to sequential deployment for the same requests —
regardless of arrival order, coalesce sizes, or deadline settings.

Failure discipline: a worker never dies.  Request timeouts, unroutable
environments, checkpoint errors, and unexpected exceptions all become
structured :class:`~repro.serve.protocol.ServeError` responses on the
affected futures; :meth:`Gateway.close` drains the queue by default so
accepted requests are answered even on shutdown.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.agents.checkpoint import CheckpointError
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.serve.service import DeploymentService, ServeStats

#: Default time a request may wait in the queue for coalescing partners.
DEFAULT_BATCH_DELAY_MS = 25.0

#: Entry budget of the gateway's optional response cache (FIFO eviction).
RESPONSE_CACHE_SIZE = 4096

GroupKey = Tuple[str, Optional[int]]
CacheKey = Tuple[str, Optional[int], Tuple[Tuple[str, float], ...]]


def shard_of(env_id: str, num_shards: int) -> int:
    """Stable shard index for a topology (hash() is salted per process)."""
    return zlib.crc32(env_id.encode("utf-8")) % num_shards


@dataclass
class _Pending:
    """One queued request: the request, its future, and its clocks."""

    request: ServeRequest
    future: Future
    enqueued_at: float
    flush_at: float
    timeout_at: Optional[float]


class RequestQueue:
    """A deadline-aware, topology-sharded request queue.

    Requests accumulate per ``(env_id, max_steps)`` group.  A worker's
    :meth:`next_batch` blocks until one of its shard's groups either reaches
    ``batch_size`` (trigger ``"full"``) or holds a request whose flush
    deadline passed (trigger ``"deadline"``), then pops up to ``batch_size``
    requests from it.  During a draining close every remaining group flushes
    immediately (trigger ``"drain"``).
    """

    def __init__(self, num_shards: int = 1) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self._cond = threading.Condition()
        self._groups: Dict[GroupKey, Deque[_Pending]] = {}
        self._closed = False
        self._draining = False

    def put(self, key: GroupKey, pending: _Pending) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("the gateway is closed; no new requests accepted")
            self._groups.setdefault(key, deque()).append(pending)
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return sum(len(queue) for queue in self._groups.values())

    def next_batch(
        self, shard: int, batch_size: int
    ) -> Optional[Tuple[GroupKey, List[_Pending], str]]:
        """Block until a batch is ready for ``shard``; None when shut down."""
        with self._cond:
            while True:
                now = time.monotonic()
                ready: Optional[Tuple[GroupKey, str]] = None
                earliest: Optional[float] = None
                for key, queue in self._groups.items():
                    if not queue or shard_of(key[0], self.num_shards) != shard:
                        continue
                    if len(queue) >= batch_size:
                        ready = (key, "full")
                        break
                    head = queue[0].flush_at
                    if self._draining:
                        ready = (key, "drain")
                        break
                    if head <= now:
                        # Flush the longest-overdue group first.
                        if ready is None or head < earliest:  # type: ignore[operator]
                            ready = (key, "deadline")
                            earliest = head
                    elif earliest is None or head < earliest:
                        earliest = head
                if ready is not None:
                    key, trigger = ready
                    queue = self._groups[key]
                    batch = [queue.popleft() for _ in range(min(batch_size, len(queue)))]
                    if not queue:
                        del self._groups[key]
                    return key, batch, trigger
                if self._closed:
                    return None
                timeout = None if earliest is None else max(0.0, earliest - now)
                self._cond.wait(timeout=timeout)

    def close(self, drain: bool) -> List[_Pending]:
        """Stop accepting requests; returns the abandoned requests (drain=False)."""
        with self._cond:
            self._closed = True
            self._draining = drain
            remaining: List[_Pending] = []
            if not drain:
                for queue in self._groups.values():
                    remaining.extend(queue)
                self._groups.clear()
            self._cond.notify_all()
            return remaining


class Gateway:
    """Async front door over a deployment backend, with dynamic batching.

    Parameters
    ----------
    backend:
        A :class:`DeploymentService` (thread mode) or
        :class:`ProcessShardPool` (process-shard mode).
    num_workers:
        Worker threads.  Topologies are sharded over them by a stable hash
        of the env ID, so one environment never sees two workers.
    max_batch_delay_ms:
        Default coalescing budget for requests that do not set their own
        ``deadline_ms``; ``0`` disables batching delay (every request
        flushes immediately, alone or with whatever already queued).
    request_timeout_s:
        Optional hard budget: a request still queued this long after
        submission is answered with a structured ``timeout`` error instead
        of being executed.
    checkpoints:
        Optional ``{env_id: checkpoint path}`` mapping registered *lazily*:
        the first request routed to such an env loads its checkpoint then;
        load or compatibility failures surface as ``checkpoint_error``
        responses on that request's future (never as worker crashes).
    cache_responses:
        Memoize completed responses per ``(env_id, max_steps, target_specs)``
        and answer repeated identical requests straight from the cache.
        Deployment is deterministic (greedy policy, fixed initial design), so
        a cached response is bitwise what re-running the episode would
        produce; this is the serving-layer analogue of the simulation cache
        and is what makes duplicate-heavy replay traffic cheap.  Hits carry
        ``tier={"response_cache_hits": 1}``, count into
        ``ServeStats.cache_hits``, and do **not** re-run episodes (so they do
        not increment ``episodes``).  Off by default: with a stochastic
        service (``deterministic=False``) replayed responses would not match
        fresh rollouts.
    """

    def __init__(
        self,
        backend: Any,
        num_workers: int = 2,
        max_batch_delay_ms: float = DEFAULT_BATCH_DELAY_MS,
        request_timeout_s: Optional[float] = None,
        checkpoints: Optional[Mapping[str, Union[str, Path]]] = None,
        cache_responses: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_batch_delay_ms < 0:
            raise ValueError("max_batch_delay_ms must be >= 0")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        self.backend = backend
        self.batch_size = int(backend.batch_size)
        self.max_batch_delay_ms = float(max_batch_delay_ms)
        self.request_timeout_s = request_timeout_s
        self._lazy_checkpoints = {
            str(env_id): Path(path) for env_id, path in dict(checkpoints or {}).items()
        }
        self.cache_responses = bool(cache_responses)
        self._response_cache: Dict[CacheKey, ServeResponse] = {}
        self._cache_lock = threading.Lock()
        self._queue = RequestQueue(num_shards=num_workers)
        self._closed = False
        self._close_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"gateway-worker-{index}",
                daemon=True,
            )
            for index in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServeStats:
        return self.backend.stats

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def stats_dict(self) -> Dict[str, Any]:
        """The backend's stats document plus the gateway configuration."""
        document = (
            self.backend.stats_dict()
            if hasattr(self.backend, "stats_dict")
            else self.stats.to_dict()
        )
        document["gateway"] = {
            "workers": self.num_workers,
            "batch_size": self.batch_size,
            "max_batch_delay_ms": self.max_batch_delay_ms,
            "request_timeout_s": self.request_timeout_s,
            "cache_responses": self.cache_responses,
        }
        return document

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(request: Union[ServeRequest, Mapping[str, Any]]) -> ServeRequest:
        if isinstance(request, ServeRequest):
            return request
        if isinstance(request, Mapping):
            return ServeRequest(target_specs=dict(request))
        raise TypeError(
            f"requests must be ServeRequest objects or spec mappings, "
            f"got {type(request).__name__}"
        )

    def _failed_future(self, request: ServeRequest, code: str, message: str) -> Future:
        self.stats.record_error(code)
        future: Future = Future()
        future.set_result(ServeResponse.failure(request, code, message))
        return future

    @staticmethod
    def _cache_key(
        env_id: str, max_steps: Optional[int], target_specs: Mapping[str, float]
    ) -> CacheKey:
        return (env_id, max_steps, tuple(sorted(target_specs.items())))

    @staticmethod
    def _replay_response(template: ServeResponse, request: ServeRequest) -> ServeResponse:
        """A cached outcome re-stamped for a new request (dicts copied)."""
        return replace(
            template,
            index=0,
            request_id=request.request_id,
            target_specs=dict(template.target_specs),
            final_specs=dict(template.final_specs),
            final_parameters=dict(template.final_parameters),
            met=dict(template.met),
            timing={"queue_ms": 0.0, "serve_ms": 0.0, "total_ms": 0.0},
            tier={"response_cache_hits": 1},
        )

    def _cache_store(self, key: GroupKey, live: List[_Pending],
                     responses: Sequence[ServeResponse]) -> None:
        env_id, max_steps = key
        with self._cache_lock:
            for pending, response in zip(live, responses):
                cache_key = self._cache_key(
                    env_id, max_steps, pending.request.target_specs
                )
                self._response_cache.setdefault(cache_key, response)
            while len(self._response_cache) > RESPONSE_CACHE_SIZE:
                self._response_cache.pop(next(iter(self._response_cache)))

    def _route(self, request: ServeRequest) -> str:
        try:
            return self.backend.resolve_env_id(request.env_id)
        except ValueError:
            if request.env_id in self._lazy_checkpoints:
                path = self._lazy_checkpoints[request.env_id]
                try:
                    self.backend.add_checkpoint(path, env_id=request.env_id)
                except CheckpointError:
                    raise
                except (OSError, ValueError) as exc:
                    raise CheckpointError(
                        f"checkpoint {path} cannot serve environment "
                        f"{request.env_id!r}: {exc}"
                    ) from exc
                return self.backend.resolve_env_id(request.env_id)
            raise

    def submit(self, request: Union[ServeRequest, Mapping[str, Any]]) -> Future:
        """Enqueue one request; the Future resolves to its ServeResponse.

        Routing failures (unknown environment, broken lazy checkpoint)
        resolve the future immediately with a structured error response —
        ``submit`` only raises for caller bugs (bad request type, closed
        gateway).
        """
        received = time.monotonic()
        request = self._coerce(request)
        if self._closed:
            raise RuntimeError("the gateway is closed; no new requests accepted")
        try:
            env_id = self._route(request)
        except CheckpointError as exc:
            return self._failed_future(request, "checkpoint_error", str(exc))
        except ValueError as exc:
            return self._failed_future(request, "unroutable", str(exc))
        if self.cache_responses:
            cache_key = self._cache_key(env_id, request.max_steps, request.target_specs)
            with self._cache_lock:
                template = self._response_cache.get(cache_key)
            if template is not None:
                response = self._replay_response(template, request)
                response.timing["total_ms"] = (time.monotonic() - received) * 1000.0
                self.stats.record_cache_hit()
                self.stats.record_latency(response.timing["total_ms"])
                future: Future = Future()
                future.set_result(response)
                return future
        now = received
        delay_ms = (
            request.deadline_ms if request.deadline_ms is not None else self.max_batch_delay_ms
        )
        flush_at = now + delay_ms / 1000.0
        timeout_at = None
        if self.request_timeout_s is not None:
            timeout_at = now + self.request_timeout_s
            # An expired request must still leave the queue promptly to be
            # answered, so the hard budget also caps the coalescing wait.
            flush_at = min(flush_at, timeout_at)
        pending = _Pending(
            request=request,
            future=Future(),
            enqueued_at=now,
            flush_at=flush_at,
            timeout_at=timeout_at,
        )
        self.stats.note_enqueued()
        try:
            self._queue.put((env_id, request.max_steps), pending)
        except RuntimeError:
            self.stats.note_dequeued()
            raise
        return pending.future

    def submit_many(
        self, requests: Sequence[Union[ServeRequest, Mapping[str, Any]]]
    ) -> List[Future]:
        return [self.submit(request) for request in requests]

    def serve(
        self,
        requests: Sequence[Union[ServeRequest, Mapping[str, Any]]],
        timeout: Optional[float] = None,
    ) -> List[ServeResponse]:
        """Submit a batch and block for the responses (submission order)."""
        futures = self.submit_many(requests)
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    @staticmethod
    def _finalize(pending: _Pending, response: ServeResponse) -> None:
        if not pending.future.cancelled():
            pending.future.set_result(response)

    def _worker_loop(self, shard: int) -> None:
        while True:
            item = self._queue.next_batch(shard, self.batch_size)
            if item is None:
                return
            (env_id, max_steps), batch, trigger = item
            self.stats.note_dequeued(len(batch))
            self.stats.record_batch(len(batch), trigger)
            now = time.monotonic()
            live: List[_Pending] = []
            for pending in batch:
                if pending.timeout_at is not None and now >= pending.timeout_at:
                    waited_ms = (now - pending.enqueued_at) * 1000.0
                    self.stats.record_error("timeout")
                    self._finalize(
                        pending,
                        ServeResponse.failure(
                            pending.request,
                            "timeout",
                            f"request spent {waited_ms:.0f} ms queued, over the "
                            f"{self.request_timeout_s}s budget",
                            env_id=env_id,
                        ),
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            try:
                responses = self.backend.serve_group(
                    env_id, max_steps, [pending.request for pending in live]
                )
            except Exception as exc:  # noqa: BLE001 - a worker must never die
                code = "checkpoint_error" if isinstance(exc, CheckpointError) else "internal"
                for pending in live:
                    self.stats.record_error(code)
                    self._finalize(
                        pending,
                        ServeResponse.failure(
                            pending.request, code, f"{type(exc).__name__}: {exc}", env_id=env_id
                        ),
                    )
                continue
            finished = time.monotonic()
            if self.cache_responses:
                self._cache_store((env_id, max_steps), live, responses)
            for pending, response in zip(live, responses):
                response.request_id = pending.request.request_id
                response.timing = {
                    **response.timing,
                    "queue_ms": (now - pending.enqueued_at) * 1000.0,
                    "total_ms": (finished - pending.enqueued_at) * 1000.0,
                }
                self.stats.record_latency(response.timing["total_ms"])
                self._finalize(pending, response)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the gateway down.

        ``drain=True`` (the default, and what the CLI's SIGINT handler
        calls) flushes every queued request through the workers first;
        ``drain=False`` answers queued requests with structured ``shutdown``
        errors instead.  Idempotent; workers are joined either way, so no
        orphan threads survive.
        """
        with self._close_lock:
            if not self._closed:
                self._closed = True
                abandoned = self._queue.close(drain)
                for pending in abandoned:
                    self.stats.note_dequeued()
                    self.stats.record_error("shutdown")
                    self._finalize(
                        pending,
                        ServeResponse.failure(
                            pending.request,
                            "shutdown",
                            "the gateway shut down before this request ran",
                        ),
                    )
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close(drain=True)


# ----------------------------------------------------------------------
# Process-shard backend
# ----------------------------------------------------------------------

#: Per-process service, installed by the pool initializer.
_SHARD_SERVICE: Optional[DeploymentService] = None


def _initialize_shard_service(spec: Dict[str, Any]) -> None:
    global _SHARD_SERVICE
    service = DeploymentService(
        batch_size=spec["batch_size"],
        cache_size=spec["cache_size"],
        deterministic=True,
    )
    for env_id, path in spec["checkpoints"].items():
        service.add_checkpoint(
            path,
            env_id=env_id,
            surrogate=spec["surrogates"].get(env_id),
            surrogate_dir=spec["cache_dir"],
        )
    _SHARD_SERVICE = service


def _serve_in_shard(
    env_id: str, max_steps: Optional[int], payload: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    assert _SHARD_SERVICE is not None, "shard process was not initialized"
    requests = [ServeRequest.from_dict(entry) for entry in payload]
    responses = _SHARD_SERVICE.serve_group(env_id, max_steps, requests)
    return [response.to_dict() for response in responses]


class ProcessShardPool:
    """A sharded multi-process deployment backend for :class:`Gateway`.

    Each shard process holds a full :class:`DeploymentService` built from
    the same ``{env_id: checkpoint}`` mapping (policies rebuild from disk in
    every worker).  Batches travel as protocol dicts and come back as
    :class:`ServeResponse` objects, so results are identical to the
    in-process backend.  Passing ``cache_dir`` routes every shard's
    simulations through a shared on-disk corpus
    (:class:`repro.surrogate.TieredSimulator` with a persistent directory —
    the :class:`repro.parallel.DiskSimulationCache` entry format), so one
    shard's exact simulations become every other shard's disk hits; optional
    per-env ``surrogates`` add the learned tier on top.

    The pool context is :func:`repro.orchestrate.pool._pool_context` — fork
    where the platform offers it, exactly like the sweep orchestrator.
    """

    def __init__(
        self,
        checkpoints: Mapping[str, Union[str, Path]],
        shards: int = 2,
        batch_size: int = 8,
        cache_size: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        surrogates: Optional[Mapping[str, Union[str, Path]]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        from repro.orchestrate.pool import _pool_context
        from repro.parallel.cache import DEFAULT_CACHE_SIZE

        if not checkpoints:
            raise ValueError("ProcessShardPool needs at least one env_id -> checkpoint")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._checkpoints = {str(env): str(path) for env, path in checkpoints.items()}
        self._default_env_id = next(iter(self._checkpoints))
        self.batch_size = int(batch_size)
        self.stats = ServeStats()
        spec = {
            "checkpoints": dict(self._checkpoints),
            "batch_size": self.batch_size,
            "cache_size": int(cache_size) if cache_size is not None else DEFAULT_CACHE_SIZE,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
            "surrogates": {
                str(env): str(path) for env, path in dict(surrogates or {}).items()
            },
        }
        context = _pool_context(start_method)
        self._pool = context.Pool(
            processes=int(shards), initializer=_initialize_shard_service, initargs=(spec,)
        )
        self.shards = int(shards)

    @property
    def env_ids(self) -> List[str]:
        return sorted(self._checkpoints)

    def resolve_env_id(self, env_id: Optional[str]) -> str:
        if env_id is None:
            return self._default_env_id
        if env_id not in self._checkpoints:
            registered = ", ".join(self.env_ids) or "none"
            raise ValueError(
                f"no checkpoint registered for environment {env_id!r} "
                f"(registered: {registered})"
            )
        return env_id

    def add_checkpoint(self, path: Union[str, Path], env_id: Optional[str] = None) -> str:
        raise CheckpointError(
            "ProcessShardPool checkpoints are fixed at construction (each shard "
            "process builds its service once); restart the pool to add "
            f"{env_id or path!r}"
        )

    def serve_group(
        self,
        env_id: str,
        max_steps: Optional[int],
        requests: Sequence[ServeRequest],
    ) -> List[ServeResponse]:
        """Execute one coalesced batch on whichever shard process is free."""
        payload = [request.to_dict() for request in requests]
        start = time.perf_counter()
        response_dicts = self._pool.apply(_serve_in_shard, (env_id, max_steps, payload))
        elapsed = time.perf_counter() - start
        responses = [ServeResponse.from_dict(entry) for entry in response_dicts]
        self.stats.record_responses(env_id, responses, elapsed)
        if responses:
            tier = responses[0].tier
            self.stats.record_tiers(
                tier.get("surrogate_hits", 0),
                tier.get("trust_rejections", 0),
                tier.get("exact_fallbacks", 0),
            )
        return responses

    def stats_dict(self) -> Dict[str, Any]:
        return {**self.stats.to_dict(), "shards": self.shards}

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
