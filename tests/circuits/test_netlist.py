"""Tests for the netlist container."""

from __future__ import annotations

import pytest

from repro.circuits.devices import DeviceType, capacitor, ground, nmos, resistor, supply
from repro.circuits.netlist import Netlist


@pytest.fixture
def small_netlist() -> Netlist:
    netlist = Netlist("amp")
    netlist.add_device(nmos("M1", "out", "in", "vgnd"))
    netlist.add_device(resistor("RL", "vdd", "out", 10e3))
    netlist.add_device(capacitor("CL", "out", "vgnd", 1e-12))
    netlist.add_device(supply("VP", "vdd", 1.2))
    netlist.add_device(ground("VGND", "vgnd"))
    return netlist


class TestConstruction:
    def test_duplicate_names_rejected(self, small_netlist):
        with pytest.raises(ValueError):
            small_netlist.add_device(resistor("RL", "a", "b", 1.0))

    def test_len_iter_contains(self, small_netlist):
        assert len(small_netlist) == 5
        assert "M1" in small_netlist
        assert "MX" not in small_netlist
        assert {d.name for d in small_netlist} == {"M1", "RL", "CL", "VP", "VGND"}

    def test_lookup(self, small_netlist):
        assert small_netlist.device("M1").dtype is DeviceType.NMOS
        with pytest.raises(KeyError):
            small_netlist.device("M99")

    def test_type_queries(self, small_netlist):
        assert [d.name for d in small_netlist.transistors] == ["M1"]
        assert [d.name for d in small_netlist.devices_of_type(DeviceType.CAPACITOR)] == ["CL"]


class TestConnectivity:
    def test_nets(self, small_netlist):
        assert set(small_netlist.nets) == {"out", "in", "vgnd", "vdd"}

    def test_devices_on_net(self, small_netlist):
        names = {d.name for d in small_netlist.devices_on_net("out")}
        assert names == {"M1", "RL", "CL"}

    def test_connections_are_shared_net_pairs(self, small_netlist):
        edges = set(small_netlist.connections())
        assert ("M1", "RL") in edges
        assert ("M1", "CL") in edges
        assert ("RL", "VP") in edges
        assert ("M1", "VGND") in edges
        # RL (vdd,out) and VGND (vgnd) share no net.
        assert ("RL", "VGND") not in edges and ("VGND", "RL") not in edges


class TestParameterRewriting:
    def test_get_set_parameter(self, small_netlist):
        small_netlist.set_parameter("RL", "value", 22e3)
        assert small_netlist.get_parameter("RL", "value") == pytest.approx(22e3)

    def test_update_parameters_batch(self, small_netlist):
        small_netlist.update_parameters({("M1", "width"): 5e-6, ("CL", "value"): 2e-12})
        assert small_netlist.get_parameter("M1", "width") == pytest.approx(5e-6)
        assert small_netlist.get_parameter("CL", "value") == pytest.approx(2e-12)

    def test_parameter_snapshot(self, small_netlist):
        snapshot = small_netlist.parameter_snapshot()
        assert snapshot[("RL", "value")] == pytest.approx(10e3)
        assert snapshot[("VP", "voltage")] == pytest.approx(1.2)


class TestCopyAndExport:
    def test_copy_is_deep(self, small_netlist):
        clone = small_netlist.copy()
        clone.set_parameter("M1", "width", 77e-6)
        assert small_netlist.get_parameter("M1", "width") != pytest.approx(77e-6)

    def test_to_spice_contains_devices_and_end(self, small_netlist):
        card = small_netlist.to_spice()
        assert card.startswith("* netlist: amp")
        assert card.rstrip().endswith(".end")
        for name in ("M1", "RL", "CL", "VP", "VGND"):
            assert name in card
        assert "width=" in card
