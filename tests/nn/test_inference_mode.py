"""Inference mode: no graph recording, identical numbers, restored state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import MLP
from repro.nn.tensor import (
    Tensor,
    concatenate,
    inference_mode,
    is_grad_enabled,
    set_grad_enabled,
    stack,
    where,
)


class TestModeSwitch:
    def test_enabled_by_default(self):
        assert is_grad_enabled()

    def test_context_disables_and_restores(self):
        with inference_mode():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nesting(self):
        with inference_mode():
            with inference_mode():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_set_grad_enabled_round_trip(self):
        previous = set_grad_enabled(False)
        try:
            assert previous is True
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(previous)
        assert is_grad_enabled()


class TestNoGraphRecording:
    def test_ops_produce_detached_results(self):
        w = Tensor(np.ones((3, 3)), requires_grad=True)
        x = Tensor(np.arange(3.0).reshape(1, 3))
        with inference_mode():
            results = [
                x @ w,
                x + w[0],
                (x * 2.0).tanh(),
                x.sum(),
                x.reshape(3, 1),
                x.log_softmax(axis=-1),
                concatenate([x, x], axis=-1),
                stack([x, x]),
                where(np.array([True, False, True]), x[0], w[0]),
            ]
        for result in results:
            assert not result.requires_grad
            assert result._backward is None
            assert result._parents == ()

    def test_backward_raises_on_inference_result(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with inference_mode():
            loss = (w * 2.0).sum()
        with pytest.raises(RuntimeError):
            loss.backward()

    def test_graph_recording_resumes_after_exit(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with inference_mode():
            (w * 3.0).sum()
        (w * 2.0).sum().backward()
        np.testing.assert_array_equal(w.grad, np.full(4, 2.0))


class TestNumericalParity:
    def test_forward_values_bitwise_identical(self):
        rng = np.random.default_rng(0)
        mlp = MLP((6, 16, 8, 3), rng=rng, hidden_activation="tanh")
        x = Tensor(rng.normal(size=(5, 6)))
        graded = mlp(x).numpy()
        with inference_mode():
            inferred = mlp(x).numpy()
        np.testing.assert_array_equal(graded, inferred)

    def test_forward_array_matches_tensor_forward(self):
        rng = np.random.default_rng(1)
        mlp = MLP((4, 12, 2), rng=rng, hidden_activation="relu",
                  output_activation="sigmoid")
        x = rng.normal(size=(7, 4))
        np.testing.assert_array_equal(mlp(Tensor(x)).numpy(), mlp.forward_array(x))


class TestDetachCopies:
    def test_detach_returns_an_independent_copy(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        detached = x.detach()
        detached.data[0] = 99.0
        assert x.data[0] == 1.0
        assert not detached.requires_grad

    def test_numpy_still_aliases(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert x.numpy() is x.data
