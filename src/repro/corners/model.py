"""PVT corner definitions over the behavioural technology model.

A :class:`Corner` is a named (process, temperature) point: threshold and
mobility scale factors around the nominal process constants plus a junction
temperature fed to the MOSFET temperature model
(:func:`repro.simulation.technology.temperature_mobility_factor` /
``VTH_TEMPCO_V_PER_K``).  A :class:`CornerSet` bundles the corners a sizing
must survive together with the weights the yield-aware reward uses, and
:func:`default_corner_set` is the five-corner sweep the ``*-corners-v0``
environments evaluate: the typical point plus the four worst-case
process/temperature combinations of a classic corner kit (±10 % threshold
and mobility, −40/125 °C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.simulation.technology import NOMINAL_TEMPERATURE_C

#: The slow process corner: thresholds up 10 %, mobility down 10 %.
SLOW_VTH_SCALE, SLOW_MOBILITY_SCALE = 1.1, 0.9
#: The fast process corner: thresholds down 10 %, mobility up 10 %.
FAST_VTH_SCALE, FAST_MOBILITY_SCALE = 0.9, 1.1
#: Cold and hot ends of the sweep's temperature range (°C).
COLD_TEMPERATURE_C = -40.0
HOT_TEMPERATURE_C = 125.0


@dataclass(frozen=True)
class Corner:
    """One named PVT point: process scale factors plus a temperature."""

    name: str
    vth_scale: float = 1.0
    mobility_scale: float = 1.0
    temperature_c: float = NOMINAL_TEMPERATURE_C

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("corner name must be non-empty")
        if "@" in self.name:
            # Spec keys are flattened as "<spec>@<corner>"; an '@' inside the
            # corner name would make those keys ambiguous to parse back.
            raise ValueError(f"corner name {self.name!r} must not contain '@'")
        if self.vth_scale <= 0.0 or self.mobility_scale <= 0.0:
            raise ValueError("vth_scale and mobility_scale must be positive")

    def apply(self, technology):
        """Technology constants at this corner (CMOS or GaN — both expose
        :meth:`at_corner`)."""
        return technology.at_corner(
            vth_scale=self.vth_scale,
            mobility_scale=self.mobility_scale,
            temperature_c=self.temperature_c,
        )


#: The nominal corner (identity process scaling at 27 °C).
TYPICAL = Corner(name="typical")


@dataclass(frozen=True)
class CornerSet:
    """An ordered set of corners plus the weights the yield reward applies.

    Weights are relative (they are normalized wherever they are consumed);
    the default weighs every corner equally.  Corner order is significant —
    it fixes the lane order of the batched evaluation and the order of the
    flattened ``<spec>@<corner>`` keys.
    """

    corners: Tuple[Corner, ...]
    weights: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.corners:
            raise ValueError("a CornerSet needs at least one corner")
        names = [corner.name for corner in self.corners]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate corner names: {names}")
        if not self.weights:
            object.__setattr__(self, "weights", (1.0,) * len(self.corners))
        if len(self.weights) != len(self.corners):
            raise ValueError(
                f"{len(self.weights)} weights for {len(self.corners)} corners"
            )
        if any(weight <= 0.0 for weight in self.weights):
            raise ValueError("corner weights must be positive")

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self) -> Iterator[Corner]:
        return iter(self.corners)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(corner.name for corner in self.corners)

    def normalized_weights(self) -> Tuple[float, ...]:
        """Weights scaled to sum to one (the reward's mixing coefficients)."""
        total = sum(self.weights)
        return tuple(weight / total for weight in self.weights)

    def spec_key(self, spec_name: str, corner: Corner) -> str:
        """Flattened per-corner spec key, e.g. ``"gain@slow_hot"``."""
        return f"{spec_name}@{corner.name}"


def default_corner_set() -> CornerSet:
    """The five-corner PVT sweep of the ``*-corners-v0`` environments.

    Typical at 27 °C plus the four extreme process/temperature pairings.
    ``slow_hot`` (weak process, hot) usually binds bandwidth, ``fast_cold``
    (strong process, cold) binds power and gain; the two mixed corners catch
    threshold-driven bias-headroom failures.
    """
    return CornerSet(
        corners=(
            TYPICAL,
            Corner("slow_hot", SLOW_VTH_SCALE, SLOW_MOBILITY_SCALE, HOT_TEMPERATURE_C),
            Corner("slow_cold", SLOW_VTH_SCALE, SLOW_MOBILITY_SCALE, COLD_TEMPERATURE_C),
            Corner("fast_hot", FAST_VTH_SCALE, FAST_MOBILITY_SCALE, HOT_TEMPERATURE_C),
            Corner("fast_cold", FAST_VTH_SCALE, FAST_MOBILITY_SCALE, COLD_TEMPERATURE_C),
        )
    )
