"""Fig. 6 — generalization to unseen specifications.

Deploys a trained GCN-FC policy toward specification groups *outside* the
Table 1 sampling space (op-amp: G=225, B=2.6e7 Hz, PM=65°, P=6 mW; RF PA:
Pout=2.9 W, E=69 %).  The paper's observation is that such deployments are
still possible but typically need more search steps than in-distribution
deployments (Fig. 5), so both are run on the *same* trained policy and their
step counts recorded side by side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import deployment_example, generalization_example
from repro.experiments.training import run_training_experiment


@pytest.mark.parametrize("circuit", ["two_stage_opamp", "rf_pa"])
def test_fig6_generalization_trajectory(benchmark, scale, circuit):
    def run():
        training = run_training_experiment(
            circuit, "gcn_fc", scale=scale, seed=0, track_accuracy=False
        )
        in_distribution = deployment_example(
            circuit, policy=training.policy, method="gcn_fc", scale=scale, seed=0
        )
        out_of_distribution = generalization_example(
            circuit, policy=training.policy, method="gcn_fc", scale=scale, seed=0
        )
        return in_distribution, out_of_distribution

    in_dist, out_dist = benchmark.pedantic(run, rounds=1, iterations=1)

    # The unseen targets really are outside the Table 1 sampling space.
    if circuit == "two_stage_opamp":
        assert out_dist.target_specs["phase_margin"] > 60.0
        assert out_dist.target_specs["bandwidth"] > 2.5e7
    else:
        assert out_dist.target_specs["efficiency"] > 0.60
    # Trajectories are recorded and the generalization budget is respected.
    assert out_dist.steps <= 80
    for name in out_dist.target_specs:
        assert np.all(np.isfinite(out_dist.spec_series(name)))

    benchmark.extra_info.update(
        {
            "circuit": circuit,
            "in_distribution_steps": int(in_dist.steps),
            "in_distribution_success": bool(in_dist.success),
            "generalization_steps": int(out_dist.steps),
            "generalization_success": bool(out_dist.success),
            "unseen_targets": {k: float(v) for k, v in out_dist.target_specs.items()},
        }
    )
