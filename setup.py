"""Setup shim for legacy editable installs (offline environments without wheel).

All real packaging metadata lives in ``pyproject.toml`` (name, dependencies,
``src/`` layout, and the version single-sourced from ``repro.__version__``).
"""

from setuptools import setup

setup()
