"""Gradient-based optimizers.

The paper trains both the policy and the value networks with Adam
(Kingma & Ba, 2015) inside the PPO loop (Algorithm 1).  SGD with optional
momentum is provided as well for the supervised-learning baseline and tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base class holding a parameter list and the zero-grad convenience."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        for param in self.parameters:
            if not param.requires_grad:
                raise ValueError("optimizer received a tensor that does not require grad")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which training loops log to monitor PPO
    stability.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                self._velocity[index] = self.momentum * self._velocity[index] + update
                update = self._velocity[index]
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias-corrected moments."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
