"""Gateway failure discipline: every failure is a structured response.

A worker must never die: timeouts, routing failures, broken checkpoints,
and unexpected exceptions all resolve the affected futures with
``ServeError`` responses, and the gateway keeps serving afterwards.
"""

from __future__ import annotations

import io
import json
import threading

import numpy as np
import pytest

import repro
from repro.serve import DeploymentService, Gateway, ServeRequest
from repro.serve.cli import _serve_stdin

MAX_STEPS = 6


@pytest.fixture(scope="module")
def policy():
    env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
    return repro.make_policy("gcn_fc", env, np.random.default_rng(0))


@pytest.fixture(scope="module")
def target():
    env = repro.make_env("opamp-p2s-v0", seed=0)
    return dict(env.benchmark.spec_space.sample_batch(np.random.default_rng(2), 1)[0])


@pytest.fixture
def service(policy):
    service = DeploymentService(batch_size=4)
    service.register_policy("opamp-p2s-v0", policy)
    return service


def request_for(target, **kwargs):
    return ServeRequest(target_specs=dict(target), max_steps=MAX_STEPS, **kwargs)


class TestTimeouts:
    def test_expired_request_gets_structured_timeout(self, service, target):
        # The hard budget (1 ms) is far below the batching delay (10 s), so
        # the request expires in the queue and must come back as an error —
        # promptly, not after the 10 s coalescing window.
        with Gateway(
            service, num_workers=1, max_batch_delay_ms=10_000.0, request_timeout_s=0.001
        ) as gw:
            response = gw.submit(request_for(target, request_id="late")).result(timeout=30)
        assert not response.ok and not response.success
        assert response.error.code == "timeout"
        assert response.request_id == "late"
        snapshot = service.stats.snapshot()
        assert snapshot.timeouts == 1 and snapshot.errors == 1
        assert snapshot.episodes == 0  # it never reached the simulator

    def test_gateway_serves_fresh_requests_after_a_timeout(self, service, target):
        with Gateway(
            service, num_workers=1, max_batch_delay_ms=5_000.0, request_timeout_s=0.001
        ) as gw:
            assert gw.submit(request_for(target)).result(timeout=30).error.code == "timeout"
            # A request with its own tight deadline executes normally.
            ok = gw.submit(request_for(target, deadline_ms=0.0)).result(timeout=120)
            # It raced the same 1 ms budget; accept either outcome but the
            # gateway itself must still be alive and answering.
            assert ok.error is None or ok.error.code == "timeout"


class TestRouting:
    def test_unknown_env_is_unroutable_not_raised(self, service, target):
        with Gateway(service, num_workers=1) as gw:
            response = gw.submit(
                ServeRequest(target_specs=dict(target), env_id="nope-v0")
            ).result(timeout=30)
        assert response.error.code == "unroutable"
        assert "opamp-p2s-v0" in response.error.message  # lists what IS registered

    def test_broken_lazy_checkpoint_is_checkpoint_error(self, service, target, tmp_path):
        broken = tmp_path / "broken.npz"
        broken.write_bytes(b"this is not an npz archive")
        with Gateway(service, checkpoints={"opamp-v0": broken}, num_workers=1) as gw:
            response = gw.submit(
                ServeRequest(target_specs=dict(target), env_id="opamp-v0")
            ).result(timeout=30)
        assert response.error.code == "checkpoint_error"

    def test_mismatched_lazy_checkpoint_is_checkpoint_error(self, target, tmp_path):
        # An LNA-sized policy cannot serve the opamp topology: the lazy
        # registration fails and the response says why, in-band.
        lna_env = repro.make_env("common_source_lna-p2s-v0", seed=0)
        lna_policy = repro.make_policy("gcn_fc", lna_env, np.random.default_rng(0))
        path = repro.save_checkpoint(tmp_path / "lna.npz", lna_policy, policy_id="gcn_fc")
        service = DeploymentService(batch_size=2)
        with Gateway(service, checkpoints={"opamp-p2s-v0": path}, num_workers=1) as gw:
            response = gw.submit(
                ServeRequest(target_specs=dict(target), env_id="opamp-p2s-v0")
            ).result(timeout=30)
        assert response.error.code == "checkpoint_error"
        assert "parameters" in response.error.message

    def test_healthy_lazy_checkpoint_registers_and_serves(self, policy, target, tmp_path):
        path = repro.save_checkpoint(
            tmp_path / "ok.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
        )
        service = DeploymentService(batch_size=2)
        with Gateway(
            service, checkpoints={"opamp-p2s-v0": path}, num_workers=1,
            max_batch_delay_ms=0.0,
        ) as gw:
            response = gw.submit(request_for(target, env_id="opamp-p2s-v0")).result(
                timeout=120
            )
        assert response.ok and response.steps == MAX_STEPS


class TestWorkerSurvival:
    def test_backend_exception_is_internal_error_and_worker_survives(
        self, service, target, monkeypatch
    ):
        calls = {"n": 0}
        real = service.serve_group

        def flaky(env_id, max_steps, requests):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulator exploded")
            return real(env_id, max_steps, requests)

        monkeypatch.setattr(service, "serve_group", flaky)
        with Gateway(service, num_workers=1, max_batch_delay_ms=0.0) as gw:
            first = gw.submit(request_for(target)).result(timeout=30)
            second = gw.submit(request_for(target)).result(timeout=120)
        assert first.error.code == "internal"
        assert "simulator exploded" in first.error.message
        assert second.ok  # the same worker served the retry

    def test_abandoning_close_answers_queued_requests_with_shutdown(
        self, service, target
    ):
        gw = Gateway(service, num_workers=1, max_batch_delay_ms=60_000.0)
        futures = [gw.submit(request_for(target)) for _ in range(2)]
        gw.close(drain=False)
        for future in futures:
            response = future.result(timeout=30)
            assert response.error.code == "shutdown"
        assert all(not worker.is_alive() for worker in gw._workers)
        assert service.stats.snapshot().queue_depth == 0

    def test_draining_close_executes_queued_requests(self, service, target):
        gw = Gateway(service, num_workers=1, max_batch_delay_ms=60_000.0)
        futures = [gw.submit(request_for(target)) for _ in range(2)]
        closer = threading.Thread(target=gw.close, kwargs={"drain": True})
        closer.start()
        for future in futures:
            assert future.result(timeout=120).ok
        closer.join(timeout=120)
        assert all(not worker.is_alive() for worker in gw._workers)


class TestStdinLoop:
    def test_malformed_line_gets_error_response_and_loop_survives(
        self, service, target
    ):
        lines = [
            json.dumps({"target_specs": dict(target), "max_steps": MAX_STEPS,
                        "request_id": "good-1"}),
            "{this is not json",
            json.dumps({"target_specs": dict(target), "bogus_field": 1}),
            json.dumps({"target_specs": dict(target), "max_steps": MAX_STEPS,
                        "request_id": "good-2"}),
        ]
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        gw = Gateway(service, num_workers=1, max_batch_delay_ms=5.0)
        submitted = _serve_stdin(gw, stdin, stdout)
        assert submitted == 2
        out = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert len(out) == 4  # every line answered, in order
        assert out[0]["request_id"] == "good-1" and "error" not in out[0]
        assert out[1]["error"]["code"] == "bad_request"
        assert out[2]["error"]["code"] == "bad_request"
        assert "bogus_field" in out[2]["error"]["message"]
        assert out[3]["request_id"] == "good-2" and "error" not in out[3]
        assert service.stats.snapshot().errors == 2
