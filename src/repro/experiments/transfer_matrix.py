"""Cross-topology transfer-learning matrix over the circuit zoo.

The paper's central claim is that a GNN policy captures transferable circuit
knowledge.  With only two benchmarks the repo could test exactly one
source→target pair (RF PA coarse→fine, a *fidelity* transfer).  The topology
zoo turns this into a proper matrix: for every ordered pair of zoo circuits,
a policy trained on the source circuit seeds a policy for the target circuit
through :func:`repro.agents.transfer.transfer_policy_parameters` (the GNN
branch transfers; input-size-dependent heads re-initialize), is optionally
fine-tuned with a small episode budget, and is evaluated by deployment
accuracy on the target — against a trained-from-scratch baseline with the
same fine-tune budget when ``include_scratch`` is set.

Orchestration: the matrix shards by *source row* — each row trains one
source policy and sweeps every target, so rows are independent work units
(:func:`transfer_source_unit`) executed through
:func:`repro.orchestrate.execute_with_store`.  ``workers=k`` trains the
sources in parallel processes; ``store=...`` makes the matrix resumable and
shares rows with any other sweep over the same payloads.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.deployment import evaluate_deployment
from repro.agents.ppo import PPOTrainer
from repro.agents.transfer import transfer_policy_parameters
from repro.api.catalog import make_policy
from repro.experiments.configs import ExperimentScale, bench_scale, rl_hyperparameters
from repro.experiments.training import make_environment, run_training_experiment
from repro.orchestrate.runner import execute_with_store
from repro.orchestrate.units import WorkUnit

#: The 4-topology source→target matrix swept by default: the paper's op-amp
#: plus the three zoo circuits.  (The RF PA keeps its own coarse→fine
#: fidelity-transfer workflow in :mod:`repro.agents.transfer`.)
ZOO_TRANSFER_CIRCUITS: Tuple[str, ...] = (
    "two_stage_opamp",
    "folded_cascode",
    "current_mirror_ota",
    "common_source_lna",
)


@dataclass
class TransferCell:
    """One source→target entry of the transfer matrix.

    ``num_transferred`` counts parameter *tensors*; ``transferred_fraction``
    is the fraction of the target policy's *scalar weights* that were copied
    (the honest figure — the topology-sized heads hold most scalars, so the
    GNN branch is most of the tensors but a small share of the weights).
    """

    source: str
    target: str
    num_transferred: int
    transferred_fraction: float
    accuracy: float
    mean_steps: float
    scratch_accuracy: Optional[float] = None

    @property
    def transfer_gain(self) -> Optional[float]:
        """Accuracy delta over the from-scratch baseline (None if not run)."""
        if self.scratch_accuracy is None:
            return None
        return self.accuracy - self.scratch_accuracy


@dataclass
class TransferMatrix:
    """All swept source→target cells plus per-source training context."""

    method: str
    circuits: Tuple[str, ...]
    cells: List[TransferCell] = field(default_factory=list)
    source_accuracies: Dict[str, float] = field(default_factory=dict)

    def cell(self, source: str, target: str) -> TransferCell:
        for cell in self.cells:
            if cell.source == source and cell.target == target:
                return cell
        raise KeyError(f"no transfer cell for {source} -> {target}")

    def as_text(self) -> str:
        """Render the matrix as a source-rows × target-columns grid."""
        width = max(len(c) for c in self.circuits) + 2
        header = " " * width + "".join(f"{c:>{width}s}" for c in self.circuits)
        lines = [header]
        for source in self.circuits:
            row = [f"{source:<{width}s}"]
            for target in self.circuits:
                if source == target:
                    own = self.source_accuracies.get(source)
                    text = f"[{own:.2f}]" if own is not None else "[--]"
                else:
                    try:
                        text = f"{self.cell(source, target).accuracy:.2f}"
                    except KeyError:
                        text = "-"
                row.append(f"{text:>{width}s}")
            lines.append("".join(row))
        return "\n".join(lines)


def transfer_matrix_units(
    circuits: Sequence[str],
    method: str,
    scale: ExperimentScale,
    seed: int,
    fine_tune_episodes: int,
    include_scratch: bool,
    eval_targets: int,
) -> List[WorkUnit]:
    """One work unit per source row of the matrix (train once, sweep targets)."""
    circuits = tuple(circuits)
    units = []
    for source_index, source in enumerate(circuits):
        payload: Dict[str, Any] = {
            "source": source,
            "targets": [target for target in circuits if target != source],
            "method": method,
            "scale": asdict(scale),
            "seed": seed,
            "source_seed": seed + source_index,
            "fine_tune_episodes": fine_tune_episodes,
            "include_scratch": include_scratch,
            "eval_targets": eval_targets,
        }
        units.append(
            WorkUnit(
                unit_id=f"transfer+{method}+{source}",
                runner="repro.experiments.transfer_matrix:transfer_source_unit",
                payload=payload,
            )
        )
    return units


def transfer_source_unit(arguments: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one source row: train the source policy, sweep every target.

    Pure function of its JSON payload (the orchestrator's worker contract);
    returns the row as JSON — the source's own deployment accuracy plus one
    :class:`TransferCell` dict per target.
    """
    scale = ExperimentScale(**arguments["scale"])
    method = arguments["method"]
    source = arguments["source"]
    seed = int(arguments["seed"])
    training = run_training_experiment(
        source, method, scale=scale, seed=int(arguments["source_seed"]),
        track_accuracy=False,
    )
    source_eval = evaluate_deployment(
        training.env, training.policy,
        num_targets=int(arguments["eval_targets"]), seed=seed + 1000,
    )
    cells = [
        asdict(
            _transfer_cell(
                source, target, training.policy, method,
                fine_tune_episodes=int(arguments["fine_tune_episodes"]),
                episodes_per_update=scale.episodes_per_update,
                eval_targets=int(arguments["eval_targets"]),
                seed=seed,
                include_scratch=bool(arguments["include_scratch"]),
            )
        )
        for target in arguments["targets"]
    ]
    return {"source": source, "source_accuracy": source_eval.accuracy, "cells": cells}


def run_transfer_matrix(
    circuits: Sequence[str] = ZOO_TRANSFER_CIRCUITS,
    method: str = "gcn_fc",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    fine_tune_episodes: Optional[int] = None,
    include_scratch: bool = False,
    eval_targets: Optional[int] = None,
    workers: int = 1,
    store: Optional[Union[str, "object"]] = None,
    resume: bool = True,
) -> TransferMatrix:
    """Sweep the source→target transfer matrix over ``circuits``.

    Parameters
    ----------
    circuits:
        Circuits to sweep (every ordered pair is one cell).
    method:
        Policy ID trained on each source and transferred to each target.
    scale:
        Episode/evaluation budgets; source training uses the scale's
        per-circuit training budget, fine-tuning defaults to the RF PA
        budget (the scale's "small" training figure).
    fine_tune_episodes:
        Post-transfer training budget on the target circuit; 0 evaluates the
        transferred policy zero-shot.
    include_scratch:
        Also train a fresh policy per cell with the same fine-tune budget,
        so every cell reports its ``transfer_gain``.
    eval_targets:
        Deployment groups per evaluation (defaults to the scale's
        ``deployment_specs``).
    workers:
        Worker processes for the source rows (each row is one independent
        work unit; results are identical for any worker count).
    store:
        Optional :class:`repro.orchestrate.ArtifactStore` (or directory)
        persisting each row; a re-run with the same store skips completed
        rows.
    resume:
        Skip rows whose completed artifact exists (only meaningful with a
        store).
    """
    scale = scale or bench_scale()
    circuits = tuple(circuits)
    if len(circuits) < 2:
        raise ValueError("a transfer matrix needs at least two circuits")
    if fine_tune_episodes is None:
        fine_tune_episodes = scale.rf_pa_training_episodes
    if eval_targets is None:
        eval_targets = scale.deployment_specs

    units = transfer_matrix_units(
        circuits, method, scale, seed, fine_tune_episodes, include_scratch, eval_targets
    )
    report = execute_with_store(units, store=store, workers=workers, resume=resume)
    report.raise_on_failure()

    matrix = TransferMatrix(method=method, circuits=circuits)
    for record in report.records:
        row = record.result
        matrix.source_accuracies[row["source"]] = float(row["source_accuracy"])
        matrix.cells.extend(TransferCell(**cell) for cell in row["cells"])
    return matrix


def _fine_tune_and_evaluate(
    env, policy, method: str, episodes: int, episodes_per_update: int,
    eval_targets: int, seed: int,
):
    if episodes > 0:
        hyper = rl_hyperparameters(env.benchmark.name)
        trainer = PPOTrainer(
            env, policy, config=hyper["ppo"], seed=seed, method_name=f"{method}_transfer"
        )
        trainer.train(
            total_episodes=episodes,
            episodes_per_update=min(episodes_per_update, episodes),
        )
    return evaluate_deployment(env, policy, num_targets=eval_targets, seed=seed + 1000)


def _transfer_cell(
    source: str,
    target: str,
    source_policy,
    method: str,
    fine_tune_episodes: int,
    episodes_per_update: int,
    eval_targets: int,
    seed: int,
    include_scratch: bool,
) -> TransferCell:
    env = make_environment(target, seed=seed)
    policy = make_policy(method, env, np.random.default_rng(seed))
    parameters_by_name = dict(policy.named_parameters())
    copied = transfer_policy_parameters(source_policy, policy)
    copied_scalars = sum(parameters_by_name[name].data.size for name in copied)
    total_scalars = policy.num_parameters()
    evaluation = _fine_tune_and_evaluate(
        env, policy, method, fine_tune_episodes, episodes_per_update, eval_targets, seed
    )
    cell = TransferCell(
        source=source,
        target=target,
        num_transferred=len(copied),
        transferred_fraction=copied_scalars / total_scalars if total_scalars else 0.0,
        accuracy=evaluation.accuracy,
        mean_steps=evaluation.mean_steps,
    )
    if include_scratch:
        scratch_env = make_environment(target, seed=seed)
        scratch_policy = make_policy(method, scratch_env, np.random.default_rng(seed))
        scratch_eval = _fine_tune_and_evaluate(
            scratch_env, scratch_policy, method, fine_tune_episodes,
            episodes_per_update, eval_targets, seed,
        )
        cell.scratch_accuracy = scratch_eval.accuracy
    return cell
