"""``python -m repro.run deploy`` — serve specification targets from a checkpoint.

Usage::

    python -m repro.run deploy ckpt/latest.npz specs.json
    python -m repro.run deploy ckpt/latest.npz specs.json --batch-size 16
    python -m repro.run deploy ckpt/latest.npz specs.json --output results.json

``specs.json`` formats are documented in :mod:`repro.serve.specs`.  Exit
status: 0 when every target was served (designs that miss their specs are
results, not errors), 2 on bad input (unreadable checkpoint/specs, unknown
environment ID).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.agents.checkpoint import CheckpointError
from repro.serve.service import DeploymentService
from repro.serve.specs import load_spec_requests


def build_deploy_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run deploy",
        description="Deploy a checkpointed policy over a batch of specification targets.",
    )
    parser.add_argument("checkpoint", help="path to a policy checkpoint (.npz)")
    parser.add_argument("specs", help="path to the specification-targets JSON document")
    parser.add_argument("--batch-size", type=int, default=8, dest="batch_size",
                        help="episodes run lock-step per topology (default 8; "
                             "1 = sequential deployment)")
    parser.add_argument("--env", default=None,
                        help="environment ID override (default: the checkpoint's "
                             "recorded env id)")
    parser.add_argument("--max-steps", type=int, default=None, dest="max_steps",
                        help="episode step budget override for every target")
    parser.add_argument("--surrogate", default=None,
                        help="trained surrogate checkpoint (.npz from "
                             "'repro.run surrogate train'); trusted design steps "
                             "are answered by the learned tier")
    parser.add_argument("--surrogate-dir", default=None, dest="surrogate_dir",
                        help="persistent simulation-corpus directory shared with "
                             "the exact tier")
    parser.add_argument("--output", default=None,
                        help="write per-target results as JSON to this file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-target lines (summary still prints)")
    return parser


def main_deploy(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_deploy_parser()
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.max_steps is not None and args.max_steps < 1:
        print("error: --max-steps must be >= 1", file=sys.stderr)
        return 2
    try:
        requests = load_spec_requests(args.specs)
        if args.max_steps is not None:
            for request in requests:
                request.max_steps = int(args.max_steps)
        service = DeploymentService.from_checkpoint(
            args.checkpoint,
            env_id=args.env,
            batch_size=args.batch_size,
            surrogate=args.surrogate,
            surrogate_dir=args.surrogate_dir,
        )
    except (OSError, ValueError, CheckpointError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    env_ids = ", ".join(service.env_ids)
    print(f"deploy: {len(requests)} targets -> {env_ids} (batch size {args.batch_size})")
    start = time.perf_counter()
    try:
        responses = service.serve(requests)
    except ValueError as exc:  # e.g. a target routed to an unregistered env id
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    if not args.quiet:
        for response in responses:
            status = "MET " if response.success else "miss"
            specs = ", ".join(
                f"{name}={value:.4g}" for name, value in response.target_specs.items()
            )
            print(f"[{response.index:>3d}] {status} in {response.steps:>3d} steps  ({specs})")

    stats = service.stats
    cache = service.cache_stats()
    print()
    print(
        f"served {stats.episodes} episodes in {elapsed:.2f}s "
        f"({stats.episodes / elapsed:.1f} episodes/s, "
        f"{stats.design_steps} design steps) | "
        f"accuracy {stats.accuracy:.2%}, mean steps "
        f"{stats.design_steps / stats.episodes:.1f} | "
        f"simulation cache hit rate {cache.hit_rate:.2%}"
    )
    if stats.surrogate_hits or stats.trust_rejections:
        print(
            f"surrogate tier: {stats.surrogate_hits} answered, "
            f"{stats.trust_rejections} trust-rejected, "
            f"{stats.exact_fallbacks} exact fallbacks"
        )

    if args.output is not None:
        document = {
            "checkpoint": args.checkpoint,
            "batch_size": args.batch_size,
            "accuracy": stats.accuracy,
            "mean_steps": stats.design_steps / stats.episodes,
            "wall_time_s": elapsed,
            "service": service.stats_dict(),
            "results": [response.to_dict() for response in responses],
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0
