"""The 45 nm CMOS current-mirror OTA / comparator-stage benchmark.

Second entry of the topology zoo (PR 3): a mirror-loaded transconductance
amplifier whose output drive is set by its current-mirror ratios — the knobs
couple to the specifications through *ratios* of device strengths rather
than absolute sizes, a qualitatively different landscape from either op-amp.

Topology:

* NMOS input differential pair ``M1``/``M2`` with NMOS tail source ``M3``;
* PMOS diode loads ``M4``/``M5`` on the two input branches;
* PMOS output mirror ``M6`` (mirrors ``M5`` onto the output with ratio
  ``S6/S5``) and PMOS mirror ``M7`` driving the NMOS diode ``M8`` whose
  current is mirrored to the output sink ``M9`` (ratio ``(S7/S4)(S9/S8)``);
* fixed load capacitor ``CL``; supply ``VP``, ground ``VGND`` and tail bias
  ``VBIAS`` as explicit graph nodes.

Design space: width ``[1, 100] µm`` and finger count ``[2, 32]`` for each of
the 9 transistors — 18 tunable parameters.

Specification sampling space (replaces phase margin with the comparator's
headline slew-rate figure): gain ``[10, 45]``, bandwidth ``[1e9, 3e10] Hz``,
slew rate ``[1e8, 5e9] V/s``, power ``[2e-3, 3e-2] W``.
"""

from __future__ import annotations

from repro.circuits.devices import bias, capacitor, ground, nmos, pmos, supply
from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

#: Transistor instance names in schematic order: input pair, tail, diode
#: loads, PMOS mirrors, NMOS mirror pair.
CM_OTA_TRANSISTORS = ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9")

#: Supply voltage (volts).
CM_OTA_SUPPLY_VOLTAGE = 1.2

#: Tail-bias gate voltage (volts): 0.15 V of NMOS overdrive.
CM_OTA_TAIL_BIAS = 0.55

#: Fixed output load capacitance (farads).
CM_OTA_LOAD_CAPACITANCE = 1.0e-12

# Design-space bounds (same device grid as the op-amps).
WIDTH_MIN, WIDTH_MAX, WIDTH_STEP = 1e-6, 100e-6, 1e-6
FINGERS_MIN, FINGERS_MAX, FINGERS_STEP = 2, 32, 1


def _build_netlist(initial_width: float, initial_fingers: int) -> Netlist:
    netlist = Netlist("current_mirror_ota")
    # Input differential pair with tail source.
    netlist.add_device(nmos("M1", drain="ld1", gate="vin_p", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M2", drain="ld2", gate="vin_n", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M3", drain="tail", gate="vbias", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # PMOS diode loads.
    netlist.add_device(pmos("M4", drain="ld1", gate="ld1", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M5", drain="ld2", gate="ld2", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    # Output mirrors: M6 sources the output, M7/M8/M9 sink it.
    netlist.add_device(pmos("M6", drain="vout", gate="ld2", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M7", drain="mir", gate="ld1", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M8", drain="mir", gate="mir", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M9", drain="vout", gate="mir", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Load capacitor and the explicit source/bias graph nodes.
    netlist.add_device(capacitor("CL", plus="vout", minus="vgnd",
                                 value=CM_OTA_LOAD_CAPACITANCE))
    netlist.add_device(supply("VP", net="vdd", voltage=CM_OTA_SUPPLY_VOLTAGE))
    netlist.add_device(ground("VGND", net="vgnd"))
    netlist.add_device(bias("VBIAS", net="vbias", voltage=CM_OTA_TAIL_BIAS))
    return netlist


def _build_design_space() -> DesignSpace:
    parameters = []
    for name in CM_OTA_TRANSISTORS:
        parameters.append(
            DesignParameter(
                name=f"{name}.width", device=name, attribute="width",
                minimum=WIDTH_MIN, maximum=WIDTH_MAX, step=WIDTH_STEP,
            )
        )
        parameters.append(
            DesignParameter(
                name=f"{name}.fingers", device=name, attribute="fingers",
                minimum=FINGERS_MIN, maximum=FINGERS_MAX, step=FINGERS_STEP, integer=True,
            )
        )
    return DesignSpace(parameters)


def _build_spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("gain", 10.0, 45.0, Objective.MAXIMIZE, unit="V/V"),
            Specification("bandwidth", 1.0e9, 3.0e10, Objective.MAXIMIZE, unit="Hz",
                          log_uniform=True),
            Specification("slew_rate", 1.0e8, 5.0e9, Objective.MAXIMIZE, unit="V/s",
                          log_uniform=True),
            Specification("power", 2.0e-3, 3.0e-2, Objective.MINIMIZE, unit="W",
                          log_uniform=True),
        ]
    )


def build_current_mirror_ota(
    initial_width: float = 40e-6,
    initial_fingers: int = 16,
) -> CircuitBenchmark:
    """Construct the current-mirror OTA benchmark.

    Parameters
    ----------
    initial_width, initial_fingers:
        Starting sizing applied uniformly to all 9 transistors (unit mirror
        ratios); the defaults sit near the middle of the design space.
    """
    if not (WIDTH_MIN <= initial_width <= WIDTH_MAX):
        raise ValueError("initial_width outside the design space")
    if not (FINGERS_MIN <= initial_fingers <= FINGERS_MAX):
        raise ValueError("initial_fingers outside the design space")
    netlist = _build_netlist(initial_width, int(initial_fingers))
    return CircuitBenchmark(
        name="current_mirror_ota",
        technology="45nm CMOS",
        netlist=netlist,
        design_space=_build_design_space(),
        spec_space=_build_spec_space(),
        metadata={
            "supply_voltage": CM_OTA_SUPPLY_VOLTAGE,
            "tail_bias": CM_OTA_TAIL_BIAS,
            "load_capacitance": CM_OTA_LOAD_CAPACITANCE,
            "max_episode_steps": 40,
        },
    )
