"""Tests for the registry-backed training-environment resolver."""

from __future__ import annotations

import pytest

import repro
from repro.experiments import CIRCUIT_ENV_IDS, CIRCUITS
from repro.experiments.training import make_environment


class TestMakeEnvironment:
    def test_circuit_names_resolve_with_paper_episode_lengths(self):
        opamp = make_environment("two_stage_opamp", seed=0)
        assert opamp.benchmark.name == "two_stage_opamp"
        assert opamp.max_steps == 50
        pa = make_environment("rf_pa", seed=0)
        assert pa.simulator.name == "rf_pa_coarse"  # transfer-learning default
        assert pa.max_steps == 30
        assert make_environment("rf_pa", fidelity="fine").simulator.name == "rf_pa_fine"

    def test_registry_env_ids_accepted_directly(self):
        env = make_environment("rf_pa-fom-v0", seed=0)
        assert env.is_fom_mode

    def test_registry_env_id_rejects_conflicting_fidelity(self):
        with pytest.raises(ValueError, match="already encodes its fidelity"):
            make_environment("rf_pa-fine-v0", fidelity="coarse")

    def test_circuit_map_matches_registry(self):
        for circuit, fidelities in CIRCUIT_ENV_IDS.items():
            assert circuit in CIRCUITS
            for env_id in fidelities.values():
                assert env_id in repro.list_envs()

    def test_unknown_circuit_error_mentions_available_ids(self):
        with pytest.raises(ValueError) as excinfo:
            make_environment("mixer")
        message = str(excinfo.value)
        assert "two_stage_opamp" in message
        assert "opamp-p2s-v0" in message  # points at repro.list_envs()

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            make_environment("rf_pa", fidelity="medium")
