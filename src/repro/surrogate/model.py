"""The per-topology learned spec predictor (ensemble MLP + disagreement).

One :class:`SpecSurrogate` maps a circuit's full device-parameter vector to
its specification vector, reusing the :mod:`repro.nn` dense stack: each
ensemble member is a small :class:`~repro.nn.layers.MLP` trained on the
harvested simulation corpus, and prediction runs through the grad-free
pure-numpy ``forward_array`` path (the same fast path deployment inference
uses), so a surrogate answer costs microseconds against the simulator's
milliseconds.

The ensemble is the uncertainty estimate: members share the data but not
their initialization, so they agree only where the corpus constrains the
fit.  ``predict`` returns the member-mean specs plus the per-query
*disagreement* (worst-spec standard deviation across members, in
standardized output units) that the :class:`~repro.surrogate.gate.TrustGate`
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import MLP
from repro.surrogate.gate import TrustGate

#: Guard against zero-variance features/targets (constant columns in small
#: corpora): standardization divides by at least this.
MIN_STD = 1e-12


@dataclass
class SurrogateConfig:
    """Hyper-parameters of one surrogate model (JSON-serializable)."""

    hidden: Tuple[int, ...] = (64, 64)
    ensemble_size: int = 3
    epochs: int = 300
    learning_rate: float = 1e-2
    weight_decay: float = 0.0
    validation_fraction: float = 0.2
    min_train_points: int = 32
    trust_tolerance: float = 0.1
    trust_quantile: float = 0.9

    def __post_init__(self) -> None:
        self.hidden = tuple(int(width) for width in self.hidden)
        if not self.hidden or any(width <= 0 for width in self.hidden):
            raise ValueError("hidden must be a non-empty tuple of positive widths")
        if self.ensemble_size < 2:
            raise ValueError("ensemble_size must be >= 2 (disagreement needs members)")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        if self.min_train_points < 2:
            raise ValueError("min_train_points must be >= 2")

    def to_dict(self) -> Dict[str, object]:
        return {
            "hidden": list(self.hidden),
            "ensemble_size": self.ensemble_size,
            "epochs": self.epochs,
            "learning_rate": self.learning_rate,
            "weight_decay": self.weight_decay,
            "validation_fraction": self.validation_fraction,
            "min_train_points": self.min_train_points,
            "trust_tolerance": self.trust_tolerance,
            "trust_quantile": self.trust_quantile,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SurrogateConfig":
        kwargs = dict(data)
        if "hidden" in kwargs:
            kwargs["hidden"] = tuple(kwargs["hidden"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


class SpecSurrogate:
    """Ensemble spec predictor for one circuit topology.

    Freshly constructed surrogates are *untrained*: ``predict`` works (the
    members are initialized) but ``is_trained`` is False and the gate
    rejects every query, so an attached tier behaves exactly like the plain
    exact path until :func:`~repro.surrogate.trainer.train_surrogate` has
    fit and calibrated the model on a corpus.
    """

    def __init__(
        self,
        circuit: str,
        spec_names: Sequence[str],
        num_inputs: int,
        config: Optional[SurrogateConfig] = None,
        seed: int = 0,
    ) -> None:
        if num_inputs <= 0:
            raise ValueError("num_inputs must be positive")
        if not spec_names:
            raise ValueError("spec_names must be non-empty")
        self.circuit = str(circuit)
        self.spec_names: Tuple[str, ...] = tuple(str(name) for name in spec_names)
        self.num_inputs = int(num_inputs)
        self.config = config or SurrogateConfig()
        self.seed = int(seed)
        self.gate = TrustGate(
            min_train_points=self.config.min_train_points,
            tolerance=self.config.trust_tolerance,
            quantile=self.config.trust_quantile,
        )
        # Identity standardization until fit sets corpus statistics.
        self.input_mean = np.zeros(self.num_inputs)
        self.input_std = np.ones(self.num_inputs)
        self.output_mean = np.zeros(len(self.spec_names))
        self.output_std = np.ones(len(self.spec_names))
        self.num_train_points = 0
        sizes = [self.num_inputs, *self.config.hidden, len(self.spec_names)]
        # Independent member initializations are the entire uncertainty
        # mechanism: one deterministic stream per member index.
        self.members: List[MLP] = [
            MLP(sizes, np.random.default_rng(np.random.SeedSequence([self.seed, index])))
            for index in range(self.config.ensemble_size)
        ]

    # ------------------------------------------------------------------
    @property
    def num_specs(self) -> int:
        return len(self.spec_names)

    @property
    def is_trained(self) -> bool:
        """Whether fit statistics exist (not whether the gate accepts)."""
        return self.num_train_points > 0

    def set_normalization(
        self,
        input_mean: np.ndarray,
        input_std: np.ndarray,
        output_mean: np.ndarray,
        output_std: np.ndarray,
    ) -> None:
        """Install corpus standardization statistics (std floored at MIN_STD)."""
        self.input_mean = np.asarray(input_mean, dtype=np.float64).reshape(self.num_inputs)
        self.input_std = np.maximum(
            np.asarray(input_std, dtype=np.float64).reshape(self.num_inputs), MIN_STD
        )
        self.output_mean = np.asarray(output_mean, dtype=np.float64).reshape(self.num_specs)
        self.output_std = np.maximum(
            np.asarray(output_std, dtype=np.float64).reshape(self.num_specs), MIN_STD
        )

    # ------------------------------------------------------------------
    # Prediction (pure numpy, grad-free)
    # ------------------------------------------------------------------
    def standardize_inputs(self, parameters: np.ndarray) -> np.ndarray:
        parameters = np.asarray(parameters, dtype=np.float64)
        squeeze = parameters.ndim == 1
        if squeeze:
            parameters = parameters[None, :]
        if parameters.ndim != 2 or parameters.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected (N, {self.num_inputs}) parameter rows, got shape {parameters.shape}"
            )
        return (parameters - self.input_mean) / self.input_std

    def predict_standardized(self, parameters: np.ndarray) -> np.ndarray:
        """Per-member standardized predictions, shape ``(K, N, S)``."""
        z = self.standardize_inputs(parameters)
        return np.stack([member.forward_array(z) for member in self.members])

    def predict(self, parameters: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean spec predictions ``(N, S)`` plus disagreement ``(N,)``.

        Disagreement is the worst-spec ensemble standard deviation in
        standardized units — the scale the trust gate was calibrated on.
        """
        stacked = self.predict_standardized(parameters)
        mean = stacked.mean(axis=0)
        disagreement = stacked.std(axis=0).max(axis=-1)
        return mean * self.output_std + self.output_mean, disagreement

    def predict_one(self, parameters: np.ndarray) -> Tuple[Dict[str, float], float]:
        """Single-query prediction as a spec dict plus its disagreement."""
        specs, disagreement = self.predict(np.asarray(parameters, dtype=np.float64)[None, :])
        return (
            {name: float(value) for name, value in zip(self.spec_names, specs[0])},
            float(disagreement[0]),
        )

    def trusted(self, disagreement: np.ndarray) -> np.ndarray:
        """Gate decision for a batch of disagreement values."""
        return self.gate.accept(disagreement, self.num_train_points)

    # ------------------------------------------------------------------
    # State (persistence support; the npz container lives in trainer.py)
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Every learned array keyed by a flat dotted name."""
        arrays: Dict[str, np.ndarray] = {
            "norm.input_mean": self.input_mean,
            "norm.input_std": self.input_std,
            "norm.output_mean": self.output_mean,
            "norm.output_std": self.output_std,
        }
        for index, member in enumerate(self.members):
            for name, value in member.state_dict().items():
                arrays[f"member.{index}.{name}"] = value
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self.set_normalization(
            arrays["norm.input_mean"],
            arrays["norm.input_std"],
            arrays["norm.output_mean"],
            arrays["norm.output_std"],
        )
        for index, member in enumerate(self.members):
            prefix = f"member.{index}."
            state = {
                name[len(prefix):]: value
                for name, value in arrays.items()
                if name.startswith(prefix)
            }
            member.load_state_dict(state, strict=True)
