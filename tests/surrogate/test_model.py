"""SpecSurrogate: determinism, prediction shapes, untrained behavior, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate import SpecSurrogate, SurrogateConfig


def _surrogate(seed=0, **config_kwargs):
    config = SurrogateConfig(hidden=(8, 8), ensemble_size=2, **config_kwargs)
    return SpecSurrogate("lna", ["gain", "power"], num_inputs=3, config=config, seed=seed)


class TestConstruction:
    def test_validates_shape_arguments(self):
        with pytest.raises(ValueError, match="num_inputs"):
            SpecSurrogate("lna", ["gain"], num_inputs=0)
        with pytest.raises(ValueError, match="spec_names"):
            SpecSurrogate("lna", [], num_inputs=3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="ensemble_size"):
            SurrogateConfig(ensemble_size=1)
        with pytest.raises(ValueError, match="hidden"):
            SurrogateConfig(hidden=())
        with pytest.raises(ValueError, match="validation_fraction"):
            SurrogateConfig(validation_fraction=1.0)
        with pytest.raises(ValueError, match="epochs"):
            SurrogateConfig(epochs=0)

    def test_config_dict_round_trip(self):
        config = SurrogateConfig(hidden=(16, 8), ensemble_size=4, trust_tolerance=0.5)
        restored = SurrogateConfig.from_dict(config.to_dict())
        assert restored == config
        assert isinstance(restored.hidden, tuple)

    def test_members_are_independently_initialized(self):
        surrogate = _surrogate()
        states = [member.state_dict() for member in surrogate.members]
        assert any(
            not np.array_equal(states[0][name], states[1][name]) for name in states[0]
        )

    def test_same_seed_is_bitwise_reproducible(self):
        x = np.random.default_rng(3).normal(size=(5, 3))
        a, _ = _surrogate(seed=7).predict(x)
        b, _ = _surrogate(seed=7).predict(x)
        c, _ = _surrogate(seed=8).predict(x)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestPrediction:
    def test_shapes_and_disagreement_scale(self):
        surrogate = _surrogate()
        x = np.random.default_rng(0).normal(size=(6, 3))
        specs, disagreement = surrogate.predict(x)
        assert specs.shape == (6, 2)
        assert disagreement.shape == (6,)
        assert (disagreement >= 0).all()
        stacked = surrogate.predict_standardized(x)
        assert stacked.shape == (2, 6, 2)  # (members, queries, specs)

    def test_predict_one_returns_named_specs(self):
        surrogate = _surrogate()
        specs, disagreement = surrogate.predict_one(np.ones(3))
        assert set(specs) == {"gain", "power"}
        assert isinstance(disagreement, float)
        batch, batch_disagreement = surrogate.predict(np.ones((1, 3)))
        assert specs["gain"] == batch[0][0] and disagreement == batch_disagreement[0]

    def test_rejects_wrong_input_width(self):
        with pytest.raises(ValueError, match=r"\(N, 3\)"):
            _surrogate().predict(np.ones((2, 4)))

    def test_untrained_surrogate_trusts_nothing(self):
        surrogate = _surrogate()
        assert not surrogate.is_trained
        assert not surrogate.trusted(np.zeros(4)).any()


class TestState:
    def test_state_arrays_round_trip_bitwise(self):
        source = _surrogate(seed=1)
        source.set_normalization(np.ones(3), np.full(3, 2.0), np.zeros(2), np.full(2, 3.0))
        target = _surrogate(seed=99)  # different init: the load must overwrite
        target.load_state_arrays(source.state_arrays())
        x = np.random.default_rng(2).normal(size=(4, 3))
        for a, b in zip(source.predict(x), target.predict(x)):
            assert np.array_equal(a, b)

    def test_normalization_floors_zero_stds(self):
        surrogate = _surrogate()
        surrogate.set_normalization(np.zeros(3), np.zeros(3), np.zeros(2), np.zeros(2))
        assert (surrogate.input_std > 0).all() and (surrogate.output_std > 0).all()
        specs, _ = surrogate.predict(np.ones(3))  # no division warnings / NaNs
        assert np.isfinite(specs).all()
