"""Learned surrogate simulation tier with trust-gated exact fallback.

The exact simulators in :mod:`repro.simulation` are deterministic functions
of the netlist parameters, and every optimizer in this codebase pays for
them by the call.  This package adds a *learned* tier in front of them:

* :mod:`~repro.surrogate.dataset` harvests (parameters -> specs) training
  pairs from the persistent simulation-cache directories every run already
  writes;
* :mod:`~repro.surrogate.model` fits a per-topology ensemble MLP on that
  corpus (pure :mod:`repro.nn`, grad-free ``forward_array`` inference) whose
  member disagreement estimates its own reliability;
* :mod:`~repro.surrogate.gate` calibrates a trust threshold on held-out
  error, so the surrogate only answers where it is demonstrably accurate —
  a cold corpus degrades to the pure exact path, never to silent wrongness;
* :mod:`~repro.surrogate.tiered` chains the tiers into one
  :class:`~repro.parallel.SimulationCache`-compatible simulator
  (memory -> disk -> surrogate -> exact), with exact results feeding the
  cache, the corpus directory, and the surrogate's next refit;
* :mod:`~repro.surrogate.prescreen` lets the GA/BO/RS baselines rank whole
  populations with the surrogate and spend exact simulations only on the
  top candidates — with the final answer always exactly verified.
"""

from repro.surrogate.dataset import (
    CorpusReport,
    SurrogateDataset,
    corpus_circuits,
    harvest_corpus,
)
from repro.surrogate.gate import TrustGate, calibrate_threshold
from repro.surrogate.model import SpecSurrogate, SurrogateConfig
from repro.surrogate.prescreen import PrescreenStats, SurrogatePrescreener
from repro.surrogate.tiered import TieredSimulator
from repro.surrogate.trainer import (
    SurrogateError,
    TrainReport,
    load_surrogate,
    save_surrogate,
    train_surrogate,
)

__all__ = [
    "CorpusReport",
    "PrescreenStats",
    "SpecSurrogate",
    "SurrogateConfig",
    "SurrogateDataset",
    "SurrogateError",
    "SurrogatePrescreener",
    "TieredSimulator",
    "TrainReport",
    "TrustGate",
    "calibrate_threshold",
    "corpus_circuits",
    "harvest_corpus",
    "load_surrogate",
    "save_surrogate",
    "train_surrogate",
]
