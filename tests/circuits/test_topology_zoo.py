"""Shared contract every ``*-p2s-v0`` environment must satisfy.

Parametrized over the registry, so a new topology cannot register without
passing: reset/step episode mechanics, the Eq. (1) goal bonus, bitwise
sequential/vector parity at ``num_envs=4``, one ``optimize()`` smoke run per
registered optimizer, and on-grid initial sizing of its benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.circuits import BENCHMARK_BUILDERS, Objective
from repro.env.reward import GOAL_BONUS
from repro.parallel import VectorCircuitEnv

#: Every parameter-to-specification environment in the registry (the paper's
#: op-amp plus the three topology-zoo circuits).
P2S_ENV_IDS = sorted(env_id for env_id in repro.list_envs() if env_id.endswith("-p2s-v0"))

#: The zoo additions alone (used by the issue's acceptance criterion).
ZOO_ENV_IDS = [env_id for env_id in P2S_ENV_IDS if env_id != "opamp-p2s-v0"]

NUM_ENVS = 4


def _easy_target(env):
    """A target group the current (post-reset) measured specs already meet."""
    target = {}
    for spec in env.benchmark.spec_space:
        measured = env.measured_specs[spec.name]
        if spec.objective is Objective.MAXIMIZE:
            target[spec.name] = measured * 0.8
        else:
            target[spec.name] = measured * 1.25
    return target


class TestRegistryCoverage:
    def test_at_least_three_new_circuit_ids(self):
        assert len(ZOO_ENV_IDS) >= 3

    def test_every_zoo_circuit_has_a_random_variant(self):
        env_ids = set(repro.list_envs())
        for env_id in ZOO_ENV_IDS:
            assert env_id.replace("-p2s-v0", "-random-v0") in env_ids

    def test_zoo_circuits_in_benchmark_builders(self):
        for env_id in ZOO_ENV_IDS:
            assert env_id.replace("-p2s-v0", "") in BENCHMARK_BUILDERS


@pytest.mark.parametrize("env_id", P2S_ENV_IDS)
class TestEpisodeContract:
    def test_reset_and_step(self, env_id):
        env = repro.make_env(env_id, seed=0)
        observation = env.reset()
        assert observation.node_features.shape == (
            env.num_graph_nodes, env.node_feature_dimension
        )
        assert observation.spec_features.shape == (env.spec_feature_dimension,)
        assert set(env.measured_specs) == set(env.benchmark.spec_space.names)
        rng = np.random.default_rng(0)
        done = False
        for _ in range(3):
            assert not done
            _, reward, done, info = env.step(env.action_space.sample(rng))
            assert np.isfinite(reward)
            assert set(info["specs"]) == set(env.benchmark.spec_space.names)
            assert 0.0 <= info["met_fraction"] <= 1.0

    def test_initial_simulation_is_valid(self, env_id):
        """The center sizing must be a healthy design point to start from."""
        env = repro.make_env(env_id, seed=0)
        env.reset()
        result = env.simulator.simulate(env.data_processor.netlist)
        assert result.valid

    def test_goal_bonus_and_termination(self, env_id):
        env = repro.make_env(env_id, seed=0)
        env.reset()
        env.reset(target_specs=_easy_target(env))
        keep = np.ones(env.num_parameters, dtype=np.int64)
        _, reward, done, info = env.step(keep)
        assert reward == GOAL_BONUS
        assert info["goal_reached"]
        assert done

    def test_random_initial_sizing_variant(self, env_id):
        random_id = env_id.replace("-p2s-v0", "-random-v0")
        if random_id not in repro.list_envs():
            pytest.skip(f"{env_id} has no -random-v0 variant")
        env_a = repro.make_env(random_id, seed=3)
        env_b = repro.make_env(random_id, seed=4)
        env_a.reset()
        env_b.reset()
        assert not np.array_equal(env_a.parameter_values, env_b.parameter_values)

    def test_vector_parity(self, env_id):
        """Sub-env ``i`` of ``num_envs=4, seed=s`` equals sequential ``s+i``."""
        seed = 11
        vector_env = repro.make_env(env_id, seed=seed, num_envs=NUM_ENVS)
        assert isinstance(vector_env, VectorCircuitEnv)
        sequential = [repro.make_env(env_id, seed=seed + i) for i in range(NUM_ENVS)]
        batch = vector_env.reset()
        reference = [env.reset() for env in sequential]
        for i in range(NUM_ENVS):
            assert np.array_equal(batch[i].spec_features, reference[i].spec_features)
        rngs = [np.random.default_rng(500 + i) for i in range(NUM_ENVS)]
        for _ in range(4):
            actions = np.stack([vector_env.action_space.sample(rng) for rng in rngs])
            batch, rewards, dones, infos = vector_env.step(actions)
            for i, env in enumerate(sequential):
                observation, reward, done, info = env.step(actions[i])
                assert reward == rewards[i]
                assert done == dones[i]
                assert info["specs"] == infos[i]["specs"]
                if done:
                    observation = env.reset()
                assert np.array_equal(batch[i].spec_features, observation.spec_features)


@pytest.mark.parametrize("optimizer_id", sorted(repro.list_optimizers()))
@pytest.mark.parametrize("env_id", P2S_ENV_IDS)
class TestOptimizerContract:
    def test_optimize_smoke(self, env_id, optimizer_id):
        env = repro.make_env(env_id, seed=0, max_steps=8)
        if optimizer_id == "ppo":
            optimizer = repro.make_optimizer("ppo", episodes_per_update=2)
            budget = 2
        elif optimizer_id == "supervised":
            optimizer = repro.make_optimizer("supervised", epochs=2)
            budget = 16
        else:
            optimizer = repro.make_optimizer(optimizer_id)
            budget = 8
        result = optimizer.optimize(env, budget=budget, seed=0)
        assert result.num_simulations > 0
        assert result.best_parameters.shape == (env.num_parameters,)
        assert np.isfinite(result.best_objective)
        assert set(result.best_specs) <= set(env.benchmark.spec_space.names) | {
            "output_power", "efficiency"
        }


@pytest.mark.parametrize(
    "circuit", sorted(set(BENCHMARK_BUILDERS) - {"two_stage_opamp", "rf_pa"})
)
class TestZooBenchmarkDefinitions:
    def test_initial_sizing_on_grid(self, circuit):
        benchmark = BENCHMARK_BUILDERS[circuit]()
        values = benchmark.design_space.vector_from_netlist(benchmark.netlist)
        snapped = benchmark.design_space.snap_vector(values)
        assert np.array_equal(values, snapped)

    def test_summary_counts(self, circuit):
        benchmark = BENCHMARK_BUILDERS[circuit]()
        summary = benchmark.summary()
        assert summary["num_device_parameters"] == benchmark.num_parameters
        assert summary["num_specifications"] == benchmark.num_specs
        assert summary["design_space_cardinality"] > 1.0

    def test_sampling_space_reachable(self, circuit):
        """Some sampled targets must be satisfiable by random grid designs."""
        benchmark = BENCHMARK_BUILDERS[circuit]()
        env_id = f"{circuit}-p2s-v0"
        env = repro.make_env(env_id, seed=0)
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(20):
            target = benchmark.spec_space.sample(rng)
            for _ in range(120):
                netlist = benchmark.fresh_netlist()
                benchmark.design_space.apply_to_netlist(
                    netlist, benchmark.design_space.sample(rng)
                )
                result = env.simulator.simulate(netlist)
                if result.valid and benchmark.spec_space.all_met(result.specs, target):
                    hits += 1
                    break
        assert hits >= 4, f"only {hits}/20 sampled targets reachable for {circuit}"
