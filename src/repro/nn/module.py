"""Base class for trainable modules (a tiny analogue of ``torch.nn.Module``).

A :class:`Module` owns named :class:`~repro.nn.tensor.Tensor` parameters and
possibly child modules.  It exposes parameter iteration (for optimizers),
state-dict save/load (for transfer learning between the coarse and fine RF
simulation environments, Sec. 3 of the paper), and gradient zeroing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Module:
    """Container for parameters and sub-modules with recursive traversal."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for modules kept in lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Tensor]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return int(sum(param.size for param in self.parameters()))

    def parameter_shapes(self) -> Dict[str, Tuple[int, ...]]:
        """Dotted parameter name -> shape (checkpoint compatibility checks)."""
        return {name: tuple(param.data.shape) for name, param in self.named_parameters()}

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State-dict interface (used by transfer learning)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        if strict:
            missing = set(own) - set(state)
            unexpected = set(state) - set(own)
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={sorted(missing)}, "
                    f"unexpected={sorted(unexpected)}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def copy_parameters_from(self, other: "Module") -> None:
        """Copy parameter values from a module with an identical structure."""
        self.load_state_dict(other.state_dict())

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
