"""Orchestrated sweeps: shard a run grid over processes, resume for free.

Walks the whole ``repro.orchestrate`` layer on a small
2-optimizer x 2-circuit x 2-seed grid:

1. declare the grid as a JSON-round-trippable :class:`repro.SweepConfig`
   (the sweep analogue of :class:`repro.RunConfig`),
2. execute it across a worker pool with :func:`repro.run_sweep` — every
   unit's :class:`OptimizationResult`, trace, timing and cache statistics
   land in a content-addressed artifact store, and a shared
   :class:`repro.DiskSimulationCache` persists every simulated design point,
3. re-run the same sweep: every unit is skipped via the artifact store,
4. show the equivalent ``python -m repro.run`` command line.

Results are bit-identical for any ``--workers`` value: each unit's seed is
spawned from its grid coordinates (``np.random.SeedSequence``), never from
execution order.

Run with:  python examples/sweep_orchestration.py [--budget N] [--workers N]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import repro


def main(args: argparse.Namespace) -> None:
    repro.seed_everything(args.seed)
    root = Path(args.store or tempfile.mkdtemp(prefix="sweep_orchestration_"))
    store_dir = root / "artifacts"
    cache_dir = root / "sim_cache"

    sweep = repro.SweepConfig(
        name="sweep-orchestration-demo",
        optimizers=[
            repro.OptimizerConfig("random"),
            repro.OptimizerConfig("genetic", {"population_size": 6}),
        ],
        envs=["opamp-p2s-v0", "common_source_lna-p2s-v0"],
        seeds=[args.seed, args.seed + 1],
        budget=args.budget,
        store=str(store_dir),
        disk_cache=str(cache_dir),
    )

    print("=" * 72)
    print("The sweep as one JSON document (python -m repro.run consumes this)")
    print("=" * 72)
    sweep_path = root / "sweep.json"
    sweep.save(sweep_path)
    print(sweep.to_json())

    print()
    print("=" * 72)
    print(f"Cold run: {sweep.num_units} units across {args.workers} worker(s)")
    print("=" * 72)
    result = repro.run_sweep(sweep, workers=args.workers)
    print(result.summary_table())

    print()
    print("=" * 72)
    print("Re-run: the artifact store already holds every unit")
    print("=" * 72)
    rerun = repro.run_sweep(sweep, workers=args.workers)
    print(rerun.summary_table())
    assert not rerun.executed, "expected every unit to be served from the store"

    cached = [record.result.get("cache") for record in result.records]
    total_hits = sum(stats["hits"] for stats in cached if stats)
    total_misses = sum(stats["misses"] for stats in cached if stats)
    print()
    print(f"Artifact store : {result.store_root}")
    print(f"Disk cache     : {cache_dir} "
          f"({total_misses} simulations persisted, {total_hits} lookups served "
          "without simulating during the cold run)")
    print(f"CLI equivalent : python -m repro.run {sweep_path} --workers {args.workers}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=24,
                        help="simulator-call budget per unit")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the sweep")
    parser.add_argument("--seed", type=int, default=0,
                        help="base sweep seed (routed through repro.seed_everything)")
    parser.add_argument("--store", default=None,
                        help="root directory for artifacts + disk cache "
                             "(default: fresh temp dir)")
    main(parser.parse_args())
