"""Memoizing simulator wrapper keyed on quantized parameter vectors.

Every optimizer in this codebase — PPO rollouts, the GA/BO/RS baselines, the
supervised sizer's dataset generation, deployment batches — spends its inner
loop asking a :class:`~repro.simulation.base.CircuitSimulator` the same
question for *recurring* parameter vectors: population elites are re-scored
each generation, every vector-env reset starts from the shared center sizing,
and search methods revisit grid points.  All simulators in this project are
deterministic functions of the netlist's device parameters, so those repeats
are pure waste.

:class:`SimulationCache` wraps any simulator behind the same ``simulate``
protocol and memoizes results in an LRU table keyed on the netlist's
parameter snapshot, quantized so that float noise below simulator resolution
(e.g. ``1e-6`` vs ``1.0000000000001e-6`` from two different arithmetic paths)
maps to the same entry.  The key quantizes the *binary* mantissa of each
parameter to the bit equivalent of ``key_digits`` decimal digits — every
operation involved is exact in float64, so values straddling a rounding
boundary can never split into different keys (the failure mode the decimal
path of :func:`quantize_significant` had to be fixed for).  Parameters that
the design space snaps onto a discrete grid are exactly representable well
above the default 12-digit resolution, so distinct design points never
collide.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.simulation.base import CircuitSimulator, SimulationResult

#: Default maximum number of memoized simulation results.
DEFAULT_CACHE_SIZE = 4096

#: Default number of significant digits used to quantize cache keys.
DEFAULT_KEY_DIGITS = 12


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`SimulationCache`.

    ``hits`` counts every lookup served without running the simulator;
    ``disk_hits`` is the subset of those served from the persistent tier of a
    :class:`~repro.parallel.disk_cache.DiskSimulationCache` (always 0 for the
    purely in-memory cache).  ``misses`` therefore equals the number of real
    simulator calls.

    The three tier counters belong to the learned-surrogate tier of a
    :class:`~repro.surrogate.TieredSimulator` (always 0 otherwise):
    ``surrogate_hits`` counts queries answered by the surrogate model,
    ``trust_rejections`` counts queries where the surrogate was consulted but
    its trust gate refused (low confidence, or an untrained model), and
    ``exact_fallbacks`` counts the exact simulator calls made after such a
    consult.  Surrogate answers are *not* misses: ``misses`` keeps meaning
    "exact simulator calls".
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    surrogate_hits: int = 0
    trust_rejections: int = 0
    exact_fallbacks: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.surrogate_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without an exact simulation (0.0 when unused)."""
        return (self.hits + self.surrogate_hits) / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable digest (what sweep artifacts record)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "surrogate_hits": self.surrogate_hits,
            "trust_rejections": self.trust_rejections,
            "exact_fallbacks": self.exact_fallbacks,
            "hit_rate": self.hit_rate,
        }


def _scale_by_pow10(values: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """``values * 10**exponents`` elementwise, via exact power-of-ten factors.

    ``10.0**k`` is exactly representable in binary only for ``0 <= k <= 22``;
    a single ``values * 10.0**e`` with ``e`` outside that range (e.g. the
    ``1e24`` scale quantizing a 0.1 pF capacitance to 12 digits, or any
    multiplication by an inexact reciprocal like ``1e-13``) injects rounding
    error into the scaled mantissa.  This helper only ever multiplies or
    divides by exact non-negative powers, staged in chunks of ``10**22``.
    """
    def _chunk(magnitude: np.ndarray) -> np.ndarray:
        # Remainder-sized chunk first (then full 10**22 chunks): an integer
        # mantissa divided by the small remainder power usually stays exact,
        # so e.g. 1e11 * 10**-24 reconstructs as (1e11 / 1e2) / 1e22 — two
        # exact steps — instead of rounding twice.
        step = np.mod(magnitude, 22.0)
        # repro: noqa[REP-FLT01] exact sentinel: np.mod of a float-valued
        # integer by 22.0 yields exactly 0.0 for exact multiples, and only
        # that exact value must select the full 10**22 chunk.
        return np.where((step == 0.0) & (magnitude > 0.0), 22.0, step)

    result = np.array(values, dtype=np.float64, copy=True)
    remaining = np.asarray(exponents, dtype=np.float64).copy()
    while np.any(remaining > 0.0):
        step = np.where(remaining > 0.0, _chunk(remaining), 0.0)
        result *= np.power(10.0, step)
        remaining -= step
    while np.any(remaining < 0.0):
        step = np.where(remaining < 0.0, _chunk(-remaining), 0.0)
        result /= np.power(10.0, step)
        remaining += step
    return result


def quantize_significant(values: np.ndarray, digits: int) -> np.ndarray:
    """Round each entry to ``digits`` significant (not decimal) digits.

    The result is a pure function of the rounded *decimal* representation
    ``(mantissa, exponent)``: every float that rounds to the same ``digits``-
    digit decimal — including values whose rounding carries across a decade
    boundary, e.g. ``9.99999999999995e-13`` vs ``1.0e-12`` at 12 digits —
    reconstructs through the identical exact-power-of-ten arithmetic and so
    maps to the identical cache key.
    """
    values = np.asarray(values, dtype=np.float64)
    # repro: noqa[REP-FLT01] exact sentinel: 0.0 has no log10/exponent, so
    # exactly-zero entries (and only those) bypass the mantissa pipeline.
    nonzero = (values != 0.0) & np.isfinite(values)
    exponents = np.zeros(values.shape)
    np.floor(np.log10(np.abs(values, where=nonzero, out=np.ones_like(values))),
             where=nonzero, out=exponents)
    # Integer decimal mantissa in [10^(digits-1), 10^digits].
    mantissa = np.round(_scale_by_pow10(values, digits - 1 - exponents))
    # A mantissa that rounded up across its decade boundary (|m| == 10^digits)
    # is renormalized so it shares the representation — and therefore the
    # cache key — of the next decade's values.
    carry = np.abs(mantissa) >= 10.0**digits
    mantissa = np.where(carry, mantissa / 10.0, mantissa)
    exponents = np.where(carry, exponents + 1.0, exponents)
    # Factor trailing zeros out of the integer mantissa: grid-like values
    # (2e-12, 4.0e-05, ...) then reconstruct through one exact division and
    # come back bitwise equal to their own float literal.  The trailing-zero
    # count is binary-searched (divisibility by 10^k is monotone in k), and
    # every factor involved stays an exactly representable integer.
    trailing = np.zeros(values.shape)
    # repro: noqa[REP-FLT01] exact sentinel: the quantization-step mantissa
    # is an exactly-representable integer; only the exact 0.0 it assigns to
    # zero inputs must skip the trailing-zero factorization.
    candidate_mask = mantissa != 0.0
    for bit in (8.0, 4.0, 2.0, 1.0):
        factor = np.power(10.0, trailing + bit)
        divisible = candidate_mask & (np.round(mantissa / factor) * factor == mantissa)
        trailing = np.where(divisible, trailing + bit, trailing)
    mantissa = np.where(candidate_mask, mantissa / np.power(10.0, trailing), mantissa)
    quantized = _scale_by_pow10(mantissa, exponents - (digits - 1) + trailing)
    # ``values + 0.0`` normalizes -0.0 to +0.0 so both zeros share one key;
    # non-finite entries pass through unchanged.
    return np.where(nonzero, quantized, values + 0.0)


class SimulationCache:
    """LRU-memoizing :class:`CircuitSimulator` wrapper.

    Parameters
    ----------
    simulator:
        The simulator to wrap.  Must be deterministic: identical device
        parameters must produce identical results (true for every simulator
        in :mod:`repro.simulation`).
    max_entries:
        Capacity of the LRU table; the least-recently-used entry is evicted
        once it is exceeded.
    key_digits:
        Key resolution, expressed in decimal significant digits; the key
        quantizes each parameter's *binary* mantissa to the equivalent bit
        count (``2^ceil(digits / log10 2)``), which collapses the same float
        noise with exact-in-float64 arithmetic (see :meth:`_key`).

    The wrapper satisfies the :class:`CircuitSimulator` protocol, so it can
    stand in anywhere a simulator is expected — a whole
    :class:`~repro.parallel.vector_env.VectorCircuitEnv` shares one instance
    across its sub-environments.
    """

    def __init__(
        self,
        simulator: CircuitSimulator,
        max_entries: int = DEFAULT_CACHE_SIZE,
        key_digits: int = DEFAULT_KEY_DIGITS,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if key_digits <= 0:
            raise ValueError("key_digits must be positive")
        self.simulator = simulator
        self.max_entries = int(max_entries)
        self.key_digits = int(key_digits)
        # Binary mantissa resolution equivalent to ``key_digits`` decimal
        # digits: 2^ceil(digits / log10(2)) — 2^40 for the default 12.
        self._mantissa_scale = 2.0 ** math.ceil(self.key_digits / math.log10(2.0))
        self.stats = CacheStats()
        self._entries: "OrderedDict[bytes, SimulationResult]" = OrderedDict()

    # ------------------------------------------------------------------
    # CircuitSimulator protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"cached({self.simulator.name})"

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Evaluate the netlist, serving repeats from the LRU table."""
        key = self._key(netlist)
        cached = self._entries.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._copy(cached)
        result = self._simulate_miss(key, netlist)
        self._entries[key] = self._copy(result)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def _simulate_miss(self, key: bytes, netlist: Netlist) -> SimulationResult:
        """Produce the result for a key absent from the in-memory table.

        Subclasses (the persistent :class:`DiskSimulationCache`) interpose
        additional lookup tiers here; the base implementation is one real
        simulator call.
        """
        self.stats.misses += 1
        return self.simulator.simulate(netlist)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all memoized entries (the stats counters are kept)."""
        self._entries.clear()

    def _key(self, netlist: Netlist) -> bytes:
        # Device parameters in netlist insertion order fully determine a
        # deterministic simulator's output; the order is fixed per topology,
        # so the quantized value array (plus the circuit name) is the key.
        #
        # The key quantizes the *binary* mantissa to the bit count matching
        # ``key_digits`` decimal digits.  Binary quantization collapses the
        # same float noise as decimal rounding, but every operation (frexp,
        # mantissa shift, round, carry) is exact in float64 — there is no
        # decade-boundary failure mode and no inexact power-of-ten scale —
        # and it costs a tenth of a decimal rounding pass, which matters on
        # a path that must stay well below one simulator call.
        values = netlist.parameter_array()
        mantissas, exponents = np.frexp(values)
        scaled = np.round(mantissas * self._mantissa_scale)
        # A mantissa that rounded up to 1.0 (e.g. 0.999...9 at full precision)
        # is renormalized so it shares the key of the next binade's values.
        carry = np.abs(scaled) >= self._mantissa_scale
        scaled = np.where(carry, scaled * 0.5, scaled)
        exponents = exponents + carry
        return netlist.name.encode() + scaled.tobytes() + exponents.tobytes()

    @staticmethod
    def _copy(result: SimulationResult) -> SimulationResult:
        # Environments and baselines mutate/keep the spec dicts they receive;
        # fresh copies keep the memoized entry immutable.
        return SimulationResult(
            specs=dict(result.specs), details=dict(result.details), valid=result.valid
        )
