"""Genetic-algorithm sizing baseline (Liu et al. [6]).

A straightforward real-coded genetic algorithm over the normalized
``[0, 1]^M`` design space: tournament selection, blend (BLX-α) crossover,
Gaussian mutation, and elitism.  The paper reports that this class of method
needs on the order of 400 simulations per design and reaches roughly 77 %
design accuracy on the op-amp benchmark because runs can stall in local
optima; the bench harness reproduces both numbers in shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import OptimizationResult, SizingOptimizer, SizingProblem


@dataclass
class GeneticAlgorithmConfig:
    """Hyper-parameters of the GA baseline."""

    population_size: int = 20
    num_generations: int = 20
    tournament_size: int = 3
    crossover_rate: float = 0.9
    crossover_alpha: float = 0.3
    mutation_rate: float = 0.15
    mutation_scale: float = 0.15
    elite_count: int = 2
    stop_when_met: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError("population_size must be at least 4")
        if self.elite_count >= self.population_size:
            raise ValueError("elite_count must be smaller than the population")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")


class GeneticAlgorithm(SizingOptimizer):
    """Real-coded GA over the normalized design space."""

    name = "genetic_algorithm"

    def __init__(self, config: Optional[GeneticAlgorithmConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.config = config or GeneticAlgorithmConfig()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _tournament(self, fitness: np.ndarray) -> int:
        contenders = self.rng.integers(0, fitness.size, size=self.config.tournament_size)
        return int(contenders[np.argmax(fitness[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        if self.rng.random() > self.config.crossover_rate:
            return parent_a.copy()
        alpha = self.config.crossover_alpha
        low = np.minimum(parent_a, parent_b) - alpha * np.abs(parent_a - parent_b)
        high = np.maximum(parent_a, parent_b) + alpha * np.abs(parent_a - parent_b)
        child = self.rng.uniform(low, high)
        return np.clip(child, 0.0, 1.0)

    def _mutate(self, individual: np.ndarray) -> np.ndarray:
        mask = self.rng.random(individual.size) < self.config.mutation_rate
        noise = self.rng.normal(0.0, self.config.mutation_scale, size=individual.size)
        mutated = np.where(mask, individual + noise, individual)
        return np.clip(mutated, 0.0, 1.0)

    # ------------------------------------------------------------------
    def optimize(self, problem: SizingProblem) -> OptimizationResult:
        config = self.config
        dimension = problem.num_parameters
        population = self.rng.random((config.population_size, dimension))
        fitness = problem.objective_from_unit_batch(population)

        best_index = int(np.argmax(fitness))
        best_individual = population[best_index].copy()
        best_fitness = float(fitness[best_index])

        for _ in range(config.num_generations):
            if config.stop_when_met and problem.targets is not None and best_fitness >= 0.0:
                break
            order = np.argsort(fitness)[::-1]
            next_population = [population[i].copy() for i in order[: config.elite_count]]
            while len(next_population) < config.population_size:
                parent_a = population[self._tournament(fitness)]
                parent_b = population[self._tournament(fitness)]
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
            population = np.stack(next_population)
            fitness = problem.objective_from_unit_batch(population)
            generation_best = int(np.argmax(fitness))
            if fitness[generation_best] > best_fitness:
                best_fitness = float(fitness[generation_best])
                best_individual = population[generation_best].copy()

        return self._build_result(problem, best_individual, best_fitness)
