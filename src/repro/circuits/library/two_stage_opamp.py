"""The 45 nm CMOS two-stage operational amplifier benchmark (Fig. 2).

Topology (classic Miller-compensated two-stage op-amp):

* first stage — NMOS differential pair ``M1``/``M2`` with PMOS current-mirror
  load ``M3``/``M4`` and NMOS tail current source ``M5``;
* second stage — PMOS common-source driver ``M6`` with NMOS current-sink
  load ``M7``;
* Miller compensation capacitor ``CC`` from the first-stage output to the
  amplifier output, fixed load capacitor ``CL``;
* supply ``VP``, ground ``VGND`` and a bias voltage node ``VBIAS`` that sets
  the gate voltage of the current sources — these three are explicit graph
  nodes exactly as the paper requires ("we also treat the power supply,
  ground, and other DC bias voltages as extra nodes").

Design space (Table 1): width ``[1, 100] µm`` and finger count ``[2, 32]``
for each of the 7 transistors plus the compensation capacitance
``[0.1, 10] pF`` — 15 tunable parameters.

Specification sampling space (Table 1): gain ``[300, 500]``, bandwidth
``[1e6, 2.5e7] Hz``, phase margin ``[55°, 60°]``, power ``[1e-4, 1e-2] W``.
"""

from __future__ import annotations

from repro.circuits.devices import bias, capacitor, ground, nmos, pmos, supply
from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

#: Transistor instance names, in schematic order.
OPAMP_TRANSISTORS = ("M1", "M2", "M3", "M4", "M5", "M6", "M7")

#: Default supply voltage of the 45 nm benchmark (volts).
OPAMP_SUPPLY_VOLTAGE = 1.2

#: Bias voltage applied to the tail/current-sink gates (volts).
OPAMP_BIAS_VOLTAGE = 0.55

#: Fixed output load capacitance (farads).
OPAMP_LOAD_CAPACITANCE = 2.0e-12

# Table 1 bounds.
WIDTH_MIN, WIDTH_MAX, WIDTH_STEP = 1e-6, 100e-6, 1e-6
FINGERS_MIN, FINGERS_MAX, FINGERS_STEP = 2, 32, 1
CAP_MIN, CAP_MAX, CAP_STEP = 0.1e-12, 10e-12, 0.1e-12


def _build_netlist(initial_width: float, initial_fingers: int, initial_cap: float) -> Netlist:
    netlist = Netlist("two_stage_opamp")
    # First stage: NMOS differential pair with PMOS mirror load.
    netlist.add_device(nmos("M1", drain="net1", gate="vin_p", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M2", drain="net2", gate="vin_n", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M3", drain="net1", gate="net1", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M4", drain="net2", gate="net1", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M5", drain="tail", gate="vbias", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Second stage: PMOS common-source driver with NMOS current-sink load.
    netlist.add_device(pmos("M6", drain="vout", gate="net2", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M7", drain="vout", gate="vbias", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Compensation and load capacitors.
    netlist.add_device(capacitor("CC", plus="net2", minus="vout", value=initial_cap))
    netlist.add_device(capacitor("CL", plus="vout", minus="vgnd", value=OPAMP_LOAD_CAPACITANCE))
    # Supply, ground and bias are explicit devices so they become graph nodes.
    netlist.add_device(supply("VP", net="vdd", voltage=OPAMP_SUPPLY_VOLTAGE))
    netlist.add_device(ground("VGND", net="vgnd"))
    netlist.add_device(bias("VBIAS", net="vbias", voltage=OPAMP_BIAS_VOLTAGE))
    return netlist


def _build_design_space() -> DesignSpace:
    parameters = []
    for name in OPAMP_TRANSISTORS:
        parameters.append(
            DesignParameter(
                name=f"{name}.width", device=name, attribute="width",
                minimum=WIDTH_MIN, maximum=WIDTH_MAX, step=WIDTH_STEP,
            )
        )
        parameters.append(
            DesignParameter(
                name=f"{name}.fingers", device=name, attribute="fingers",
                minimum=FINGERS_MIN, maximum=FINGERS_MAX, step=FINGERS_STEP, integer=True,
            )
        )
    parameters.append(
        DesignParameter(
            name="CC.value", device="CC", attribute="value",
            minimum=CAP_MIN, maximum=CAP_MAX, step=CAP_STEP,
        )
    )
    return DesignSpace(parameters)


def _build_spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("gain", 300.0, 500.0, Objective.MAXIMIZE, unit="V/V"),
            Specification("bandwidth", 1.0e6, 2.5e7, Objective.MAXIMIZE, unit="Hz",
                          log_uniform=True),
            Specification("phase_margin", 55.0, 60.0, Objective.MAXIMIZE, unit="deg"),
            Specification("power", 1.0e-4, 1.0e-2, Objective.MINIMIZE, unit="W",
                          log_uniform=True),
        ]
    )


def build_two_stage_opamp(
    initial_width: float = 40e-6,
    initial_fingers: int = 16,
    initial_cap: float = 2.0e-12,
) -> CircuitBenchmark:
    """Construct the two-stage op-amp benchmark.

    Parameters
    ----------
    initial_width, initial_fingers, initial_cap:
        Starting sizing applied uniformly to every transistor / the
        compensation capacitor.  The defaults sit near the middle of the
        Table 1 design space so episodes start from a neutral design.
    """
    if not (WIDTH_MIN <= initial_width <= WIDTH_MAX):
        raise ValueError("initial_width outside the Table 1 design space")
    if not (FINGERS_MIN <= initial_fingers <= FINGERS_MAX):
        raise ValueError("initial_fingers outside the Table 1 design space")
    if not (CAP_MIN <= initial_cap <= CAP_MAX):
        raise ValueError("initial_cap outside the Table 1 design space")
    netlist = _build_netlist(initial_width, int(initial_fingers), initial_cap)
    return CircuitBenchmark(
        name="two_stage_opamp",
        technology="45nm CMOS",
        netlist=netlist,
        design_space=_build_design_space(),
        spec_space=_build_spec_space(),
        metadata={
            "supply_voltage": OPAMP_SUPPLY_VOLTAGE,
            "bias_voltage": OPAMP_BIAS_VOLTAGE,
            "load_capacitance": OPAMP_LOAD_CAPACITANCE,
            "max_episode_steps": 50,
        },
    )
