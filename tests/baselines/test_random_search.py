"""Tests for random search and the shared sizing-problem wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import OptimizationTrace, SizingProblem
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.env.reward import FomReward
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.pa_sim import RfPaFineSimulator


class TestSizingProblem:
    def test_requires_target_or_fom(self, opamp_benchmark):
        with pytest.raises(ValueError):
            SizingProblem(opamp_benchmark, OpAmpSimulator())

    def test_objective_zero_when_target_met(self, opamp_benchmark):
        easy = {"gain": 2.0, "bandwidth": 10.0, "phase_margin": 0.0, "power": 1.0}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=easy)
        value = problem.objective(opamp_benchmark.design_space.center())
        assert value == 0.0
        assert problem.num_evaluations == 1
        assert problem.trace.num_evaluations == 1

    def test_objective_negative_when_not_met(self, opamp_benchmark):
        hard = {"gain": 1e9, "bandwidth": 1e15, "phase_margin": 89.0, "power": 1e-12}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=hard)
        assert problem.objective(opamp_benchmark.design_space.center()) < 0.0

    def test_fom_objective(self, rf_pa_benchmark):
        fom = FomReward(rf_pa_benchmark.spec_space)
        problem = SizingProblem(rf_pa_benchmark, RfPaFineSimulator(), fom_reward=fom)
        value = problem.objective(rf_pa_benchmark.design_space.center())
        specs = problem.simulate(rf_pa_benchmark.design_space.center())
        assert value == pytest.approx(specs["output_power"] + 3 * specs["efficiency"])

    def test_trace_best_curve_monotone(self, opamp_benchmark, rng):
        target = {"gain": 400.0, "bandwidth": 5e6, "phase_margin": 57.0, "power": 3e-3}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=target)
        for _ in range(10):
            problem.objective_from_unit(rng.random(15))
        curve = problem.trace.best_curve()
        assert np.all(np.diff(curve) >= -1e-12)


class TestOptimizationTrace:
    def test_record_tracks_best(self):
        trace = OptimizationTrace()
        for value in (-3.0, -1.0, -2.0):
            trace.record(value)
        np.testing.assert_allclose(trace.best_curve(), [-3.0, -1.0, -1.0])


class TestRandomSearch:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomSearchConfig(num_samples=0)

    def test_finds_easy_target_quickly(self, opamp_benchmark):
        easy = {"gain": 2.0, "bandwidth": 10.0, "phase_margin": 0.1, "power": 1.0}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=easy)
        result = RandomSearch(RandomSearchConfig(num_samples=50), seed=0).optimize(problem)
        assert result.success
        assert result.num_simulations < 50

    def test_respects_budget_on_hard_target(self, opamp_benchmark):
        hard = {"gain": 1e9, "bandwidth": 1e15, "phase_margin": 89.0, "power": 1e-12}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=hard)
        result = RandomSearch(RandomSearchConfig(num_samples=10), seed=0).optimize(problem)
        assert not result.success
        # +1 evaluation comes from the final verification of the best design.
        assert result.num_simulations == 11
