"""Bitwise parity: corner-lane batched sweep == sequential per-corner loop.

The acceptance bar for the corner lanes is *bitwise* equality, not
``allclose`` — the batched path must be a pure re-vectorization of the
sequential clone loop on every topology, including both the analytic and
MNA methods of the kernel-batched simulators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import BENCHMARK_BUILDERS
from repro.corners import CornerSimulator, default_corner_set
from repro.simulation.folded_cascode_sim import FoldedCascodeSimulator
from repro.simulation.lna_sim import LnaSimulator
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator
from repro.simulation.pa_sim import RfPaFineSimulator

#: (case id, circuit, simulator factory) — the zoo plus the MNA methods.
PARITY_CASES = [
    ("two_stage_opamp-analytic", "two_stage_opamp", lambda: OpAmpSimulator()),
    ("two_stage_opamp-mna", "two_stage_opamp", lambda: OpAmpSimulator(method="mna")),
    ("folded_cascode", "folded_cascode", lambda: FoldedCascodeSimulator()),
    ("current_mirror_ota-analytic", "current_mirror_ota", lambda: CmOtaSimulator()),
    ("current_mirror_ota-mna", "current_mirror_ota",
     lambda: CmOtaSimulator(method="mna")),
    ("common_source_lna", "common_source_lna", lambda: LnaSimulator()),
    ("rf_pa", "rf_pa", lambda: RfPaFineSimulator()),
]

NUM_SIZINGS = 4


def _bitwise_equal(a: float, b: float) -> bool:
    return np.float64(a).tobytes() == np.float64(b).tobytes()


def _sampled_netlists(circuit: str):
    """The center sizing plus random on-grid sizings of the design space."""
    benchmark = BENCHMARK_BUILDERS[circuit]()
    rng = np.random.default_rng(7)
    netlists = [benchmark.fresh_netlist()]
    for _ in range(NUM_SIZINGS - 1):
        netlist = benchmark.fresh_netlist()
        benchmark.design_space.apply_to_netlist(
            netlist, benchmark.design_space.sample(rng)
        )
        netlists.append(netlist)
    return netlists


@pytest.mark.parametrize(
    "circuit,factory",
    [pytest.param(circuit, factory, id=case_id)
     for case_id, circuit, factory in PARITY_CASES],
)
def test_batched_sweep_is_bitwise_sequential(circuit, factory):
    batched = CornerSimulator(
        factory(), corner_set=default_corner_set(),
        spec_space=BENCHMARK_BUILDERS[circuit]().spec_space,
    )
    sequential = CornerSimulator(
        factory(), corner_set=default_corner_set(),
        spec_space=BENCHMARK_BUILDERS[circuit]().spec_space,
        batched=False,
    )
    for netlist in _sampled_netlists(circuit):
        merged_b = batched.simulate(netlist)
        merged_s = sequential.simulate(netlist)
        assert merged_b.valid == merged_s.valid
        assert set(merged_b.specs) == set(merged_s.specs)
        for name, value in merged_b.specs.items():
            assert _bitwise_equal(value, merged_s.specs[name]), (
                f"{circuit}: spec {name!r} diverged "
                f"({value!r} batched vs {merged_s.specs[name]!r} sequential)"
            )


@pytest.mark.parametrize(
    "circuit,factory",
    [pytest.param(circuit, factory, id=case_id)
     for case_id, circuit, factory in PARITY_CASES],
)
def test_per_corner_results_are_bitwise_sequential(circuit, factory):
    """corner_results() rows, not just the merged view, must match."""
    corner_set = default_corner_set()
    batched = CornerSimulator(factory(), corner_set=corner_set)
    sequential = CornerSimulator(factory(), corner_set=corner_set, batched=False)
    netlist = _sampled_netlists(circuit)[-1]
    rows_b = batched.corner_results(netlist)
    rows_s = sequential.corner_results(netlist)
    assert len(rows_b) == len(rows_s) == len(corner_set)
    for row_b, row_s in zip(rows_b, rows_s):
        assert row_b.valid == row_s.valid
        assert set(row_b.specs) == set(row_s.specs)
        for name, value in row_b.specs.items():
            assert _bitwise_equal(value, row_s.specs[name])


def test_batched_flag_engages_the_kernel_path():
    """The opamp/cm_ota sweeps really do take the corner-lane branch."""
    assert CornerSimulator(OpAmpSimulator()).batched
    assert CornerSimulator(CmOtaSimulator(method="mna")).batched
    assert not CornerSimulator(LnaSimulator()).batched
    assert not CornerSimulator(OpAmpSimulator(), batched=False).batched
