"""Tests for the rollout buffer and GAE computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.rollout import RolloutBuffer


def make_buffer(rewards, values, dones, gamma=0.9, lam=0.8):
    buffer = RolloutBuffer(gamma=gamma, gae_lambda=lam)
    for reward, value, done in zip(rewards, values, dones):
        buffer.add(observation=None, action=np.array([0]), log_prob=0.0,
                   value=value, reward=reward, done=done)
    return buffer


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            RolloutBuffer(gamma=0.0)
        with pytest.raises(ValueError):
            RolloutBuffer(gae_lambda=1.5)

    def test_empty_buffer_cannot_compute(self):
        with pytest.raises(ValueError):
            RolloutBuffer().compute_returns_and_advantages()

    def test_minibatch_size_validation(self, rng):
        buffer = make_buffer([1.0], [0.0], [True])
        with pytest.raises(ValueError):
            list(buffer.minibatch_indices(rng, 0))


class TestGae:
    def test_single_step_episode(self):
        """For a one-step episode: advantage = r - V(s), return = r."""
        buffer = make_buffer(rewards=[2.0], values=[0.5], dones=[True])
        buffer.compute_returns_and_advantages(normalize=False)
        np.testing.assert_allclose(buffer.advantages, [1.5])
        np.testing.assert_allclose(buffer.returns, [2.0])

    def test_two_step_episode_hand_computed(self):
        gamma, lam = 0.9, 0.8
        rewards, values = [1.0, 2.0], [0.3, 0.6]
        buffer = make_buffer(rewards, values, [False, True], gamma=gamma, lam=lam)
        buffer.compute_returns_and_advantages(normalize=False)
        delta_1 = rewards[1] - values[1]
        delta_0 = rewards[0] + gamma * values[1] - values[0]
        expected_adv_1 = delta_1
        expected_adv_0 = delta_0 + gamma * lam * expected_adv_1
        np.testing.assert_allclose(buffer.advantages, [expected_adv_0, expected_adv_1])
        np.testing.assert_allclose(buffer.returns,
                                   np.array([expected_adv_0, expected_adv_1]) + values)

    def test_episode_boundary_stops_bootstrapping(self):
        """The first episode's advantages are unaffected by the second episode."""
        lone = make_buffer([1.0, 2.0], [0.0, 0.0], [False, True])
        lone.compute_returns_and_advantages(normalize=False)
        combined = make_buffer([1.0, 2.0, 100.0], [0.0, 0.0, 0.0], [False, True, True])
        combined.compute_returns_and_advantages(normalize=False)
        np.testing.assert_allclose(combined.advantages[:2], lone.advantages)

    def test_normalization_zero_mean_unit_std(self):
        buffer = make_buffer([1.0, -2.0, 3.0, 0.5], [0.0] * 4, [False, True, False, True])
        buffer.compute_returns_and_advantages(normalize=True)
        assert abs(buffer.advantages.mean()) < 1e-9
        assert buffer.advantages.std() == pytest.approx(1.0, abs=1e-6)

    def test_adding_invalidates_cached_advantages(self):
        buffer = make_buffer([1.0], [0.0], [True])
        buffer.compute_returns_and_advantages()
        buffer.add(None, np.array([0]), 0.0, 0.0, 1.0, True)
        assert buffer.advantages is None


class TestEpisodeStatistics:
    def test_episode_rewards_and_lengths(self):
        buffer = make_buffer(
            rewards=[1.0, 2.0, -1.0, 5.0, 3.0],
            values=[0.0] * 5,
            dones=[False, True, False, False, True],
        )
        assert buffer.episode_rewards() == [3.0, 7.0]
        assert buffer.episode_lengths() == [2, 3]

    def test_minibatches_cover_everything_once(self, rng):
        buffer = make_buffer([1.0] * 10, [0.0] * 10, [False] * 9 + [True])
        seen = np.concatenate(list(buffer.minibatch_indices(rng, 3)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_clear(self):
        buffer = make_buffer([1.0], [0.0], [True])
        buffer.clear()
        assert len(buffer) == 0
