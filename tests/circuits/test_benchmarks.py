"""Tests for the two benchmark circuits against Table 1 of the paper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import DeviceType, build_rf_pa, build_two_stage_opamp
from repro.circuits.library.rf_pa import RF_PA_DEVICES
from repro.circuits.library.two_stage_opamp import OPAMP_TRANSISTORS


class TestTwoStageOpAmp:
    def test_parameter_count_matches_table1(self, opamp_benchmark):
        # 2 * 7 transistor parameters + 1 compensation capacitor = 15.
        assert opamp_benchmark.num_parameters == 15

    def test_design_space_bounds_match_table1(self, opamp_benchmark):
        space = opamp_benchmark.design_space
        width = space["M1.width"]
        assert (width.minimum, width.maximum) == (1e-6, 100e-6)
        fingers = space["M1.fingers"]
        assert (fingers.minimum, fingers.maximum) == (2, 32)
        assert fingers.integer
        cap = space["CC.value"]
        assert (cap.minimum, cap.maximum) == (pytest.approx(0.1e-12), pytest.approx(10e-12))

    def test_spec_space_matches_table1(self, opamp_benchmark):
        specs = opamp_benchmark.spec_space
        assert set(specs.names) == {"gain", "bandwidth", "phase_margin", "power"}
        assert (specs["gain"].minimum, specs["gain"].maximum) == (300.0, 500.0)
        assert (specs["bandwidth"].minimum, specs["bandwidth"].maximum) == (1e6, 2.5e7)
        assert (specs["phase_margin"].minimum, specs["phase_margin"].maximum) == (55.0, 60.0)
        assert (specs["power"].minimum, specs["power"].maximum) == (1e-4, 1e-2)
        assert specs["power"].objective.value == "minimize"

    def test_topology_has_seven_transistors_and_bias_nodes(self, opamp_benchmark):
        netlist = opamp_benchmark.netlist
        assert [t.name for t in netlist.transistors] == list(OPAMP_TRANSISTORS)
        assert len(netlist.devices_of_type(DeviceType.SUPPLY)) == 1
        assert len(netlist.devices_of_type(DeviceType.GROUND)) == 1
        assert len(netlist.devices_of_type(DeviceType.BIAS)) == 1
        assert len(netlist.devices_of_type(DeviceType.CAPACITOR)) == 2  # CC and CL

    def test_differential_pair_shares_tail_node(self, opamp_benchmark):
        netlist = opamp_benchmark.netlist
        assert netlist.device("M1").terminals["s"] == netlist.device("M2").terminals["s"]
        assert netlist.device("M5").terminals["d"] == netlist.device("M1").terminals["s"]

    def test_compensation_cap_bridges_stages(self, opamp_benchmark):
        netlist = opamp_benchmark.netlist
        cc = netlist.device("CC")
        assert set(cc.terminals.values()) == {"net2", "vout"}
        assert netlist.device("M6").terminals["g"] == "net2"
        assert netlist.device("M6").terminals["d"] == "vout"

    def test_initial_values_inside_design_space(self, opamp_benchmark):
        values = opamp_benchmark.design_space.vector_from_netlist(opamp_benchmark.netlist)
        assert np.all(values >= opamp_benchmark.design_space.lower_bounds)
        assert np.all(values <= opamp_benchmark.design_space.upper_bounds)

    def test_out_of_range_initializers_rejected(self):
        with pytest.raises(ValueError):
            build_two_stage_opamp(initial_width=500e-6)
        with pytest.raises(ValueError):
            build_two_stage_opamp(initial_fingers=64)
        with pytest.raises(ValueError):
            build_two_stage_opamp(initial_cap=100e-12)

    def test_fresh_netlist_is_independent(self, opamp_benchmark):
        fresh = opamp_benchmark.fresh_netlist()
        fresh.set_parameter("M1", "width", 99e-6)
        assert opamp_benchmark.netlist.get_parameter("M1", "width") != pytest.approx(99e-6)

    def test_summary_structure(self, opamp_benchmark):
        summary = opamp_benchmark.summary()
        assert summary["technology"] == "45nm CMOS"
        assert summary["num_device_parameters"] == 15
        assert summary["design_space_cardinality"] > 1e20


class TestRfPa:
    def test_parameter_count_matches_table1(self, rf_pa_benchmark):
        # 2 * 7 GaN devices = 14.
        assert rf_pa_benchmark.num_parameters == 14

    def test_design_space_bounds_match_table1(self, rf_pa_benchmark):
        space = rf_pa_benchmark.design_space
        width = space["M1.width"]
        assert (width.minimum, width.maximum) == (16e-6, 100e-6)
        fingers = space["D1.fingers"]
        assert (fingers.minimum, fingers.maximum) == (1, 16)
        assert fingers.integer

    def test_spec_space_matches_table1(self, rf_pa_benchmark):
        specs = rf_pa_benchmark.spec_space
        assert set(specs.names) == {"efficiency", "output_power"}
        assert (specs["efficiency"].minimum, specs["efficiency"].maximum) == (0.50, 0.60)
        assert (specs["output_power"].minimum, specs["output_power"].maximum) == (2.0, 3.0)

    def test_signal_chain_order(self, rf_pa_benchmark):
        netlist = rf_pa_benchmark.netlist
        assert [d for d in RF_PA_DEVICES] == ["D1", "D2", "D3", "D4", "D5", "DF", "M1"]
        # DF drives the power device's gate.
        assert netlist.device("DF").terminals["d"] == netlist.device("M1").terminals["g"]
        # D1's gate is the RF input node.
        assert netlist.device("D1").terminals["g"] == "vin_a"

    def test_supply_ground_bias_nodes_present(self, rf_pa_benchmark):
        netlist = rf_pa_benchmark.netlist
        assert len(netlist.devices_of_type(DeviceType.SUPPLY)) == 2
        assert len(netlist.devices_of_type(DeviceType.GROUND)) == 1
        assert len(netlist.devices_of_type(DeviceType.BIAS)) == 2

    def test_load_resistor_value_in_metadata(self, rf_pa_benchmark):
        assert rf_pa_benchmark.netlist.get_parameter("RLOAD", "value") == pytest.approx(
            rf_pa_benchmark.metadata["load_resistance"]
        )

    def test_max_episode_steps_metadata(self, opamp_benchmark, rf_pa_benchmark):
        assert opamp_benchmark.metadata["max_episode_steps"] == 50
        assert rf_pa_benchmark.metadata["max_episode_steps"] == 30

    def test_out_of_range_initializers_rejected(self):
        with pytest.raises(ValueError):
            build_rf_pa(initial_width=200e-6)
        with pytest.raises(ValueError):
            build_rf_pa(initial_fingers=99)
