"""The versioned serve wire protocol: round-tripping, strictness, documents."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    SCHEMA_VERSION,
    ServeError,
    ServeRequest,
    ServeResponse,
    load_requests_document,
    parse_legacy_document,
    parse_requests_document,
)


class TestServeRequest:
    def test_round_trips_through_json(self):
        request = ServeRequest(
            target_specs={"gain": 350.0, "power": 4e-3},
            env_id="opamp-p2s-v0",
            max_steps=40,
            deadline_ms=12.5,
            request_id="req-7",
        )
        clone = ServeRequest.from_json(request.to_json())
        assert clone == request
        assert clone.to_json() == request.to_json()

    def test_optionals_are_omitted_when_unset(self):
        document = ServeRequest(target_specs={"gain": 1.0}).to_dict()
        assert document == {"schema_version": 1, "target_specs": {"gain": 1.0}}

    def test_unknown_field_error_lists_known_fields(self):
        with pytest.raises(ValueError, match=r"unknown request field\(s\) \['bogus'\]"):
            ServeRequest.from_dict({"target_specs": {"gain": 1.0}, "bogus": 1})
        with pytest.raises(ValueError, match="target_specs"):
            ServeRequest.from_dict({"target_specs": {"gain": 1.0}, "bogus": 1})

    def test_future_schema_version_names_the_supported_one(self):
        with pytest.raises(ValueError, match=f"speaks version {SCHEMA_VERSION}"):
            ServeRequest.from_dict({"schema_version": 99, "target_specs": {"gain": 1.0}})

    @pytest.mark.parametrize(
        "data,match",
        [
            ({}, "target_specs"),
            ({"target_specs": {}}, "non-empty"),
            ({"target_specs": {"gain": "high"}}, "non-numeric"),
            ({"target_specs": {"gain": 1.0}, "max_steps": 0}, "max_steps"),
            ({"target_specs": {"gain": 1.0}, "deadline_ms": -1}, "deadline_ms"),
            (42, "must be an object"),
        ],
    )
    def test_bad_requests(self, data, match):
        with pytest.raises(ValueError, match=match):
            ServeRequest.from_dict(data)

    def test_invalid_json_line(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ServeRequest.from_json("{nope")


class TestServeResponse:
    def make_response(self, **overrides):
        fields = dict(
            env_id="opamp-p2s-v0",
            target_specs={"gain": 350.0},
            success=True,
            steps=7,
            final_specs={"gain": 361.0},
            final_parameters={"w1": 2e-6},
            met={"gain": True},
            index=3,
            request_id="req-7",
            timing={"serve_ms": 4.2, "total_ms": 9.1},
            tier={"surrogate_hits": 2},
        )
        fields.update(overrides)
        return ServeResponse(**fields)

    def test_round_trips_through_json(self):
        response = self.make_response()
        clone = ServeResponse.from_json(response.to_json())
        assert clone.to_json() == response.to_json()
        assert clone.met == {"gain": True}
        assert clone.request_id == "req-7"

    def test_error_round_trips_and_ok_flag(self):
        response = self.make_response(
            success=False, error=ServeError(code="timeout", message="budget expired")
        )
        assert not response.ok
        clone = ServeResponse.from_json(response.to_json())
        assert clone.error is not None
        assert (clone.error.code, clone.error.message) == ("timeout", "budget expired")
        assert self.make_response().ok

    def test_result_never_serializes(self):
        response = self.make_response()
        response.result = object()  # stands in for a DeploymentResult
        assert "result" not in response.to_dict()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match=r"unknown response field\(s\)"):
            ServeResponse.from_dict({"env_id": "x", "surprise": 1})

    def test_failure_constructor_echoes_request(self):
        request = ServeRequest(
            target_specs={"gain": 1.0}, env_id="opamp-p2s-v0", request_id="r1"
        )
        response = ServeResponse.failure(request, "unroutable", "no such env")
        assert not response.ok and not response.success
        assert response.env_id == "opamp-p2s-v0"
        assert response.request_id == "r1"
        assert response.target_specs == {"gain": 1.0}
        anonymous = ServeResponse.failure(None, "bad_request", "unparseable line")
        assert anonymous.error.code == "bad_request"
        assert anonymous.target_specs == {}


class TestV1Documents:
    def test_requests_document_with_defaults(self):
        requests = parse_requests_document(
            {
                "schema_version": 1,
                "env_id": "opamp-p2s-v0",
                "max_steps": 60,
                "requests": [
                    {"target_specs": {"gain": 350.0}},
                    {"target_specs": {"gain": 400.0}, "max_steps": 30,
                     "env_id": "opamp-v0"},
                ],
            }
        )
        assert [r.env_id for r in requests] == ["opamp-p2s-v0", "opamp-v0"]
        assert [r.max_steps for r in requests] == [60, 30]

    def test_entry_errors_name_the_request(self):
        with pytest.raises(ValueError, match="request #1"):
            parse_requests_document(
                {"requests": [{"target_specs": {"gain": 1.0}}, {"target_specs": {}}]}
            )

    @pytest.mark.parametrize(
        "document,match",
        [
            ({"requests": []}, "no requests"),
            ({"requests": "nope"}, "list of request objects"),
            ({"requests": [{"target_specs": {"g": 1.0}}], "bogus": 1},
             "unknown request document"),
            ({"requests": [{"target_specs": {"g": 1.0}}], "schema_version": 2},
             "schema_version 2"),
        ],
    )
    def test_bad_documents(self, document, match):
        with pytest.raises(ValueError, match=match):
            parse_requests_document(document)

    def test_load_requests_document(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "requests": [{"target_specs": {"gain": 350.0}, "request_id": "a"}],
        }))
        requests = load_requests_document(path)
        assert len(requests) == 1 and requests[0].request_id == "a"

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_requests_document(path)


class TestLegacyDocuments:
    def test_document_with_defaults(self):
        requests = parse_legacy_document(
            {
                "env": "opamp-p2s-v0",
                "max_steps": 60,
                "targets": [
                    {"gain": 350.0, "power": 4e-3},
                    {"specs": {"gain": 400.0}, "max_steps": 30},
                ],
            }
        )
        assert len(requests) == 2
        assert requests[0].env_id == "opamp-p2s-v0"
        assert requests[0].max_steps == 60
        assert requests[1].max_steps == 30
        assert requests[1].target_specs == {"gain": 400.0}

    def test_bare_list(self):
        requests = parse_legacy_document([{"gain": 1.0}, {"gain": 2.0}])
        assert [r.target_specs for r in requests] == [{"gain": 1.0}, {"gain": 2.0}]
        assert requests[0].env_id is None

    @pytest.mark.parametrize(
        "document,match",
        [
            ({}, "targets"),
            ({"targets": []}, "no targets"),
            ({"targets": [{"gain": "high"}]}, "non-numeric"),
            ({"targets": [[1, 2]]}, "must be an object"),
            ({"targets": [{"specs": {"gain": 1.0}, "bogus": 1}]}, "unknown keys"),
            ({"bogus": 1, "targets": [{"gain": 1.0}]}, "unknown top-level"),
            ("not a list", "spec document"),
        ],
    )
    def test_bad_documents(self, document, match):
        with pytest.raises(ValueError, match=match):
            parse_legacy_document(document)

    def test_parse_requests_document_warns_on_legacy_shapes(self):
        with pytest.warns(DeprecationWarning, match="legacy specs.json"):
            requests = parse_requests_document({"targets": [{"gain": 1.0}]})
        assert requests[0].target_specs == {"gain": 1.0}
        with pytest.warns(DeprecationWarning, match="legacy specs.json"):
            parse_requests_document([{"gain": 1.0}])

    def test_specs_module_shims_warn_but_work(self, tmp_path):
        from repro.serve import load_spec_requests, parse_spec_requests

        with pytest.warns(DeprecationWarning, match="parse_spec_requests"):
            requests = parse_spec_requests([{"gain": 2.0}])
        assert requests[0].target_specs == {"gain": 2.0}

        path = tmp_path / "specs.json"
        path.write_text(json.dumps({"targets": [{"gain": 3.0}]}))
        with pytest.warns(DeprecationWarning, match="load_spec_requests"):
            requests = load_spec_requests(path)
        assert requests[0].target_specs == {"gain": 3.0}
