"""Surrogate pre-screening: the same answer for a quarter of the simulations.

Every exact simulation a run performs can be banked into a corpus directory
and recycled as surrogate training data.  This script closes that loop on
the two-stage op-amp:

1. run an unscreened random search whose :class:`repro.TieredSimulator`
   persists every exact (parameters -> specs) pair into a corpus directory,
2. harvest the corpus and train the ensemble surrogate (the same thing
   ``python -m repro.run surrogate train CORPUS model.npz`` does),
3. re-run the identical search with the surrogate pre-screening each
   population: it ranks all candidates, only the top quarter is exactly
   verified, and the final answer is still exact — bitwise the same sizing
   as the unscreened run,
4. on a second topology (the 4-parameter LNA, whose spec surface a few
   hundred points pin down), bank a corpus through a
   :class:`repro.TieredSimulator`, refit its surrogate online, and watch the
   calibrated trust gate answer fresh in-distribution queries without
   touching the exact simulator.

Run with:  python examples/surrogate_prescreen.py [--budget N] [--epochs N]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.surrogate import (
    SurrogateConfig,
    SurrogatePrescreener,
    TieredSimulator,
    harvest_corpus,
    train_surrogate,
)

ENV_ID = "opamp-p2s-v0"


def run_search(budget: int, seed: int, prescreen=None, surrogate_dir=None):
    env = repro.make_env(ENV_ID, seed=0, surrogate_dir=surrogate_dir)
    optimizer = repro.make_optimizer(
        "random", budget=budget, stop_when_met=False, prescreen=prescreen
    )
    return optimizer.optimize(env, seed=seed)


def main(budget: int, epochs: int, tier_points: int = 400, seed: int = 7) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-surrogate-"))
    corpus = workdir / "corpus"

    print("=" * 72)
    print("1. Unscreened search (every candidate exactly simulated)")
    print("=" * 72)
    reference = run_search(budget, seed, surrogate_dir=corpus)
    print(f"  exact simulations : {reference.num_simulations}")
    print(f"  best objective    : {reference.best_objective:.6f}")
    print(f"  corpus entries    : {len(list(corpus.glob('*.json')))} -> {corpus}")

    print()
    print("=" * 72)
    print("2. Train the ensemble surrogate on the banked corpus")
    print("=" * 72)
    dataset = harvest_corpus(corpus)
    config = SurrogateConfig(epochs=epochs)
    surrogate, report = train_surrogate(dataset, config=config, seed=0)
    print(f"  harvested points  : {len(dataset)} ({dataset.circuit!r})")
    print(f"  held-out error    : mean {report.val_error_mean:.4f} / "
          f"max {report.val_error_max:.4f} (standardized)")
    gate = "rejects everything (grow the corpus)"
    if report.threshold is not None:
        gate = f"threshold {report.threshold:.4g}"
    print(f"  trust gate        : {gate}")

    print()
    print("=" * 72)
    print("3. Pre-screened search (surrogate ranks, exact verifies the top 25%)")
    print("=" * 72)
    prescreener = SurrogatePrescreener(surrogate, top_fraction=0.25)
    screened = run_search(budget, seed, prescreen=prescreener)
    stats = prescreener.stats
    identical = (
        np.array_equal(screened.best_parameters, reference.best_parameters)
        and screened.best_objective == reference.best_objective
        and screened.best_specs == reference.best_specs
    )
    ratio = reference.num_simulations / max(screened.num_simulations, 1)
    print(f"  exact simulations : {screened.num_simulations} "
          f"(of {stats.candidates} candidates; {ratio:.1f}x fewer)")
    print(f"  best objective    : {screened.best_objective:.6f}")
    print(f"  identical answer  : {identical} (parameters, objective and specs)")

    print()
    print("=" * 72)
    print("4. The trust-gated simulation tier (LNA, corpus banked online)")
    print("=" * 72)
    env = repro.make_env("common_source_lna-p2s-v0", seed=0)
    tier_config = SurrogateConfig(epochs=epochs, trust_tolerance=0.25)
    tier = TieredSimulator(env.simulator, config=tier_config, seed=0)
    rng = np.random.default_rng(seed)
    space = env.benchmark.design_space

    def query(count):
        for _ in range(count):
            netlist = env.benchmark.fresh_netlist()
            space.apply_to_netlist(netlist, space.sample(rng))
            tier.simulate(netlist)

    query(tier_points)  # every one exact: the tier banks its training set
    tier_report = tier.refit()
    gate = "rejects everything (bank more points)"
    if tier_report is not None and tier_report.threshold is not None:
        gate = f"threshold {tier_report.threshold:.4g}"
    print(f"  banked corpus     : {tier_points} exact points | trust gate: {gate}")
    before = tier.stats.surrogate_hits
    query(48)  # fresh queries: trusted ones never reach the exact simulator
    tier_stats = tier.stats
    print("  fresh queries     : 48")
    print(f"  surrogate answers : {tier_stats.surrogate_hits - before}")
    print(f"  trust rejections  : {tier_stats.trust_rejections} "
          f"(fell back to exact; never a silent wrong answer)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=240,
                        help="candidate evaluations per search (default 240)")
    parser.add_argument("--epochs", type=int, default=400,
                        help="surrogate training epochs (default 400)")
    parser.add_argument("--tier-points", type=int, default=400, dest="tier_points",
                        help="exact points banked before the LNA tier refits (default 400)")
    parser.add_argument("--seed", type=int, default=7, help="search seed (default 7)")
    args = parser.parse_args()
    main(args.budget, args.epochs, tier_points=args.tier_points, seed=args.seed)
