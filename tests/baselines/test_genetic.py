"""Tests for the genetic-algorithm baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import SizingProblem
from repro.baselines.genetic import GeneticAlgorithm, GeneticAlgorithmConfig
from repro.simulation.opamp_sim import OpAmpSimulator


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            GeneticAlgorithmConfig(population_size=2)
        with pytest.raises(ValueError):
            GeneticAlgorithmConfig(population_size=10, elite_count=10)
        with pytest.raises(ValueError):
            GeneticAlgorithmConfig(mutation_rate=1.5)


class TestOnCircuitProblem:
    def test_improves_over_random_initialization(self, opamp_benchmark):
        target = {"gain": 400.0, "bandwidth": 5e6, "phase_margin": 57.0, "power": 3e-3}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=target)
        config = GeneticAlgorithmConfig(population_size=10, num_generations=6, stop_when_met=False)
        result = GeneticAlgorithm(config, seed=0).optimize(problem)
        curve = result.trace.best_curve()
        # Best-so-far objective never decreases and improves over the first
        # random population.
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] > curve[9]
        assert result.num_simulations == problem.num_evaluations

    def test_stops_early_when_target_met(self, opamp_benchmark):
        easy_target = {"gain": 2.0, "bandwidth": 10.0, "phase_margin": 0.1, "power": 1.0}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=easy_target)
        config = GeneticAlgorithmConfig(population_size=8, num_generations=50)
        result = GeneticAlgorithm(config, seed=0).optimize(problem)
        assert result.success
        # Early stop: far fewer evaluations than the full budget.
        assert result.num_simulations < 8 * 51

    def test_best_parameters_within_design_space(self, opamp_benchmark):
        target = {"gain": 400.0, "bandwidth": 5e6, "phase_margin": 57.0, "power": 3e-3}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=target)
        config = GeneticAlgorithmConfig(population_size=8, num_generations=3)
        result = GeneticAlgorithm(config, seed=1).optimize(problem)
        space = opamp_benchmark.design_space
        assert np.all(result.best_parameters >= space.lower_bounds - 1e-12)
        assert np.all(result.best_parameters <= space.upper_bounds + 1e-12)

    def test_reproducible_given_seed(self, opamp_benchmark):
        target = {"gain": 400.0, "bandwidth": 5e6, "phase_margin": 57.0, "power": 3e-3}
        config = GeneticAlgorithmConfig(population_size=6, num_generations=3, stop_when_met=False)
        results = []
        for _ in range(2):
            problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=target)
            results.append(GeneticAlgorithm(config, seed=5).optimize(problem))
        np.testing.assert_allclose(results[0].best_parameters, results[1].best_parameters)
        assert results[0].best_objective == results[1].best_objective
