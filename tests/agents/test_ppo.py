"""Tests for the PPO trainer (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_env, make_policy
from repro.agents.ppo import PPOConfig, PPOTrainer


@pytest.fixture
def small_trainer():
    env = make_env("opamp-p2s-v0", seed=0, max_steps=8)
    policy = make_policy("baseline_a", env, np.random.default_rng(0))
    config = PPOConfig(minibatch_size=16, update_epochs=2)
    return PPOTrainer(env, policy, config=config, seed=0, method_name="test")


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PPOConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            PPOConfig(clip_epsilon=1.5)
        with pytest.raises(ValueError):
            PPOConfig(update_epochs=0)


class TestCollection:
    def test_collect_episodes_fills_buffer(self, small_trainer):
        buffer = small_trainer.collect_episodes(2)
        assert len(buffer.episode_rewards()) == 2
        assert len(buffer) <= 2 * small_trainer.env.max_steps
        assert all(t.action.shape == (15,) for t in buffer.transitions)

    def test_collect_requires_positive_count(self, small_trainer):
        with pytest.raises(ValueError):
            small_trainer.collect_episodes(0)


class TestUpdate:
    def test_update_returns_finite_stats(self, small_trainer):
        buffer = small_trainer.collect_episodes(2)
        stats = small_trainer.update(buffer)
        for key in ("policy_loss", "value_loss", "entropy", "explained_variance"):
            assert np.isfinite(stats[key])
        assert stats["entropy"] > 0.0

    def test_update_changes_parameters(self, small_trainer):
        before = {name: p.data.copy() for name, p in small_trainer.policy.named_parameters()}
        buffer = small_trainer.collect_episodes(2)
        small_trainer.update(buffer)
        changed = any(
            not np.allclose(before[name], p.data)
            for name, p in small_trainer.policy.named_parameters()
        )
        assert changed

    def test_value_loss_decreases_with_repeated_updates_on_same_buffer(self, small_trainer):
        buffer = small_trainer.collect_episodes(3)
        first = small_trainer.update(buffer)["value_loss"]
        for _ in range(5):
            last = small_trainer.update(buffer)["value_loss"]
        assert last < first


class TestTrainingLoop:
    def test_history_records_cover_budget(self, small_trainer):
        history = small_trainer.train(total_episodes=8, episodes_per_update=4)
        assert history.records[-1].episodes_seen == 8
        assert len(history.records) == 2
        assert np.isfinite(history.final_mean_reward)
        assert history.circuit == "two_stage_opamp"

    def test_history_series_and_axis(self, small_trainer):
        history = small_trainer.train(total_episodes=8, episodes_per_update=4)
        np.testing.assert_array_equal(history.episodes_axis(), [4, 8])
        assert history.series("mean_episode_reward").shape == (2,)

    def test_eval_interval_populates_accuracy(self):
        env = make_env("opamp-p2s-v0", seed=0, max_steps=5)
        policy = make_policy("baseline_a", env, np.random.default_rng(0))
        trainer = PPOTrainer(env, policy, PPOConfig(minibatch_size=16, update_epochs=1), seed=0)
        history = trainer.train(
            total_episodes=4, episodes_per_update=2, eval_interval=1, eval_specs=2
        )
        accuracies = [r.deployment_accuracy for r in history.records]
        assert all(a is not None for a in accuracies)
        assert all(0.0 <= a <= 1.0 for a in accuracies)

    def test_invalid_total_episodes(self, small_trainer):
        with pytest.raises(ValueError):
            small_trainer.train(total_episodes=0)

    def test_gcn_policy_trains_end_to_end(self):
        env = make_env("opamp-p2s-v0", seed=1, max_steps=6)
        policy = make_policy("gcn_fc", env, np.random.default_rng(1))
        trainer = PPOTrainer(env, policy, PPOConfig(minibatch_size=32, update_epochs=1), seed=1)
        history = trainer.train(total_episodes=4, episodes_per_update=4)
        assert len(history.records) == 1
