"""The sweep run manager: expand, skip, execute, persist.

:func:`run_sweep` is the orchestration entry point behind
``python -m repro.run``:

1. expand the :class:`~repro.orchestrate.sweep.SweepConfig` into work units;
2. skip every unit whose *completed* artifact already exists in the
   :class:`~repro.orchestrate.store.ArtifactStore` (resume — failed and
   missing units run again);
3. execute the remainder across the worker pool;
4. persist each record (successes and failures both) plus a sweep manifest
   tying the config's content key to its unit keys and statuses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.orchestrate.pool import execute_units
from repro.orchestrate.store import ArtifactStore
from repro.orchestrate.sweep import SweepConfig
from repro.orchestrate.units import UnitRecord, WorkUnit

#: Progress observer: ``(event, record_or_unit)`` with event in
#: ``{"skipped", "completed", "failed"}``.
ProgressCallback = Callable[[str, UnitRecord], None]


@dataclass
class ExecutionReport:
    """Outcome of one store-aware batch execution (any unit kind)."""

    records: List[UnitRecord] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def raise_on_failure(self) -> None:
        """Raise a summary ``RuntimeError`` when any unit failed."""
        if self.ok:
            return
        failed = [record for record in self.records if not record.completed]
        details = "\n".join(
            f"--- {record.unit_id} ---\n{(record.error or '').strip()}" for record in failed
        )
        raise RuntimeError(
            f"{len(failed)} of {len(self.records)} work units failed:\n{details}"
        )


def execute_with_store(
    units: Sequence[WorkUnit],
    store: Optional[Union[str, ArtifactStore]] = None,
    workers: int = 1,
    resume: bool = True,
    on_progress: Optional[ProgressCallback] = None,
) -> ExecutionReport:
    """Execute units, skipping those whose completed artifact already exists.

    The generic core under :func:`run_sweep`, usable by any harness that
    shards into :class:`WorkUnit`\\ s (the transfer matrix and Table 2
    harnesses route through it).  ``store=None`` disables persistence and
    resume; otherwise completed records are served from the store and fresh
    records (including failures) are persisted into it.
    """
    start = time.perf_counter()
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)

    units = list(units)
    pending: List[WorkUnit] = []
    reused: Dict[str, UnitRecord] = {}
    for unit in units:
        existing = store.get(unit.key()) if (store is not None and resume) else None
        if existing is not None and existing.completed:
            reused[unit.key()] = existing
            if on_progress is not None:
                on_progress("skipped", existing)
        else:
            pending.append(unit)

    def _observe(record: UnitRecord) -> None:
        # Persist as records stream back from the pool: a crash or Ctrl-C
        # mid-sweep keeps every finished unit for the next resume.  The
        # manifest (a rebuildable index) is refreshed once at the end.
        if store is not None:
            store.put(record, update_manifest=False)
        if on_progress is not None:
            on_progress("completed" if record.completed else "failed", record)

    fresh = execute_units(pending, workers=workers, on_record=_observe)
    if store is not None:
        store.update_manifest(fresh)

    fresh_by_key = {record.key: record for record in fresh}
    report = ExecutionReport()
    for unit in units:
        key = unit.key()
        if key in reused:
            record = reused[key]
            report.skipped.append(record.unit_id)
        else:
            record = fresh_by_key[key]
            report.executed.append(record.unit_id)
            if not record.completed:
                report.failed.append(record.unit_id)
        report.records.append(record)
    report.wall_time_s = time.perf_counter() - start
    return report


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` invocation did (and did not) run."""

    config: SweepConfig
    records: List[UnitRecord] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    store_root: str = ""

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def num_units(self) -> int:
        return len(self.records)

    def record(self, unit_id: str) -> UnitRecord:
        for record in self.records:
            if record.unit_id == unit_id:
                return record
        raise KeyError(f"no record for unit '{unit_id}'")

    def results(self) -> Dict[str, Optional[Dict]]:
        """unit_id -> runner result dict (None for failed units)."""
        return {record.unit_id: record.result for record in self.records}

    def summary_table(self) -> str:
        """Fixed-width per-unit digest (what the CLI prints)."""
        header = (
            f"{'unit':<44s} {'status':>9s} {'time':>8s} "
            f"{'sims':>6s} {'best':>12s} {'ok':>3s}"
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            summary = (record.result or {}).get("result", {})
            sims = summary.get("num_simulations")
            best = summary.get("best_objective")
            success = summary.get("success")
            lines.append(
                f"{record.unit_id:<44s} {record.status:>9s} "
                f"{record.wall_time_s:>7.2f}s "
                f"{sims if sims is not None else '-':>6} "
                f"{f'{best:.4g}' if best is not None else '-':>12s} "
                f"{('yes' if success else 'no') if success is not None else '-':>3s}"
            )
        lines.append(
            f"{len(self.records)} units: {len(self.executed)} executed, "
            f"{len(self.skipped)} skipped (artifact store), {len(self.failed)} failed "
            f"[{self.wall_time_s:.2f}s]"
        )
        return "\n".join(lines)


def run_sweep(
    config: SweepConfig,
    store: Optional[Union[str, ArtifactStore]] = None,
    workers: Optional[int] = None,
    resume: bool = True,
    on_progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute (the missing part of) a sweep and return every unit record.

    Parameters
    ----------
    config:
        The declarative sweep.
    store:
        Artifact store or its directory; defaults to ``config.store``.
    workers:
        Process count; defaults to ``config.workers``.
    resume:
        When True (default), units whose completed artifact exists are
        skipped and their stored record is returned; failed and missing
        units re-run.  ``False`` re-executes everything (artifacts are
        overwritten in place).
    on_progress:
        Observer for per-unit events (``"skipped"`` fires during the scan,
        ``"completed"``/``"failed"`` as pool results arrive).
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store if store is not None else config.store)
    workers = int(workers) if workers is not None else config.workers
    if workers < 1:
        raise ValueError("workers must be >= 1")

    report = execute_with_store(
        config.expand(),
        store=store,
        workers=workers,
        resume=resume,
        on_progress=on_progress,
    )
    result = SweepResult(
        config=config,
        records=report.records,
        executed=report.executed,
        skipped=report.skipped,
        failed=report.failed,
        wall_time_s=report.wall_time_s,
        store_root=str(store.root),
    )

    store.put_sweep(
        config.sweep_key(),
        {
            "name": config.name,
            "sweep_key": config.sweep_key(),
            "config": config.to_dict(),
            "units": {
                record.unit_id: {"key": record.key, "status": record.status}
                for record in result.records
            },
            "executed": list(result.executed),
            "skipped": list(result.skipped),
            "failed": list(result.failed),
            "wall_time_s": result.wall_time_s,
        },
    )
    return result
