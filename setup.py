"""Setup shim for legacy editable installs (offline environments without wheel)."""

from setuptools import setup

setup()
