"""Tests for the circuit graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.devices import DeviceType
from repro.graph import (
    CircuitGraph,
    build_full_graph,
    build_graph,
    build_partial_graph,
)


class TestFullGraph:
    def test_opamp_node_set_includes_sources(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        assert graph.num_nodes == len(opamp_benchmark.netlist)
        assert "VP" in graph.node_names
        assert "VGND" in graph.node_names
        assert "VBIAS" in graph.node_names

    def test_adjacency_is_symmetric_binary(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        adjacency = graph.adjacency_matrix
        np.testing.assert_allclose(adjacency, adjacency.T)
        assert set(np.unique(adjacency)) <= {0.0, 1.0}
        assert np.all(np.diag(adjacency) == 0.0)

    def test_graph_is_connected(self, opamp_benchmark, rf_pa_benchmark):
        assert build_full_graph(opamp_benchmark.netlist).is_connected()
        assert build_full_graph(rf_pa_benchmark.netlist).is_connected()

    def test_expected_edges_from_topology(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        # Differential pair transistors share the tail node.
        assert "M2" in graph.neighbors("M1")
        # The compensation cap connects to both the M6 gate node and vout.
        assert "M6" in graph.neighbors("CC")
        assert "M7" in graph.neighbors("CC")
        # The supply node touches the PMOS devices.
        assert "M3" in graph.neighbors("VP")

    def test_degree_and_index(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        assert graph.degree("VGND") >= 3
        assert graph.node_index("M1") == graph.node_names.index("M1")
        with pytest.raises(KeyError):
            graph.node_index("not_a_device")

    def test_adjacency_copy_is_defensive(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        adjacency = graph.adjacency_matrix
        adjacency[0, 1] = 99.0
        assert graph.adjacency_matrix[0, 1] != 99.0

    def test_networkx_export(self, opamp_benchmark):
        graph = build_full_graph(opamp_benchmark.netlist)
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == graph.num_nodes
        assert exported.number_of_edges() == graph.num_edges


class TestPartialGraph:
    def test_partial_excludes_supply_and_bias(self, opamp_benchmark):
        partial = build_partial_graph(opamp_benchmark.netlist)
        full = build_full_graph(opamp_benchmark.netlist)
        assert partial.num_nodes == full.num_nodes - 3
        for name in ("VP", "VGND", "VBIAS"):
            assert name not in partial.node_names

    def test_build_graph_flag(self, opamp_benchmark):
        assert build_graph(opamp_benchmark.netlist, full_topology=True).num_nodes > build_graph(
            opamp_benchmark.netlist, full_topology=False
        ).num_nodes


class TestFeatureMatrices:
    def test_dynamic_features_track_netlist(self, opamp_benchmark):
        netlist = opamp_benchmark.fresh_netlist()
        graph = CircuitGraph(netlist)
        before = graph.node_feature_matrix().copy()
        netlist.set_parameter("M1", "width", 99e-6)
        after = graph.node_feature_matrix()
        row = graph.node_index("M1")
        assert not np.allclose(before[row], after[row])
        other_rows = [i for i in range(graph.num_nodes) if i != row]
        np.testing.assert_allclose(before[other_rows], after[other_rows])

    def test_static_features_do_not_track_netlist(self, opamp_benchmark):
        netlist = opamp_benchmark.fresh_netlist()
        graph = CircuitGraph(netlist)
        before = graph.static_feature_matrix().copy()
        netlist.set_parameter("M1", "width", 99e-6)
        np.testing.assert_allclose(before, graph.static_feature_matrix())

    def test_feature_matrix_shape(self, rf_pa_benchmark):
        graph = CircuitGraph(rf_pa_benchmark.netlist)
        features = graph.node_feature_matrix()
        assert features.shape == (graph.num_nodes, graph.feature_dimension)

    def test_requires_at_least_two_nodes(self, opamp_benchmark):
        with pytest.raises(ValueError):
            CircuitGraph(opamp_benchmark.netlist, exclude_types=tuple(DeviceType))
