"""Declarative experiment sweeps: optimizers × environments × seeds.

:class:`SweepConfig` is the grid analogue of :class:`repro.api.RunConfig` —
the same JSON-round-trip discipline (one document reproduces the whole
sweep), expanded into independent :class:`~repro.orchestrate.units.WorkUnit`
instances by :meth:`SweepConfig.expand`.

Seeding
-------
Per-unit seeds are derived with ``np.random.SeedSequence.spawn`` from the
grid *coordinates*, never from execution order or position: the entropy of
a (sweep seed, env) cell is the sweep-seed entry plus a digest of the env
config itself.  Consequences:

* results are bit-identical for any worker count — a unit's randomness is a
  pure function of its payload;
* optimizers are *paired*: within a cell they pursue the same sampled
  target group, so cross-method comparisons are apples-to-apples;
* cells are position-independent: adding, removing, or reordering grid
  entries never changes any other unit's seed, so overlapping sweeps keep
  sharing artifacts through the content-addressed store;
* distinct cells get well-separated streams even for adjacent sweep seeds
  (SeedSequence spawning, not ``seed + i`` arithmetic).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.api.configs import EnvConfig, OptimizerConfig, RunConfig
from repro.orchestrate.units import DEFAULT_RUNNER, WorkUnit, canonical_json
from repro.utils import atomic_write_text

#: Default artifact-store directory of ``python -m repro.run``.
DEFAULT_STORE_DIR = "sweep_artifacts"


def _as_config_list(values, cls, what: str):
    if values is None:
        raise ValueError(f"SweepConfig.{what} must be a non-empty list")
    items = []
    for value in values:
        if isinstance(value, cls):
            items.append(value)
        else:
            items.append(cls.from_dict(value))
    if not items:
        raise ValueError(f"SweepConfig.{what} must be a non-empty list")
    return items


@dataclass
class SweepConfig:
    """A JSON-round-trippable (optimizers × envs × seeds) experiment grid.

    Attributes
    ----------
    optimizers / envs:
        Component configs (or bare registry IDs / dicts, coerced on
        construction exactly like :class:`repro.api.RunConfig` fields).
    seeds:
        Sweep-seed entries; each spawns one child seed per environment (see
        module docstring).
    budget:
        Per-unit budget forwarded to every optimizer (``None`` lets each
        optimizer's own configured/default budget apply, so per-method
        budgets can ride in ``OptimizerConfig.params``).
    target_specs:
        Optional fixed target group broadcast to every unit; ``None``
        samples per-unit targets deterministically from the unit seed.
    workers:
        Default process count for :func:`repro.orchestrate.run_sweep`
        (overridable at call/CLI time; not part of the sweep identity).
    store:
        Default artifact-store directory (not part of the identity).
    disk_cache:
        Directory of the shared persistent simulation cache, or ``None`` to
        disable (not part of the identity — cached simulations are
        bit-identical to fresh ones by construction).
    disk_cache_entries:
        Optional bound on persisted cache entries.
    derive_seeds:
        When True (default), unit seeds are spawned from the grid
        coordinates as described above; False passes each sweep-seed entry
        through literally (what a wrapped single ``RunConfig`` document
        needs to stay bit-identical with ``RunConfig.run()``).
    """

    optimizers: List[OptimizerConfig] = field(default_factory=list)
    envs: List[EnvConfig] = field(default_factory=list)
    seeds: List[int] = field(default_factory=lambda: [0])
    budget: Optional[int] = None
    target_specs: Optional[Dict[str, float]] = None
    name: str = ""
    workers: int = 1
    store: str = DEFAULT_STORE_DIR
    disk_cache: Optional[str] = None
    disk_cache_entries: Optional[int] = None
    derive_seeds: bool = True

    def __post_init__(self) -> None:
        self.optimizers = _as_config_list(self.optimizers, OptimizerConfig, "optimizers")
        self.envs = _as_config_list(self.envs, EnvConfig, "envs")
        self.seeds = [int(seed) for seed in self.seeds]
        if not self.seeds:
            raise ValueError("SweepConfig.seeds must be a non-empty list")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("SweepConfig.seeds must not contain duplicates")
        if any(seed < 0 for seed in self.seeds):
            # np.random.SeedSequence rejects negative entropy at expand time;
            # fail at construction instead, like every other config error.
            raise ValueError("SweepConfig.seeds must be non-negative")
        if self.budget is not None and int(self.budget) <= 0:
            raise ValueError("budget must be positive (or None for method defaults)")
        if self.target_specs is not None:
            self.target_specs = {
                name: float(value) for name, value in dict(self.target_specs).items()
            }
        self.workers = int(self.workers)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.disk_cache_entries is not None and int(self.disk_cache_entries) <= 0:
            raise ValueError("disk_cache_entries must be positive (or None)")

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        return len(self.optimizers) * len(self.envs) * len(self.seeds)

    def unit_seed(self, env: EnvConfig, sweep_seed: int) -> int:
        """Derived seed of the (sweep_seed, env) cell (optimizer-independent).

        The entropy is the sweep-seed entry plus a digest of the env config
        — *what* the cell is, not *where* it sits in the grid — so two
        sweeps that overlap on a cell derive the identical seed and hence
        the identical unit content key.
        """
        if not self.derive_seeds:
            return sweep_seed
        env_entropy = int.from_bytes(
            hashlib.sha256(canonical_json(env.to_dict()).encode("utf-8")).digest()[:4],
            "big",
        )
        child = np.random.SeedSequence([sweep_seed, env_entropy]).spawn(1)[0]
        return int(child.generate_state(1, dtype=np.uint32)[0])

    def expand(self) -> List[WorkUnit]:
        """Expand the grid into independent work units (deterministic order).

        Order is optimizers (outer) × envs × seeds (inner); each unit's
        payload is one complete, standalone :class:`repro.api.RunConfig`
        dict, so any unit can be reproduced outside the orchestrator with
        ``RunConfig.from_dict(unit.payload["run"]).run()``.
        """
        execution: Dict[str, Any] = {}
        if self.disk_cache is not None:
            execution["disk_cache"] = {
                "dir": str(self.disk_cache),
                "max_disk_entries": self.disk_cache_entries,
            }
        units: List[WorkUnit] = []
        for optimizer in self.optimizers:
            for env in self.envs:
                for sweep_seed in self.seeds:
                    unit_id = f"{optimizer.id}+{env.id}+s{sweep_seed}"
                    run = RunConfig(
                        env=EnvConfig(env.id, dict(env.params)),
                        optimizer=OptimizerConfig(
                            optimizer.id, dict(optimizer.params), optimizer.vectorize
                        ),
                        budget=self.budget,
                        seed=self.unit_seed(env, sweep_seed),
                        target_specs=self.target_specs,
                        name=unit_id,
                    )
                    units.append(
                        WorkUnit(
                            unit_id=unit_id,
                            runner=DEFAULT_RUNNER,
                            payload={"run": run.to_dict()},
                            execution=dict(execution),
                        )
                    )
        return units

    # ------------------------------------------------------------------
    # Identity & serialization
    # ------------------------------------------------------------------
    def identity_dict(self) -> Dict[str, Any]:
        """The fields that define *what* the sweep computes (not how)."""
        return {
            "name": self.name,
            "optimizers": [optimizer.to_dict() for optimizer in self.optimizers],
            "envs": [env.to_dict() for env in self.envs],
            "seeds": list(self.seeds),
            "budget": self.budget,
            "target_specs": dict(self.target_specs) if self.target_specs else None,
            "derive_seeds": self.derive_seeds,
        }

    def sweep_key(self) -> str:
        """Content address of the sweep (used for the sweep manifest)."""
        return hashlib.sha256(
            canonical_json(self.identity_dict()).encode("utf-8")
        ).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        data = self.identity_dict()
        data.update(
            {
                "workers": self.workers,
                "store": self.store,
                "disk_cache": self.disk_cache,
                "disk_cache_entries": self.disk_cache_entries,
            }
        )
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepConfig":
        if not isinstance(data, Mapping):
            raise TypeError(f"SweepConfig must be a mapping, got {type(data).__name__}")
        known = {
            "name", "optimizers", "envs", "seeds", "budget", "target_specs",
            "workers", "store", "disk_cache", "disk_cache_entries", "derive_seeds",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SweepConfig keys: {sorted(unknown)} (expected {sorted(known)})"
            )
        missing = {"optimizers", "envs"} - set(data)
        if missing:
            raise ValueError(f"SweepConfig requires keys: {sorted(missing)}")
        seeds = data.get("seeds")
        return cls(
            optimizers=data["optimizers"],
            envs=data["envs"],
            # Only an *absent*/null seeds key defaults; an explicit empty
            # list must hit the non-empty validation, not silently become [0].
            seeds=[0] if seeds is None else seeds,
            budget=data.get("budget"),
            target_specs=data.get("target_specs"),
            name=data.get("name", ""),
            workers=data.get("workers", 1),
            store=data.get("store", DEFAULT_STORE_DIR),
            disk_cache=data.get("disk_cache"),
            disk_cache_entries=data.get("disk_cache_entries"),
            derive_seeds=data.get("derive_seeds", True),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "SweepConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def sweep_from_document(data: Union[Mapping[str, Any], str]) -> SweepConfig:
    """Coerce a JSON document into a sweep.

    Accepts either a :class:`SweepConfig` dict or a single
    :class:`repro.api.RunConfig` dict (detected by its ``env``/``optimizer``
    keys), which becomes a one-unit sweep — so ``python -m repro.run`` is a
    front door for both.  A single-run document keeps its literal seed (no
    spawning) to stay bit-identical with ``RunConfig.run()``.
    """
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, Mapping):
        raise TypeError(f"expected a JSON object, got {type(data).__name__}")
    if "env" in data and "optimizer" in data:
        run = RunConfig.from_dict(data)
        # derive_seeds=False pins the literal seed: a RunConfig document must
        # reproduce RunConfig.run() exactly, not a spawned derivation of it.
        return SweepConfig(
            optimizers=[run.optimizer],
            envs=[run.env],
            seeds=[run.seed],
            budget=run.budget,
            target_specs=run.target_specs,
            name=run.name,
            derive_seeds=False,
        )
    return SweepConfig.from_dict(data)
