"""Tests for loss functions and training diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.functional import explained_variance, huber_loss, mse_loss, smooth_l1_loss
from repro.nn.tensor import Tensor


class TestLosses:
    def test_mse_value(self):
        prediction = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 0.0, 6.0]))
        assert float(mse_loss(prediction, target).item()) == pytest.approx((0 + 4 + 9) / 3)

    def test_mse_gradient(self):
        prediction = Tensor(np.array([2.0]), requires_grad=True)
        mse_loss(prediction, Tensor(np.array([0.0]))).backward()
        np.testing.assert_allclose(prediction.grad, [4.0])

    def test_huber_quadratic_region(self):
        prediction = Tensor(np.array([0.5]))
        target = Tensor(np.array([0.0]))
        assert float(huber_loss(prediction, target).item()) == pytest.approx(0.125)

    def test_huber_linear_region(self):
        prediction = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        # 0.5 * delta^2 + delta * (|diff| - delta) = 0.5 + 2.0
        assert float(huber_loss(prediction, target).item()) == pytest.approx(2.5)

    def test_smooth_l1_alias(self):
        prediction = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        assert float(smooth_l1_loss(prediction, target).item()) == pytest.approx(
            float(huber_loss(prediction, target, delta=1.0).item())
        )

    def test_huber_below_mse_for_outliers(self):
        prediction = Tensor(np.array([10.0]))
        target = Tensor(np.array([0.0]))
        assert float(huber_loss(prediction, target).item()) < float(
            mse_loss(prediction, target).item()
        )


class TestExplainedVariance:
    def test_perfect_prediction(self):
        returns = np.array([1.0, 2.0, 3.0])
        assert explained_variance(returns, returns) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        returns = np.array([1.0, 2.0, 3.0])
        predictions = np.full(3, returns.mean())
        assert explained_variance(predictions, returns) == pytest.approx(0.0)

    def test_constant_returns(self):
        assert explained_variance(np.array([0.0, 1.0]), np.array([2.0, 2.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            explained_variance(np.zeros(3), np.zeros(4))
