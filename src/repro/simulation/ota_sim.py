"""Current-mirror OTA performance evaluator.

Analytical square-law evaluator for the topology of
:mod:`repro.circuits.library.current_mirror_ota`.  The defining property of
the mirror-loaded OTA is that its output behaviour is set by *strength
ratios*:

* the PMOS output mirror ratio ``B_up = S6 / S5`` multiplies the signal
  current sourced into the load, and
* the three-device sink path ``B_down = (S7 / S4) · (S9 / S8)`` multiplies
  the current pulled out of it,

so the effective transconductance is ``gm1 · (B_up + B_down) / 2``, the slew
rate is the smaller mirrored tail current over the load capacitance, and the
power grows with *both* ratios — the classic drive-versus-power trade-off the
RL agent must discover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.netlist import Netlist
from repro.simulation.base import SimulationResult
from repro.simulation.mna import MnaCircuit
from repro.simulation.mosfet import MosfetModel
from repro.simulation.opamp_sim import _parallel
from repro.simulation.technology import CMOS_45NM, CmosTechnology

#: PMOS devices of the current-mirror OTA netlist (the rest are NMOS).
_PMOS_DEVICES = ("M4", "M5", "M6", "M7")


@dataclass
class CmOtaOperatingPoint:
    """Intermediate analog quantities exposed for debugging and tests."""

    tail_current: float
    mirror_ratio_up: float
    mirror_ratio_down: float
    output_source_current: float
    output_sink_current: float
    gm1: float
    effective_gm: float
    output_resistance: float
    gain: float
    unity_gain_bandwidth_hz: float
    slew_rate: float
    power_w: float


class CmOtaSimulator:
    """Evaluate the current-mirror OTA netlist into its four specifications."""

    name = "cm_ota_analytic"

    def __init__(
        self,
        technology: CmosTechnology = CMOS_45NM,
        method: str = "analytic",
        bias_overhead_current: float = 2e-6,
    ) -> None:
        if method not in {"analytic", "mna"}:
            raise ValueError("method must be 'analytic' or 'mna'")
        self.technology = technology
        self.method = method
        #: Fixed bias-generation overhead added to the supply current (A).
        self.bias_overhead_current = bias_overhead_current
        self.name = f"cm_ota_{method}"

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Return gain, bandwidth (Hz), slew rate (V/s) and power (W)."""
        op = self.operating_point(netlist)
        if self.method == "mna":
            gain, bandwidth = self._mna_frequency_response(netlist, op)
        else:
            gain = op.gain
            bandwidth = op.unity_gain_bandwidth_hz
        valid = op.tail_current > 0.0 and gain > 1.0 and op.slew_rate > 0.0
        specs = {
            "gain": float(gain),
            "bandwidth": float(bandwidth),
            "slew_rate": float(op.slew_rate),
            "power": float(op.power_w),
        }
        details = {
            "tail_current": op.tail_current,
            "mirror_ratio_up": op.mirror_ratio_up,
            "mirror_ratio_down": op.mirror_ratio_down,
            "gm1": op.gm1,
            "effective_gm": op.effective_gm,
            "output_resistance": op.output_resistance,
            "output_source_current": op.output_source_current,
            "output_sink_current": op.output_sink_current,
        }
        return SimulationResult(specs=specs, details=details, valid=valid)

    def operating_point(self, netlist: Netlist) -> CmOtaOperatingPoint:
        """Compute bias currents, mirror ratios and small-signal parameters."""
        tech = self.technology
        models = {
            name: MosfetModel(
                tech,
                "pmos" if name in _PMOS_DEVICES else "nmos",
                netlist.get_parameter(name, "width"),
                netlist.get_parameter(name, "fingers"),
            )
            for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9")
        }
        supply_voltage = netlist.get_parameter("VP", "voltage")
        tail_bias = netlist.get_parameter("VBIAS", "voltage")
        load_cap = netlist.get_parameter("CL", "value")

        # --- DC bias: the tail splits evenly, the mirrors scale it --------
        tail_current = models["M3"].saturation_current(tail_bias - tech.vth_n)
        branch_current = tail_current / 2.0
        ratio_up = models["M6"].strength / models["M5"].strength
        ratio_down = (models["M7"].strength / models["M4"].strength) * (
            models["M9"].strength / models["M8"].strength
        )
        source_current = ratio_up * branch_current
        sink_current = ratio_down * branch_current
        power = supply_voltage * (
            tail_current + source_current + sink_current + self.bias_overhead_current
        )

        # --- Small signal -------------------------------------------------
        gm1 = models["M1"].gm_at_current(branch_current)
        effective_gm = gm1 * 0.5 * (ratio_up + ratio_down)
        output_resistance = _parallel(
            models["M6"].ro_at_current(source_current),
            models["M9"].ro_at_current(sink_current),
        )
        gain = (
            effective_gm * output_resistance if math.isfinite(output_resistance) else 0.0
        )
        total_load = load_cap + 20e-15
        unity_gain_bandwidth = effective_gm / (2.0 * math.pi * total_load)
        # Large-signal drive: the weaker mirror path limits the output swing
        # rate into the load capacitor.
        slew_rate = min(ratio_up, ratio_down) * tail_current / total_load

        return CmOtaOperatingPoint(
            tail_current=tail_current,
            mirror_ratio_up=ratio_up,
            mirror_ratio_down=ratio_down,
            output_source_current=source_current,
            output_sink_current=sink_current,
            gm1=gm1,
            effective_gm=effective_gm,
            output_resistance=output_resistance,
            gain=gain,
            unity_gain_bandwidth_hz=unity_gain_bandwidth,
            slew_rate=slew_rate,
            power_w=power,
        )

    # ------------------------------------------------------------------
    # Small-signal MNA cross-check
    # ------------------------------------------------------------------
    def build_small_signal_circuit(
        self, netlist: Netlist, op: Optional[CmOtaOperatingPoint] = None
    ) -> MnaCircuit:
        """Assemble the single-stage small-signal equivalent as an MNA circuit.

        One node (``out``) behind the effective mirror-scaled
        transconductance; resistance and load come from the analytical
        operating point so both methods share the same DC linearization and
        only the frequency response differs.
        """
        op = op or self.operating_point(netlist)
        load_cap = netlist.get_parameter("CL", "value")
        circuit = MnaCircuit("cm_ota_small_signal")
        circuit.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
        circuit.add_vccs("GM", "out", "0", "in", "0", gm=-op.effective_gm)
        circuit.add_resistor("ROUT", "out", "0", max(op.output_resistance, 1.0))
        circuit.add_capacitor("CL", "out", "0", max(load_cap + 20e-15, 1e-18))
        return circuit

    def _mna_frequency_response(
        self, netlist: Netlist, op: CmOtaOperatingPoint
    ) -> "tuple[float, float]":
        """DC gain and unity-gain bandwidth from an MNA AC sweep."""
        circuit = self.build_small_signal_circuit(netlist, op)
        frequencies = np.logspace(1, 11, 401)
        solution = circuit.ac_analysis(frequencies)
        magnitude = np.abs(solution.voltage("out"))
        gain = float(magnitude[0])
        # Unity-gain crossing by log interpolation (same scheme as the
        # two-stage op-amp evaluator).
        above = magnitude >= 1.0
        if not above.any() or above.all():
            unity_freq = float(frequencies[-1] if above.all() else 0.0)
        else:
            last_above = int(np.nonzero(above)[0][-1])
            if last_above + 1 >= magnitude.size:
                unity_freq = float(frequencies[-1])
            else:
                f_lo, f_hi = frequencies[last_above], frequencies[last_above + 1]
                m_lo, m_hi = magnitude[last_above], magnitude[last_above + 1]
                weight = np.log(m_lo) / (np.log(m_lo) - np.log(m_hi))
                unity_freq = float(
                    np.exp(np.log(f_lo) + weight * (np.log(f_hi) - np.log(f_lo)))
                )
        return gain, unity_freq
