"""Supervised-learning sizing baseline (H. M.V. & Harish [8]).

The SL approach learns a *static inverse mapping* from desired specifications
to device parameters: a dataset of (parameters → simulated specs) pairs is
generated offline, an MLP is trained to regress parameters from specs, and
deployment is a single forward pass ("1 design step" in Table 2).  Because the
inverse mapping is ill-posed and the network interpolates, the resulting
one-shot designs frequently miss at least one specification — the paper
reports ~79 % design accuracy, far below the RL methods — and that is the
behaviour this implementation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.nn.functional import mse_loss
from repro.nn.layers import MLP
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.simulation.base import CircuitSimulator


@dataclass
class SupervisedSizerConfig:
    """Hyper-parameters of the SL baseline."""

    num_training_samples: int = 2000
    hidden_sizes: Tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    epochs: int = 200
    batch_size: int = 64

    def __post_init__(self) -> None:
        if self.num_training_samples < 10:
            raise ValueError("num_training_samples must be at least 10")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")


@dataclass
class SupervisedDesignResult:
    """One-shot design produced by the SL baseline."""

    parameters: np.ndarray
    predicted_specs: Dict[str, float]
    success: bool
    num_simulations: int = 1


class SupervisedSizer:
    """Inverse spec→parameter regressor trained on randomly sampled designs."""

    name = "supervised_learning"

    def __init__(
        self,
        benchmark: CircuitBenchmark,
        simulator: CircuitSimulator,
        config: Optional[SupervisedSizerConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.benchmark = benchmark
        self.simulator = simulator
        self.config = config or SupervisedSizerConfig()
        self.rng = np.random.default_rng(seed)
        spec_dim = len(benchmark.spec_space)
        param_dim = benchmark.num_parameters
        self.network = MLP(
            (spec_dim, *self.config.hidden_sizes, param_dim),
            rng=self.rng,
            hidden_activation="tanh",
            output_activation="sigmoid",
        )
        self._trained = False
        self.training_losses: List[float] = []

    # ------------------------------------------------------------------
    # Dataset generation and training
    # ------------------------------------------------------------------
    def generate_dataset(self, num_samples: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Sample random designs and simulate them into (spec, parameter) pairs.

        The *inputs* are range-normalized specs of the simulated design and
        the *targets* are the normalized parameters that produced them —
        i.e. the network learns the inverse mapping the SL papers use.
        """
        count = num_samples or self.config.num_training_samples
        # Vectorized dataset generation: one batched draw of all candidate
        # designs, one reusable netlist for the simulation sweep (every
        # iteration rewrites the full design-parameter vector).
        population = self.benchmark.design_space.sample_batch(self.rng, count)
        normalized = self.benchmark.design_space.normalize(population)
        netlist = self.benchmark.fresh_netlist()
        spec_rows = []
        param_rows = []
        for parameters, unit_parameters in zip(population, normalized):
            self.benchmark.design_space.apply_to_netlist(netlist, parameters)
            result = self.simulator.simulate(netlist)
            if not result.valid:
                continue
            spec_rows.append(self.benchmark.spec_space.normalize(result.specs))
            param_rows.append(unit_parameters)
        if len(spec_rows) < 10:
            raise RuntimeError("too few valid samples to train the supervised sizer")
        return np.stack(spec_rows), np.stack(param_rows)

    def fit(
        self, specs: Optional[np.ndarray] = None, parameters: Optional[np.ndarray] = None
    ) -> None:
        """Train the inverse regressor (generating the dataset if needed)."""
        if specs is None or parameters is None:
            specs, parameters = self.generate_dataset()
        optimizer = Adam(self.network.parameters(), lr=self.config.learning_rate)
        count = specs.shape[0]
        for _ in range(self.config.epochs):
            permutation = self.rng.permutation(count)
            epoch_losses = []
            for start in range(0, count, self.config.batch_size):
                batch = permutation[start:start + self.config.batch_size]
                prediction = self.network(Tensor(specs[batch]))
                loss = mse_loss(prediction, Tensor(parameters[batch]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(float(loss.item()))
            self.training_losses.append(float(np.mean(epoch_losses)))
        self._trained = True

    # ------------------------------------------------------------------
    # One-shot design
    # ------------------------------------------------------------------
    def design(self, targets: Mapping[str, float]) -> SupervisedDesignResult:
        """Predict parameters for a target group and verify with one simulation."""
        if not self._trained:
            raise RuntimeError("SupervisedSizer.design() called before fit()")
        normalized_target = self.benchmark.spec_space.normalize(targets).reshape(1, -1)
        unit_parameters = self.network(Tensor(normalized_target)).numpy().ravel()
        parameters = self.benchmark.design_space.denormalize(unit_parameters)
        netlist = self.benchmark.fresh_netlist()
        self.benchmark.design_space.apply_to_netlist(netlist, parameters)
        result = self.simulator.simulate(netlist)
        success = result.valid and self.benchmark.spec_space.all_met(result.specs, targets)
        return SupervisedDesignResult(
            parameters=parameters,
            predicted_specs=dict(result.specs),
            success=success,
        )

    def evaluate_accuracy(self, targets: List[Mapping[str, float]]) -> float:
        """Design accuracy over a batch of target groups (Table 2 metric)."""
        if not targets:
            raise ValueError("targets must be non-empty")
        return float(np.mean([self.design(t).success for t in targets]))
