"""Ablation bench — which domain-knowledge ingredient matters?

DESIGN.md calls out three policy design choices the paper motivates: the
graph branch and its flavour (GAT vs GCN), dynamic device parameters as node
features (vs the prior work's static technology constants), and the dedicated
specification-coupling FCNN branch.  Each variant is trained under the same
reduced budget and evaluated on the same deployment batch.
"""

from __future__ import annotations

from repro.experiments import run_policy_ablation
from repro.experiments.ablations import AblationVariant

VARIANTS = (
    AblationVariant(name="gcn_fc_full", graph_kind="gcn"),
    AblationVariant(name="static_node_features", use_dynamic_node_features=False),
    AblationVariant(name="no_spec_encoder", use_spec_encoder=False),
)


def test_policy_input_ablation(benchmark, scale):
    def run():
        return run_policy_ablation(
            circuit="two_stage_opamp", variants=VARIANTS, scale=scale, seed=0,
            total_episodes=scale.opamp_training_episodes,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == len(VARIANTS)
    for result in results:
        assert 0.0 <= result.deployment_accuracy <= 1.0
        assert result.mean_deployment_steps <= 50.0

    benchmark.extra_info["ablation"] = {
        result.variant.name: {
            "deployment_accuracy": float(result.deployment_accuracy),
            "final_mean_reward": float(result.final_mean_reward),
            "mean_deployment_steps": float(result.mean_deployment_steps),
        }
        for result in results
    }
